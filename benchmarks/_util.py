"""Shared plumbing for the reconstructed-experiment benchmarks.

Each ``bench_*.py`` regenerates one table or figure of the experiment
index in DESIGN.md.  Two kinds of output are produced:

* pytest-benchmark's timing table — the benchmark function names encode
  the experiment's rows (strategy, sweep value), so the timing table *is*
  the figure's series;
* deterministic metric rows (page counts, buffer pins, I/O counts, log
  bytes) emitted through :func:`emit` so they appear on the terminal and
  in ``bench_output.txt`` regardless of capture settings.

All databases are freshly built per module from seeded workloads, so
runs are reproducible.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro import DatabaseConfig, TemporalDatabase, VersionStrategy
from repro.workloads import WorkloadSpec, apply_to_database, cad_schema, generate_bom

ALL_STRATEGIES = list(VersionStrategy)


def emit(capsys, *lines: str) -> None:
    """Print experiment rows, bypassing pytest's output capture."""
    with capsys.disabled():
        for line in lines:
            print(line)


def header(capsys, experiment: str, question: str) -> None:
    emit(capsys, "", f"==== {experiment}: {question} ====")


def build_db(path: str, spec: WorkloadSpec,
             strategy: VersionStrategy = VersionStrategy.SEPARATED,
             buffer_pages: int = 256
             ) -> Tuple[TemporalDatabase, Dict[int, int], Dict[str, list]]:
    """Create a database at *path* and load the BOM workload into it."""
    ops, groups = generate_bom(spec)
    db = TemporalDatabase.create(
        path, cad_schema(),
        DatabaseConfig(strategy=strategy, buffer_pages=buffer_pages))
    ids = apply_to_database(db, ops)
    return db, ids, groups


def pins(db: TemporalDatabase) -> int:
    """Buffer page touches since the last reset (the portable cost)."""
    return db.buffer.stats.hits + db.buffer.stats.misses


def reset_counters(db: TemporalDatabase) -> None:
    db.buffer.stats.reset()
    db._disk.stats.reset()


def metrics_snapshot(db: TemporalDatabase) -> Dict:
    """The registry's JSON-safe dump (persisted next to timing tables)."""
    return db.metrics.snapshot()


def layer_breakdown(db: TemporalDatabase) -> Dict[str, Dict[str, int]]:
    """Counters grouped by kernel layer (disk, buffer, btree, ...)."""
    return db.metrics.layer_breakdown()


def breakdown_row(db: TemporalDatabase,
                  layers: Iterable[str] = ("disk", "buffer", "index",
                                           "btree", "engine", "builder")
                  ) -> str:
    """One compact ``layer{metric=value,...}`` line for emit()."""
    grouped = db.metrics.layer_breakdown()
    cells = []
    for layer in layers:
        metrics = grouped.get(layer)
        if not metrics:
            continue
        inner = ",".join(f"{name}={value}"
                         for name, value in sorted(metrics.items()) if value)
        if inner:
            cells.append(f"{layer}{{{inner}}}")
    return " ".join(cells)

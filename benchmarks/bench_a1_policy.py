"""R-A1 (ablation) — LRU vs. Clock buffer replacement.

The same slice workload under a deliberately tight buffer pool, once
per policy.  Clock approximates LRU with cheaper bookkeeping; the hit
ratios should be close, with LRU at most slightly ahead — confirming
that the strategy results do not hinge on the replacement policy.
"""

import pytest

from benchmarks._util import emit, header
from repro import DatabaseConfig, MoleculeType, ReplacementPolicy, TemporalDatabase
from repro.workloads import apply_to_database, buffer_sweep_spec, cad_schema, generate_bom

POLICIES = [ReplacementPolicy.LRU, ReplacementPolicy.CLOCK]
TIGHT_BUFFER = 24


def test_a1_report_header(benchmark, capsys):
    header(capsys, "R-A1", "LRU vs Clock replacement under a tight pool")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


@pytest.fixture(scope="module")
def seeded_dir(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("a1") / "db")
    db = TemporalDatabase.create(path, cad_schema(),
                                 DatabaseConfig(buffer_pages=1024))
    ops, groups = generate_bom(buffer_sweep_spec())
    ids = apply_to_database(db, ops)
    parts = [ids[handle] for handle in groups["Part"]]
    db.close()
    return path, parts


@pytest.mark.parametrize("policy", POLICIES, ids=[p.value for p in POLICIES])
def test_a1_replacement_policy(benchmark, capsys, seeded_dir, policy):
    path, parts = seeded_dir
    db = TemporalDatabase.open(path, DatabaseConfig(
        buffer_pages=TIGHT_BUFFER, replacement=policy))
    mtype = MoleculeType.parse("Part.contains.Component", db.schema)

    def workload():
        return db.builder.build_many(parts, mtype, 2)

    workload()  # reach steady state
    benchmark(workload)
    db.buffer.stats.reset()
    workload()
    stats = db.buffer.stats
    emit(capsys,
         f"R-A1 | policy={policy.value:>5} buffer={TIGHT_BUFFER} | "
         f"hit_ratio={stats.hit_ratio:6.3f} | evictions={stats.evictions}")
    db.close()

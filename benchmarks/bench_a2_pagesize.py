"""R-A2 (ablation) — Page size vs. storage and slice cost.

The same workload stored on 1 KiB, 4 KiB, and 16 KiB pages (SEPARATED
strategy).  Bigger pages amortize per-page headers and shorten
directory chains but waste space on small segments; the rows show the
space/time trade the kernel's page-size constant embodies.
"""

import pytest

from benchmarks._util import build_db, emit, header, pins, reset_counters
from repro import DatabaseConfig, MoleculeType, TemporalDatabase, VersionStrategy
from repro.workloads import apply_to_database, cad_schema, generate_bom, history_depth_spec

PAGE_SIZES = [1024, 4096, 16384]
SPEC = history_depth_spec(versions=16)


def test_a2_report_header(benchmark, capsys):
    header(capsys, "R-A2", "page-size sweep: storage vs. slice cost")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


@pytest.mark.parametrize("page_size", PAGE_SIZES)
def test_a2_page_size(benchmark, capsys, tmp_path, page_size):
    ops, groups = generate_bom(SPEC)
    db = TemporalDatabase.create(
        str(tmp_path / f"ps{page_size}"), cad_schema(),
        DatabaseConfig(strategy=VersionStrategy.SEPARATED,
                       page_size=page_size, buffer_pages=512))
    ids = apply_to_database(db, ops)
    parts = [ids[handle] for handle in groups["Part"]]
    mtype = MoleculeType.parse("Part.contains.Component", db.schema)

    def workload():
        return db.builder.build_many(parts, mtype, 3)

    benchmark(workload)
    reset_counters(db)
    workload()
    stats = db.storage_stats()
    emit(capsys,
         f"R-A2 | page={page_size:>6} | pages={stats.total_pages:>5} "
         f"bytes={stats.total_bytes:>9} | slice_page_touches={pins(db):>5}")
    db.close()

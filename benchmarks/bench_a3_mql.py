"""R-A3 (ablation) — MQL processing overhead decomposition.

How much of a query's cost is language processing (lex/parse/analyze/
plan) versus execution?  The compile-side cost is constant per query
text while execution scales with data touched, so reusing plans (as the
benchmark harness itself does via ``execute_plan``) matters only for
tiny queries.
"""

import pytest

from benchmarks._util import build_db, emit, header
from repro import VersionStrategy
from repro.mql.analyzer import analyze
from repro.mql.evaluator import execute_plan
from repro.mql.parser import parse_query
from repro.mql.planner import plan
from repro.workloads import history_depth_spec

QUERY = ("SELECT Part.name, COUNT(Component), AVG(Component.weight) "
         "FROM Part.contains.Component "
         "WHERE Part.cost > 0 VALID AT 3")


def test_a3_report_header(benchmark, capsys):
    header(capsys, "R-A3", "MQL overhead: compile vs. execute")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


@pytest.fixture(scope="module")
def database(tmp_path_factory):
    db, ids, groups = build_db(
        str(tmp_path_factory.mktemp("a3") / "db"),
        history_depth_spec(versions=4, parts=20),
        VersionStrategy.SEPARATED, buffer_pages=1024)
    yield db
    db.close()


def test_a3_compile_only(benchmark, capsys, database):
    def compile_query():
        analyzed = analyze(parse_query(QUERY), database.schema)
        return plan(analyzed, database.engine)

    query_plan = benchmark(compile_query)
    emit(capsys, f"R-A3 | compile (lex+parse+analyze+plan) | "
                 f"plan={query_plan.describe()}")


def test_a3_execute_only(benchmark, capsys, database):
    analyzed = analyze(parse_query(QUERY), database.schema)
    query_plan = plan(analyzed, database.engine)
    result = benchmark(execute_plan, database, query_plan)
    emit(capsys, f"R-A3 | execute (prepared plan)         | "
                 f"rows={len(result)}")


def test_a3_end_to_end(benchmark, capsys, database):
    result = benchmark(database.query, QUERY)
    emit(capsys, f"R-A3 | end-to-end (compile + execute)  | "
                 f"rows={len(result)}")

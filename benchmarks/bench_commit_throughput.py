"""R-C1 — Commit throughput: the price of durability and the group-commit
recovery.

Three durability configurations are driven by 1..16 committer threads:

* ``none``        — no fsync at commit (the old unsafe default): the
  upper bound on commit throughput;
* ``fsync/commit``— durable commits, one fsync per commit
  (``group_commit=False``): the naive price of durability;
* ``group``       — durable commits through WAL group commit (the new
  default): concurrent committers share a leader's fsync.

The headline claim: at 8 threads, group commit delivers at least 5x the
throughput of per-commit fsync, and ``wal.fsyncs`` stays well below the
commit count (fsyncs are genuinely shared).

CI scratch disks make raw ``fsync`` timings meaningless — on tmpfs or a
write-back overlay an fsync costs microseconds, so commits never overlap
and *neither* scheme pays a visible durability price.  The sweep
therefore injects a fixed 10 ms device-flush latency into the WAL's
``os.fsync`` (the ballpark of a rotational-disk cache flush, and within
a factor of a few of a SATA SSD's), which makes the experiment
deterministic and portable.  Raw-hardware rows are emitted afterwards
for reference, without assertions.

Timing is wall-clock over the whole multi-threaded run
(pytest-benchmark measures single-callable latency, which is
meaningless for a thread-throughput experiment), emitted as
deterministic rows.
"""

from __future__ import annotations

import os
import threading
import time

from benchmarks._util import emit, header
from repro import DatabaseConfig, TemporalDatabase
from repro.workloads import cad_schema

THREAD_COUNTS = (1, 2, 4, 8, 16)
COMMITS_PER_THREAD = 30
SIMULATED_FLUSH_SECONDS = 0.010


def _run_commits(db: TemporalDatabase, threads: int,
                 commits_per_thread: int) -> float:
    """Run the commit workload; returns wall-clock seconds."""
    errors = []

    def committer(seed: int) -> None:
        try:
            for i in range(commits_per_thread):
                with db.transaction() as txn:
                    txn.insert("Part", {"name": f"p{seed}-{i}", "cost": 1.0},
                               valid_from=0)
        except Exception as exc:  # noqa: BLE001 - fail the bench below
            errors.append(exc)

    workers = [threading.Thread(target=committer, args=(seed,))
               for seed in range(threads)]
    start = time.perf_counter()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    elapsed = time.perf_counter() - start
    assert not errors, errors
    return elapsed


def _throughput(tmp_path, tag: str, label: str, config: DatabaseConfig,
                threads: int) -> dict:
    db = TemporalDatabase.create(str(tmp_path / f"{tag}-{label}-{threads}"),
                                 cad_schema(), config)
    try:
        db.metrics.reset("wal.")
        elapsed = _run_commits(db, threads, COMMITS_PER_THREAD)
        commits = threads * COMMITS_PER_THREAD
        return {
            "label": label,
            "threads": threads,
            "commits": commits,
            "rate": commits / elapsed,
            "fsyncs": db.metrics.value("wal.fsyncs"),
            "group_commits": db.metrics.value("wal.group_commits"),
        }
    finally:
        db.close()


CONFIGS = (
    ("none", lambda: DatabaseConfig(durability="none")),
    ("fsync/commit", lambda: DatabaseConfig(group_commit=False)),
    ("group", lambda: DatabaseConfig()),
)


def _emit_row(capsys, tag: str, row: dict) -> None:
    emit(capsys,
         f"R-C1 | {tag:9s} | {row['label']:13s} | {row['threads']:2d} thr | "
         f"{row['rate']:9.0f} commits/s | "
         f"fsyncs={row['fsyncs']:4d}/{row['commits']} | "
         f"groups={row['group_commits']}")


def test_commit_throughput_report(benchmark, capsys, tmp_path, monkeypatch):
    """The full sweep: three durability modes across thread counts."""
    header(capsys, "R-C1",
           "commit throughput: durability price and group-commit recovery")
    import repro.txn.wal as wal_module
    real_fsync = os.fsync

    def disk_like_fsync(fd):
        real_fsync(fd)
        time.sleep(SIMULATED_FLUSH_SECONDS)

    monkeypatch.setattr(wal_module.os, "fsync", disk_like_fsync)
    emit(capsys, f"R-C1 | simulated device flush: "
                 f"{SIMULATED_FLUSH_SECONDS * 1000:.0f} ms per fsync")
    rows = {}
    for label, make_config in CONFIGS:
        for threads in THREAD_COUNTS:
            row = _throughput(tmp_path, "sim", label, make_config(), threads)
            rows[(label, threads)] = row
            _emit_row(capsys, "simulated", row)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    # Group commit must actually share fsyncs once committers overlap.
    for threads in (4, 8, 16):
        grouped = rows[("group", threads)]
        assert grouped["fsyncs"] < grouped["commits"], (
            f"{threads} threads: every commit paid its own fsync")

    # The headline claim: at 8 threads, group commit recovers at least
    # 5x the throughput of the per-commit-fsync baseline.
    none8 = rows[("none", 8)]["rate"]
    percommit8 = rows[("fsync/commit", 8)]["rate"]
    group8 = rows[("group", 8)]["rate"]
    emit(capsys,
         f"R-C1 | 8-thread summary | none={none8:.0f}/s "
         f"fsync/commit={percommit8:.0f}/s group={group8:.0f}/s | "
         f"group/percommit={group8 / percommit8:.1f}x")
    assert group8 >= 5 * percommit8, (
        "group commit no longer recovers the per-commit-fsync loss "
        f"(group={group8:.0f}/s, per-commit={percommit8:.0f}/s)")

    # Raw hardware, for reference only: on fast scratch disks the three
    # modes typically converge because fsync costs next to nothing.
    monkeypatch.setattr(wal_module.os, "fsync", real_fsync)
    for label, make_config in CONFIGS:
        row = _throughput(tmp_path, "raw", label, make_config(), 8)
        _emit_row(capsys, "raw", row)

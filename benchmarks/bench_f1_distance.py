"""R-F1 — Time-slice cost vs. temporal distance into the past.

Build atoms with 64-version histories and slice one part's molecule at
increasing temporal distance from now.  This is the figure that
separates the three physical designs most sharply:

* CHAINED — cost grows linearly with distance (pointer-chain walk);
* CLUSTERED — flat (the whole history arrives in one spanned record);
* SEPARATED — flat with a small constant for the version-directory probe.
"""

import pytest

from benchmarks._util import ALL_STRATEGIES, build_db, emit, header, pins, reset_counters
from repro import MoleculeType
from repro.workloads import history_depth_spec

HISTORY = 64
DISTANCES = [0, 8, 16, 32, 63]


def test_f1_report_header(benchmark, capsys):
    header(capsys, "R-F1",
           f"time-slice cost vs. temporal distance, history={HISTORY}")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


@pytest.fixture(scope="module")
def databases(tmp_path_factory):
    built = {}
    for strategy in ALL_STRATEGIES:
        path = tmp_path_factory.mktemp("f1") / strategy.value
        built[strategy] = build_db(str(path), history_depth_spec(HISTORY),
                                   strategy, buffer_pages=1024)
    yield built
    for db, _, _ in built.values():
        db.close()


@pytest.mark.parametrize("strategy", ALL_STRATEGIES,
                         ids=[s.value for s in ALL_STRATEGIES])
@pytest.mark.parametrize("distance", DISTANCES)
def test_f1_slice_at_distance(benchmark, capsys, databases, strategy,
                              distance):
    db, ids, groups = databases[strategy]
    mtype = MoleculeType.parse("Part.contains.Component", db.schema)
    part = ids[groups["Part"][0]]
    at = (HISTORY - 1) - distance

    def run():
        return db.builder.build_at(part, mtype, at)

    molecule = benchmark(run)
    assert molecule is not None
    reset_counters(db)
    run()
    emit(capsys,
         f"R-F1 | strategy={strategy.value:>9} distance={distance:>3} | "
         f"page_touches={pins(db):>5}")


"""R-F2 — Molecule construction cost vs. molecule size and depth.

Sweep the assembly fanout (components per part) so molecules grow from
2 to 65 atoms, and additionally compare a depth-3 molecule type
(part → component → supplier).  Construction cost should scale linearly
with the number of atom occurrences fetched, independent of strategy
(all are read at current time); the deterministic rows confirm page
touches per atom stay constant.
"""

import pytest

from benchmarks._util import build_db, emit, header, pins, reset_counters
from repro import MoleculeType, VersionStrategy
from repro.workloads import fanout_spec

FANOUTS = [1, 4, 16, 64]


def test_f2_report_header(benchmark, capsys):
    header(capsys, "R-F2",
           "molecule construction cost vs. molecule size and depth")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


@pytest.fixture(scope="module")
def databases(tmp_path_factory):
    built = {}
    for fanout in FANOUTS:
        path = tmp_path_factory.mktemp("f2") / f"fan{fanout}"
        built[fanout] = build_db(str(path), fanout_spec(fanout=fanout),
                                 VersionStrategy.SEPARATED,
                                 buffer_pages=1024)
    yield built
    for db, _, _ in built.values():
        db.close()


@pytest.mark.parametrize("fanout", FANOUTS)
def test_f2_molecule_size(benchmark, capsys, databases, fanout):
    db, ids, groups = databases[fanout]
    mtype = MoleculeType.parse("Part.contains.Component", db.schema)
    part = ids[groups["Part"][0]]

    def run():
        return db.builder.build_at(part, mtype, 1)

    molecule = benchmark(run)
    size = molecule.atom_count()
    reset_counters(db)
    run()
    emit(capsys,
         f"R-F2 | fanout={fanout:>3} depth=2 | atoms={size:>3} | "
         f"page_touches={pins(db):>4} | per_atom={pins(db) / size:.2f}")


@pytest.mark.parametrize("fanout", FANOUTS)
def test_f2_molecule_depth3(benchmark, capsys, databases, fanout):
    db, ids, groups = databases[fanout]
    mtype = MoleculeType.parse(
        "Part.contains.Component.supplied_by.Supplier", db.schema)
    part = ids[groups["Part"][0]]

    def run():
        return db.builder.build_at(part, mtype, 1)

    molecule = benchmark(run)
    size = molecule.atom_count()
    reset_counters(db)
    run()
    emit(capsys,
         f"R-F2 | fanout={fanout:>3} depth=3 | atoms={size:>3} | "
         f"page_touches={pins(db):>4} | per_atom={pins(db) / size:.2f}")


"""R-F3 — Full-history query cost vs. history length.

Reading an atom's complete version history (the ``VALID HISTORY``
building block) across history lengths 4..128.

Expected shape: CLUSTERED wins — the history is one contiguous
(possibly spanned) record; CHAINED pays one record per version along
the chain; SEPARATED pays the version directory plus one history-record
fetch per version but benefits from append-order locality.
"""

import pytest

from benchmarks._util import ALL_STRATEGIES, build_db, emit, header, pins, reset_counters
from repro.workloads import history_depth_spec

HISTORIES = [4, 16, 64, 128]


def test_f3_report_header(benchmark, capsys):
    header(capsys, "R-F3", "full-history read cost vs. history length")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


@pytest.fixture(scope="module")
def databases(tmp_path_factory):
    built = {}
    for strategy in ALL_STRATEGIES:
        for history in HISTORIES:
            path = (tmp_path_factory.mktemp("f3")
                    / f"{strategy.value}{history}")
            built[(strategy, history)] = build_db(
                str(path), history_depth_spec(history, parts=4), strategy,
                buffer_pages=1024)
    yield built
    for db, _, _ in built.values():
        db.close()


@pytest.mark.parametrize("strategy", ALL_STRATEGIES,
                         ids=[s.value for s in ALL_STRATEGIES])
@pytest.mark.parametrize("history", HISTORIES)
def test_f3_full_history(benchmark, capsys, databases, strategy, history):
    db, ids, groups = databases[(strategy, history)]
    part = ids[groups["Part"][0]]

    def run():
        return db.history(part)

    versions = benchmark(run)
    reset_counters(db)
    run()
    emit(capsys,
         f"R-F3 | strategy={strategy.value:>9} history={history:>3} | "
         f"versions_read={len(versions):>4} page_touches={pins(db):>5}")


"""R-F4 — Buffer-pool sensitivity of the time-slice workload.

The same mid-size database is queried (every part's molecule at the
current instant, repeatedly) under buffer pools from 8 to 512 pages.
Deterministic rows report the hit ratio; the timing series shows the
classic knee once the working set fits.
"""

import pytest

from benchmarks._util import breakdown_row, emit, header
from repro import DatabaseConfig, MoleculeType, TemporalDatabase, VersionStrategy
from repro.workloads import apply_to_database, buffer_sweep_spec, cad_schema, generate_bom

BUFFER_SIZES = [8, 32, 128, 512]


def test_f4_report_header(benchmark, capsys):
    header(capsys, "R-F4", "buffer-pool size sweep over the slice workload")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


@pytest.fixture(scope="module")
def seeded_dir(tmp_path_factory):
    """Build the database once; reopen it per buffer size."""
    path = str(tmp_path_factory.mktemp("f4") / "db")
    db = TemporalDatabase.create(path, cad_schema(),
                                 DatabaseConfig(buffer_pages=1024))
    ops, groups = generate_bom(buffer_sweep_spec())
    ids = apply_to_database(db, ops)
    parts = [ids[handle] for handle in groups["Part"]]
    db.close()
    return path, parts


@pytest.mark.parametrize("buffer_pages", BUFFER_SIZES)
def test_f4_buffer_sweep(benchmark, capsys, seeded_dir, buffer_pages):
    path, parts = seeded_dir
    db = TemporalDatabase.open(path,
                               DatabaseConfig(buffer_pages=buffer_pages))
    mtype = MoleculeType.parse("Part.contains.Component", db.schema)

    def workload():
        return db.builder.build_many(parts, mtype, 2)

    workload()  # warm the pool to steady state
    benchmark(workload)
    db.metrics.reset()  # isolate one measured pass for the breakdown
    workload()
    stats = db.buffer.stats
    emit(capsys,
         f"R-F4 | buffer={buffer_pages:>4} pages | "
         f"hit_ratio={stats.hit_ratio:6.3f} | hits={stats.hits:>6} "
         f"misses={stats.misses:>5} evictions={stats.evictions:>5}",
         f"R-F4 |        {buffer_pages:>4} layers | {breakdown_row(db)}")
    db.close()


"""R-F5 — Log volume and recovery time vs. update count.

Loads N update transactions after the last checkpoint, simulates a
crash, and measures (a) the write-ahead log volume those updates
produced and (b) the time to recover (checkpoint restore + committed
replay).  Both should scale linearly in the number of logged
operations — the property that makes checkpoint frequency a pure
throughput/restart-time trade.
"""

import shutil

import pytest

from benchmarks._util import emit, header
from repro import DatabaseConfig, TemporalDatabase
from repro.workloads import apply_to_database, cad_schema, generate_bom
from repro.workloads.generator import WorkloadSpec

UPDATE_COUNTS = [100, 400, 1600]


def _build_crashed_dir(base, updates):
    """A database directory as a crash would leave it, with *updates*
    committed operations in the log after the checkpoint."""
    path = str(base / f"crash{updates}")
    versions = max(2, updates // 20 + 2)  # enough churn ops to draw from
    spec = WorkloadSpec(parts=10, fanout=1, suppliers=2,
                        versions_per_atom=versions, seed=3)
    db = TemporalDatabase.create(path, cad_schema(),
                                 DatabaseConfig(buffer_pages=256))
    ops, _ = generate_bom(spec)
    setup = [op for op in ops if op[-1] == 0]   # initial build at time 0
    churn = [op for op in ops if op[-1] > 0][:updates]
    ids = apply_to_database(db, setup)
    db.checkpoint()
    wal_at_checkpoint = db.io_stats()["wal_bytes"]
    txn = db.begin()
    in_txn = 0
    for _, handle, changes, at in churn:
        if in_txn >= 50:
            txn.commit()
            txn = db.begin()
            in_txn = 0
        txn.update(ids[handle], changes, valid_from=at)
        in_txn += 1
    txn.commit()
    wal_bytes = db.io_stats()["wal_bytes"] - wal_at_checkpoint
    operations = len(churn)
    db._wal._file.flush()
    db._disk._file.flush()
    # Crash: drop the object without close().
    del db
    return path, wal_bytes, operations


def test_f5_report_header(benchmark, capsys):
    header(capsys, "R-F5", "log volume and recovery time vs. update count")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


@pytest.mark.parametrize("updates", UPDATE_COUNTS)
def test_f5_recovery(benchmark, capsys, tmp_path, updates):
    path, wal_bytes, operations = _build_crashed_dir(tmp_path, updates)
    pristine = path + ".pristine"
    shutil.copytree(path, pristine)

    def restore_crashed_state():
        shutil.rmtree(path)
        shutil.copytree(pristine, path)
        return (), {}

    def recover():
        db = TemporalDatabase.open(path)
        summary = db.last_recovery
        db.close()
        return summary

    summary = benchmark.pedantic(recover, setup=restore_crashed_state,
                                 rounds=3, iterations=1)
    assert summary is not None and summary["operations"] == operations
    emit(capsys,
         f"R-F5 | updates={operations:>5} | log_bytes={wal_bytes:>8} | "
         f"bytes_per_update={wal_bytes / max(1, operations):6.1f} | "
         f"replayed={summary['operations']}")


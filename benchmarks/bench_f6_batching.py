"""R-F6 — The set-oriented read path: batching, caching, parallelism.

Three questions, one per section:

1. **Page touches per molecule** — building through the batched
   ``version_at_many`` path must touch fewer buffer pages than the
   atom-at-a-time baseline (a reader proxy that hides the batch methods),
   for every storage strategy.  This is the CI gate: batching that stops
   paying off fails the run.
2. **History reconstruction** — ``build_history``'s per-call boundary
   memo must cut ``engine.versions_scanned`` versus the per-slice rescan
   it replaced.
3. **Parallel construction** — ``build_many(parallelism=N)`` over a
   40-root workload must return exactly the serial result in the same
   order; wall-clock per thread count is recorded.  (On a single-core
   host under the GIL, CPU-bound construction does not speed up — the
   row exists to record the honest number, not to flatter it.)

Decode caches are cleared before each measured run so page touches
reflect the read path itself, not residue from a previous measurement.
"""

import pytest

from benchmarks._util import (
    ALL_STRATEGIES,
    build_db,
    emit,
    header,
    pins,
    reset_counters,
)
from repro import MoleculeType
from repro.core.builder import MoleculeBuilder
from repro.workloads import WorkloadSpec, fanout_spec

PARALLELISMS = [1, 2, 4, 8]


class _UnbatchedReader:
    """Engine facade without the batch methods: the atom-at-a-time path."""

    def __init__(self, engine):
        self._engine = engine

    def atom_type_name(self, atom_id):
        return self._engine.atom_type_name(atom_id)

    def version_at(self, atom_id, at, tt=None):
        return self._engine.version_at(atom_id, at, tt)

    def all_versions(self, atom_id):
        return self._engine.all_versions(atom_id)


def _cold(db):
    """Clear decode caches so pins measure the read path, not residue."""
    db.engine._decode_cache.clear()
    db.engine._type_names.clear()


def test_f6_report_header(benchmark, capsys):
    header(capsys, "R-F6",
           "batched fetch vs atom-at-a-time, cached decode, parallelism")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


@pytest.fixture(scope="module")
def databases(tmp_path_factory):
    built = {}
    for strategy in ALL_STRATEGIES:
        path = tmp_path_factory.mktemp("f6") / f"db-{strategy.value}"
        built[strategy] = build_db(str(path), fanout_spec(fanout=16),
                                   strategy, buffer_pages=1024)
    yield built
    for db, _, _ in built.values():
        db.close()


# -- 1: page touches, batched vs unbatched ----------------------------------


@pytest.mark.parametrize("strategy", ALL_STRATEGIES,
                         ids=[s.value for s in ALL_STRATEGIES])
def test_f6_page_touches(benchmark, capsys, databases, strategy):
    db, ids, groups = databases[strategy]
    mtype = MoleculeType.parse(
        "Part.contains.Component.supplied_by.Supplier", db.schema)
    part = ids[groups["Part"][0]]
    unbatched_builder = MoleculeBuilder(_UnbatchedReader(db.engine),
                                        db.metrics)

    def batched():
        _cold(db)
        return db.builder.build_at(part, mtype, 1)

    def unbatched():
        _cold(db)
        return unbatched_builder.build_at(part, mtype, 1)

    molecule = benchmark(batched)
    size = molecule.atom_count()

    _cold(db)
    reset_counters(db)
    db.builder.build_at(part, mtype, 1)
    batched_pins = pins(db)

    _cold(db)
    reset_counters(db)
    reference = unbatched_builder.build_at(part, mtype, 1)
    unbatched_pins = pins(db)

    assert molecule.same_composition_as(reference)
    emit(capsys,
         f"R-F6 | {strategy.value:>9} | atoms={size:>3} | "
         f"batched_pins={batched_pins:>4} "
         f"({batched_pins / size:.2f}/atom) | "
         f"unbatched_pins={unbatched_pins:>4} "
         f"({unbatched_pins / size:.2f}/atom)")
    # The CI gate: batching must reduce page touches per molecule.
    assert batched_pins < unbatched_pins, (
        f"{strategy.value}: batched read path touched {batched_pins} pages "
        f"vs {unbatched_pins} unbatched — batching stopped paying off")


# -- 2: build_history boundary memo -----------------------------------------


@pytest.mark.parametrize("strategy", ALL_STRATEGIES,
                         ids=[s.value for s in ALL_STRATEGIES])
def test_f6_history_memo(benchmark, capsys, databases, strategy):
    from repro.temporal import Interval

    db, ids, groups = databases[strategy]
    mtype = MoleculeType.parse("Part.contains.Component", db.schema)
    part = ids[groups["Part"][0]]
    window = Interval(0, 8)

    def memoized():
        db.builder.history_memo_enabled = True
        return db.builder.build_history(part, mtype, window)

    def rescanning():
        db.builder.history_memo_enabled = False
        try:
            return db.builder.build_history(part, mtype, window)
        finally:
            db.builder.history_memo_enabled = True

    states = benchmark(memoized)

    before = db.metrics.value("engine.versions_scanned")
    memoized()
    memo_scans = db.metrics.value("engine.versions_scanned") - before

    before = db.metrics.value("engine.versions_scanned")
    baseline = rescanning()
    rescan_scans = db.metrics.value("engine.versions_scanned") - before

    assert [str(span) for span, _ in states] == [
        str(span) for span, _ in baseline]
    emit(capsys,
         f"R-F6 | {strategy.value:>9} | history states={len(states):>2} | "
         f"versions_scanned memo={memo_scans:>5} rescan={rescan_scans:>5}")
    assert memo_scans <= rescan_scans


# -- 3: parallel build_many ---------------------------------------------------


@pytest.fixture(scope="module")
def wide_db(tmp_path_factory):
    path = tmp_path_factory.mktemp("f6wide") / "db"
    spec = WorkloadSpec(parts=48, fanout=8, suppliers=8,
                        versions_per_atom=2, seed=6, share_components=False)
    db, ids, groups = build_db(str(path), spec, buffer_pages=2048)
    yield db, [ids[handle] for handle in groups["Part"]]
    db.close()


@pytest.mark.parametrize("parallelism", PARALLELISMS)
def test_f6_parallel_build_many(benchmark, capsys, wide_db, parallelism):
    db, roots = wide_db
    mtype = MoleculeType.parse(
        "Part.contains.Component.supplied_by.Supplier", db.schema)
    serial = db.builder.build_many(roots, mtype, 1)

    def run():
        return db.builder.build_many(roots, mtype, 1,
                                     parallelism=parallelism)

    molecules = benchmark(run)
    assert [m.root.atom_id for m in molecules] == [
        m.root.atom_id for m in serial]
    for mine, theirs in zip(molecules, serial):
        assert mine.same_composition_as(theirs)
    mean_ms = benchmark.stats.stats.mean * 1000
    emit(capsys,
         f"R-F6 | parallel | roots={len(roots):>3} threads={parallelism} | "
         f"mean={mean_ms:8.2f} ms | identical_to_serial=yes")

"""R-F7 — Predicate and projection pushdown into the version stores.

Two questions:

1. **Versions decoded per query** — a selective root predicate pushed
   into the store must decode strictly fewer versions (target: at least
   2x fewer) than the legacy decode-then-filter pipeline, for every
   storage strategy, while returning byte-identical results — the
   differential oracle runs inside the benchmark.
2. **Batched index maintenance** — one transaction's index entries are
   buffered and flushed as sorted runs (``index.batch_inserts``); the
   row records entries per batch so the write-path amortization stays
   visible over time.

Decode caches are cleared before each measured run so decode counts
reflect the read path itself, not residue from a previous measurement.
"""

import pytest

from benchmarks._util import (
    ALL_STRATEGIES,
    build_db,
    emit,
    header,
    pins,
    reset_counters,
)
from repro.mql.analyzer import analyze
from repro.mql.evaluator import execute_plan
from repro.mql.parser import parse_query
from repro.mql.planner import QueryPlan, plan
from repro.workloads import WorkloadSpec

SELECTIVE = "SELECT ALL FROM Part WHERE Part.name = 'part-3' VALID AT 1"
PROJECTED = ("SELECT Part.name, Part.cost FROM Part "
             "WHERE Part.cost > 250 VALID AT 1")
WINDOW = ("SELECT ALL FROM Part WHERE Part.name = 'part-3' "
          "VALID DURING [0, 6)")


def _cold(db):
    """Clear decode caches so counts measure the read path, not residue."""
    db.engine._decode_cache.clear()
    db.engine._type_names.clear()


def _canonical(result):
    return (result.projected,
            [(entry.root_id, (entry.valid.start, entry.valid.end),
              entry.molecule.to_dict() if entry.molecule is not None
              else None,
              entry.row)
             for entry in result])


def _plans(db, text):
    analyzed = analyze(parse_query(text), db.schema)
    pushed = plan(analyzed, db.engine)
    stripped = QueryPlan(analyzed, pushed.root_access)
    return pushed, stripped


def _decodes(db, query_plan):
    _cold(db)
    before = db.metrics.value("engine.decode_cache.misses")
    reset_counters(db)
    result = execute_plan(db, query_plan)
    return result, db.metrics.value(
        "engine.decode_cache.misses") - before, pins(db)


def test_f7_report_header(benchmark, capsys):
    header(capsys, "R-F7",
           "pushdown: versions decoded vs decode-then-filter, "
           "batched index maintenance")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


@pytest.fixture(scope="module")
def databases(tmp_path_factory):
    built = {}
    spec = WorkloadSpec(parts=32, fanout=4, suppliers=6,
                        versions_per_atom=4, seed=1992)
    for strategy in ALL_STRATEGIES:
        path = tmp_path_factory.mktemp("f7") / f"db-{strategy.value}"
        built[strategy] = build_db(str(path), spec, strategy,
                                   buffer_pages=1024)
    yield built
    for db, _, _ in built.values():
        db.close()


@pytest.mark.parametrize("strategy", ALL_STRATEGIES,
                         ids=[s.value for s in ALL_STRATEGIES])
def test_f7_selective_predicate_decodes(benchmark, capsys, databases,
                                        strategy):
    db, _, _ = databases[strategy]
    pushed_plan, stripped_plan = _plans(db, SELECTIVE)
    assert pushed_plan.pushdown is not None

    def run():
        _cold(db)
        return execute_plan(db, pushed_plan)

    benchmark(run)

    pushed, pushed_decodes, pushed_pins = _decodes(db, pushed_plan)
    legacy, legacy_decodes, legacy_pins = _decodes(db, stripped_plan)

    # The differential oracle: pushdown is invisible in the results.
    assert _canonical(pushed) == _canonical(legacy)
    atoms = sum(m.atom_count() for m in pushed.molecules()) or 1
    emit(capsys,
         f"R-F7 | {strategy.value:>9} | selective | "
         f"decoded pushdown={pushed_decodes:>4} "
         f"legacy={legacy_decodes:>4} | "
         f"pins pushdown={pushed_pins:>4} ({pushed_pins / atoms:.2f}/atom) "
         f"legacy={legacy_pins:>4}")
    # The trend gate: the pushdown must decode at least 2x fewer
    # versions than decode-then-filter on a selective predicate.
    assert pushed_decodes * 2 <= legacy_decodes, (
        f"{strategy.value}: pushdown decoded {pushed_decodes} versions vs "
        f"{legacy_decodes} legacy — predicate pushdown stopped paying off")


@pytest.mark.parametrize("strategy", ALL_STRATEGIES,
                         ids=[s.value for s in ALL_STRATEGIES])
def test_f7_projection_and_window(benchmark, capsys, databases, strategy):
    db, _, _ = databases[strategy]
    proj_pushed, proj_stripped = _plans(db, PROJECTED)
    win_pushed, win_stripped = _plans(db, WINDOW)

    def run():
        _cold(db)
        return execute_plan(db, proj_pushed)

    benchmark(run)

    for label, with_pd, without_pd in (("projected", proj_pushed,
                                        proj_stripped),
                                       ("window", win_pushed,
                                        win_stripped)):
        pushed, pushed_decodes, pushed_pins = _decodes(db, with_pd)
        legacy, legacy_decodes, legacy_pins = _decodes(db, without_pd)
        assert _canonical(pushed) == _canonical(legacy)
        emit(capsys,
             f"R-F7 | {strategy.value:>9} | {label:>9} | "
             f"decoded pushdown={pushed_decodes:>4} "
             f"legacy={legacy_decodes:>4} | "
             f"pins pushdown={pushed_pins:>4} legacy={legacy_pins:>4}")
        assert pushed_decodes <= legacy_decodes


def test_f7_batched_index_writes(benchmark, capsys, tmp_path_factory):
    path = tmp_path_factory.mktemp("f7idx") / "db"
    spec = WorkloadSpec(parts=24, fanout=3, suppliers=4,
                        versions_per_atom=3, seed=7)
    db, ids, groups = build_db(str(path), spec, buffer_pages=1024)
    try:
        db.create_attribute_index("Part", "name")
        db.metrics.reset("index.")
        with db.transaction() as txn:
            for index in range(64):
                txn.insert("Part", {"name": f"bulk-{index}",
                                    "cost": float(index)}, valid_from=0)
        batches = db.metrics.value("index.batch_inserts")
        entries = db.metrics.value("index.entries_added")
        emit(capsys,
             f"R-F7 | write path | entries_added={entries:>4} "
             f"batch_inserts={batches:>3} "
             f"({entries / max(batches, 1):.1f} entries/batch)")
        # One transaction's entries must flush as few sorted batches,
        # not one tree descent per entry.
        assert batches >= 1
        assert entries >= 64
        db.indexes.check_all()
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    finally:
        db.close()

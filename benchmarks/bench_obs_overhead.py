"""R-OBS — Cost of the observability layer on the hot pin/unpin path.

The metrics registry replaced the ad-hoc stats dataclasses; the hot-path
work is one ``+=`` on a slotted Counter, so instrumented pin/unpin must
run at effectively the old speed.  Two series make that visible:

* ``test_obs_pin_unpin_hot`` — the real buffer manager pinning a warm
  page in a loop (counters always on; spans never open because no trace
  capture is active);
* ``test_obs_counter_vs_attribute`` — the isolated delta between
  ``Counter.inc()`` and a bare attribute increment, the whole cost the
  registry adds per counted event.

A deterministic row reports the measured per-pin overhead ratio.  The
assertion is deliberately loose (instrumented <= 3x a bare attribute
loop) — the point is catching an accidental hot-path regression such as
a dict lookup or lock acquisition sneaking into ``inc()``, not enforcing
a tight timing bound on shared CI hardware.
"""

import time

import pytest

from benchmarks._util import emit, header
from repro.obs import MetricsRegistry
from repro.storage.buffer import BufferManager
from repro.storage.disk import DiskManager

LOOPS = 20_000


def test_obs_report_header(benchmark, capsys):
    header(capsys, "R-OBS", "observability overhead on the pin/unpin path")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


@pytest.fixture()
def warm_buffer(tmp_path):
    disk = DiskManager(tmp_path / "pages.db")
    buffer = BufferManager(disk, capacity=8)
    page_id = disk.allocate_page()
    buffer.pin(page_id)
    buffer.unpin(page_id)
    yield buffer, page_id
    disk.close()


def test_obs_pin_unpin_hot(benchmark, capsys, warm_buffer):
    """Pin/unpin of a resident page with counters live, spans off."""
    buffer, page_id = warm_buffer

    def workload():
        pin = buffer.pin
        unpin = buffer.unpin
        for _ in range(LOOPS):
            pin(page_id)
            unpin(page_id)

    benchmark(workload)
    per_pin = benchmark.stats["mean"] / LOOPS * 1e9
    emit(capsys, f"R-OBS | pin+unpin (warm, counters on) | "
                 f"{per_pin:8.1f} ns/op")


def test_obs_counter_vs_attribute(benchmark, capsys):
    """The isolated cost the registry adds per counted event."""

    class Bare:
        __slots__ = ("value",)

        def __init__(self):
            self.value = 0

    counter = MetricsRegistry().counter("bench.increments")
    bare = Bare()

    def time_loop(step):
        start = time.perf_counter()
        for _ in range(LOOPS):
            step()
        return time.perf_counter() - start

    def bare_step():
        bare.value += 1

    # Warm both paths, then time each with identical call shape.
    time_loop(counter.inc), time_loop(bare_step)
    counter_s = min(time_loop(counter.inc) for _ in range(5))
    bare_s = min(time_loop(bare_step) for _ in range(5))
    ratio = counter_s / bare_s if bare_s else 1.0
    emit(capsys,
         f"R-OBS | Counter.inc vs bare attribute += | "
         f"{counter_s / LOOPS * 1e9:6.1f} ns vs "
         f"{bare_s / LOOPS * 1e9:6.1f} ns (ratio {ratio:5.2f}x)")
    # A regression (lock, dict lookup, allocation) in inc() shows up as
    # an order-of-magnitude jump, far beyond this slack.
    assert ratio < 3.0, f"Counter.inc() regressed: {ratio:.2f}x a bare +="

    benchmark.pedantic(counter.inc, rounds=5, iterations=LOOPS)

"""R-OBS — Cost of the observability layer on the hot pin/unpin path.

The metrics registry replaced the ad-hoc stats dataclasses; the hot-path
work is one ``+=`` on a slotted Counter, so instrumented pin/unpin must
run at effectively the old speed.  Two series make that visible:

* ``test_obs_pin_unpin_hot`` — the real buffer manager pinning a warm
  page in a loop (counters always on; spans never open because no trace
  capture is active);
* ``test_obs_counter_vs_attribute`` — the isolated delta between
  ``Counter.inc()`` and a bare attribute increment, the whole cost the
  registry adds per counted event;
* ``test_obs_trace_context_tax`` — the wire-level cost of per-request
  trace propagation: loopback PING round trips with and without the
  client stamping a ``trace`` object (two ``os.urandom`` ids plus ~50
  JSON bytes per frame), measured against the ~0.11 ms R-S1 protocol
  tax it rides on.

A deterministic row reports the measured per-pin overhead ratio.  The
assertion is deliberately loose (instrumented <= 3x a bare attribute
loop) — the point is catching an accidental hot-path regression such as
a dict lookup or lock acquisition sneaking into ``inc()``, not enforcing
a tight timing bound on shared CI hardware.
"""

import time

import pytest

from benchmarks._util import emit, header
from repro.obs import MetricsRegistry
from repro.storage.buffer import BufferManager
from repro.storage.disk import DiskManager

LOOPS = 20_000


def test_obs_report_header(benchmark, capsys):
    header(capsys, "R-OBS", "observability overhead on the pin/unpin path")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


@pytest.fixture()
def warm_buffer(tmp_path):
    disk = DiskManager(tmp_path / "pages.db")
    buffer = BufferManager(disk, capacity=8)
    page_id = disk.allocate_page()
    buffer.pin(page_id)
    buffer.unpin(page_id)
    yield buffer, page_id
    disk.close()


def test_obs_pin_unpin_hot(benchmark, capsys, warm_buffer):
    """Pin/unpin of a resident page with counters live, spans off."""
    buffer, page_id = warm_buffer

    def workload():
        pin = buffer.pin
        unpin = buffer.unpin
        for _ in range(LOOPS):
            pin(page_id)
            unpin(page_id)

    benchmark(workload)
    per_pin = benchmark.stats["mean"] / LOOPS * 1e9
    emit(capsys, f"R-OBS | pin+unpin (warm, counters on) | "
                 f"{per_pin:8.1f} ns/op")


def test_obs_counter_vs_attribute(benchmark, capsys):
    """The isolated cost the registry adds per counted event."""

    class Bare:
        __slots__ = ("value",)

        def __init__(self):
            self.value = 0

    counter = MetricsRegistry().counter("bench.increments")
    bare = Bare()

    def time_loop(step):
        start = time.perf_counter()
        for _ in range(LOOPS):
            step()
        return time.perf_counter() - start

    def bare_step():
        bare.value += 1

    # Warm both paths, then time each with identical call shape.
    time_loop(counter.inc), time_loop(bare_step)
    counter_s = min(time_loop(counter.inc) for _ in range(5))
    bare_s = min(time_loop(bare_step) for _ in range(5))
    ratio = counter_s / bare_s if bare_s else 1.0
    emit(capsys,
         f"R-OBS | Counter.inc vs bare attribute += | "
         f"{counter_s / LOOPS * 1e9:6.1f} ns vs "
         f"{bare_s / LOOPS * 1e9:6.1f} ns (ratio {ratio:5.2f}x)")
    # A regression (lock, dict lookup, allocation) in inc() shows up as
    # an order-of-magnitude jump, far beyond this slack.
    assert ratio < 3.0, f"Counter.inc() regressed: {ratio:.2f}x a bare +="

    benchmark.pedantic(counter.inc, rounds=5, iterations=LOOPS)


def test_obs_trace_context_tax(capsys, tmp_path):
    """Per-request trace stamping vs bare frames, over loopback PING.

    PING does no kernel work, so its round trip *is* the protocol tax —
    the most hostile possible baseline for the trace object's extra id
    generation and payload bytes.  The assertion is loose (≤ 50 %
    overhead on shared CI hardware); the measured number recorded in
    EXPERIMENTS.md is the real claim (~2-3 %).
    """
    from repro import DatabaseConfig, TemporalDatabase
    from repro.server import DatabaseClient, DatabaseServer
    from repro.workloads import cad_schema

    db = TemporalDatabase.create(str(tmp_path / "tracedb"), cad_schema(),
                                 DatabaseConfig(buffer_pages=64))
    server = DatabaseServer(db).start()
    rounds = 300

    def best_ping_seconds(trace_context):
        with DatabaseClient(server.host, server.port,
                            trace_context=trace_context) as conn:
            for _ in range(50):
                conn.ping()  # warm the connection and the server path
            samples = []
            for _ in range(5):
                started = time.perf_counter()
                for _ in range(rounds):
                    conn.ping()
                samples.append((time.perf_counter() - started) / rounds)
            return min(samples)

    try:
        traced = best_ping_seconds(trace_context=True)
        bare = best_ping_seconds(trace_context=False)
    finally:
        server.shutdown()
        db.close()
    ratio = traced / bare if bare else 1.0
    emit(capsys,
         f"R-OBS | PING round trip, trace context on/off | "
         f"{traced * 1e6:7.1f} us vs {bare * 1e6:7.1f} us "
         f"(tax {max(0.0, ratio - 1.0) * 100:4.1f}%)")
    assert ratio < 1.5, (
        f"trace stamping costs {ratio:.2f}x a bare request — "
        f"far beyond id generation + payload bytes")

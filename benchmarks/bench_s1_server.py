"""R-S1 — The network service layer: wire overhead and concurrency.

The embedded kernel answers a point query in fractions of a
millisecond; putting a socket in front of it must not bury that.  Three
questions:

1. **Round-trip overhead** — the same point query in-process vs over a
   loopback connection (frame encode + TCP + dispatch + frame decode).
   The timing table carries both rows; the wire row minus the local row
   is the protocol tax.
2. **PREPARE/EXECUTE payoff** — repeated parameterized EXECUTEs ride
   the plan cache's parameterized-analysis cache; the timing rows
   compare cold QUERY text against prepared EXECUTE.
3. **Concurrent clients** — deterministic section: total throughput at
   1/2/4/8 threaded clients over the shared server, every response
   checked byte-identical against the in-process oracle, plus the
   shed/timeout counters (which must stay zero at these rates).

Loopback TCP only — numbers measure the software stack, not a NIC.
"""

import threading
import time

import pytest

from benchmarks._util import build_db, emit, header
from repro.server import ClientPool, DatabaseClient, DatabaseServer
from repro.server.protocol import encode_payload, result_to_payload
from repro.workloads import fanout_spec

POINT_QUERY = "SELECT ALL FROM Part WHERE Part.name = $name VALID AT 40"
SCAN_QUERY = "SELECT Part.name, Part.cost FROM Part VALID AT 40"
CLIENT_COUNTS = [1, 2, 4, 8]
REQUESTS_PER_CLIENT = 50


def test_s1_report_header(benchmark, capsys):
    header(capsys, "R-S1",
           "wire overhead, prepared execution, concurrent clients")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    path = tmp_path_factory.mktemp("s1") / "db"
    db, ids, groups = build_db(str(path), fanout_spec(fanout=8),
                               buffer_pages=512)
    server = DatabaseServer(db).start()
    yield db, server
    server.shutdown()
    db.close()


@pytest.fixture(scope="module")
def client(served):
    _, server = served
    with DatabaseClient(server.host, server.port) as connection:
        yield connection


# -- 1: round-trip overhead --------------------------------------------------


def test_s1_local_point_query(benchmark, served):
    db, _ = served
    benchmark(lambda: db.query(POINT_QUERY, params={"name": "part-0"}))


def test_s1_wire_point_query(benchmark, client):
    benchmark(lambda: client.query(POINT_QUERY,
                                   params={"name": "part-0"}))


def test_s1_local_scan_query(benchmark, served):
    db, _ = served
    benchmark(lambda: db.query(SCAN_QUERY))


def test_s1_wire_scan_query(benchmark, client):
    benchmark(lambda: client.query(SCAN_QUERY))


# -- 2: prepared execution ---------------------------------------------------


def test_s1_wire_prepared_execute(benchmark, client):
    statement = client.prepare(POINT_QUERY)
    benchmark(lambda: statement.execute({"name": "part-0"}))


# -- 3: concurrent clients ---------------------------------------------------


def test_s1_concurrent_client_scaling(served, capsys):
    db, server = served
    oracle = encode_payload(result_to_payload(db.query(SCAN_QUERY)))
    emit(capsys, "",
         "clients | total requests | wall s | req/s | identical")
    for clients in CLIENT_COUNTS:
        mismatches = []

        def worker():
            with DatabaseClient(server.host, server.port) as conn:
                for _ in range(REQUESTS_PER_CLIENT):
                    body = conn.query(SCAN_QUERY)
                    if encode_payload(body) != oracle:
                        mismatches.append(body)

        threads = [threading.Thread(target=worker)
                   for _ in range(clients)]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        total = clients * REQUESTS_PER_CLIENT
        emit(capsys,
             f"{clients:>7} | {total:>14} | {elapsed:>6.2f} "
             f"| {total / elapsed:>5.0f} | "
             f"{'yes' if not mismatches else 'NO'}")
        assert not mismatches, f"{len(mismatches)} mismatches at " \
                               f"{clients} clients"
    shed = db.metrics.value("server.load_shed")
    timeouts = db.metrics.value("server.queue_timeouts")
    emit(capsys, f"load_shed={shed} queue_timeouts={timeouts}")
    assert shed == 0 and timeouts == 0


def test_s1_pool_reuse_beats_reconnect(served, capsys):
    """Connection setup cost, amortized by the pool."""
    _, server = served
    rounds = 30
    started = time.perf_counter()
    for _ in range(rounds):
        with DatabaseClient(server.host, server.port) as conn:
            conn.query(SCAN_QUERY)
    reconnect = time.perf_counter() - started
    with ClientPool(server.host, server.port, size=1) as pool:
        started = time.perf_counter()
        for _ in range(rounds):
            pool.query(SCAN_QUERY)
        pooled = time.perf_counter() - started
    emit(capsys, "",
         f"{rounds} queries: reconnect-per-query {reconnect:.3f}s, "
         f"pooled {pooled:.3f}s "
         f"({reconnect / max(pooled, 1e-9):.1f}x)")
    assert pooled < reconnect

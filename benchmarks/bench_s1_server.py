"""R-S1 — The network service layer: wire overhead and concurrency.

The embedded kernel answers a point query in fractions of a
millisecond; putting a socket in front of it must not bury that.  Three
questions:

1. **Round-trip overhead** — the same point query in-process vs over a
   loopback connection (frame encode + TCP + dispatch + frame decode).
   The timing table carries both rows; the wire row minus the local row
   is the protocol tax.
2. **PREPARE/EXECUTE payoff** — repeated parameterized EXECUTEs ride
   the plan cache's parameterized-analysis cache; the timing rows
   compare cold QUERY text against prepared EXECUTE.
3. **Concurrent clients** — deterministic section: total throughput at
   1/2/4/8 threaded clients over the shared server, every response
   checked byte-identical against the in-process oracle, plus the
   shed/timeout counters (which must stay zero at these rates).
4. **Latency percentiles** — client-observed p50/p95/p99 of the wire
   point query next to the server's own bucket-estimated percentiles
   (the ``server.request_seconds`` histogram the STATS opcode and
   ``/metrics`` expose), written to ``BENCH_S1.json`` for
   machine-readable tracking across runs.

Loopback TCP only — numbers measure the software stack, not a NIC.
"""

import json
import pathlib
import threading
import time

import pytest

from benchmarks._util import build_db, emit, header
from repro.server import ClientPool, DatabaseClient, DatabaseServer
from repro.server.protocol import encode_payload, result_to_payload
from repro.workloads import fanout_spec

POINT_QUERY = "SELECT ALL FROM Part WHERE Part.name = $name VALID AT 40"
SCAN_QUERY = "SELECT Part.name, Part.cost FROM Part VALID AT 40"
CLIENT_COUNTS = [1, 2, 4, 8]
REQUESTS_PER_CLIENT = 50


def test_s1_report_header(benchmark, capsys):
    header(capsys, "R-S1",
           "wire overhead, prepared execution, concurrent clients")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    path = tmp_path_factory.mktemp("s1") / "db"
    db, ids, groups = build_db(str(path), fanout_spec(fanout=8),
                               buffer_pages=512)
    server = DatabaseServer(db).start()
    yield db, server
    server.shutdown()
    db.close()


@pytest.fixture(scope="module")
def client(served):
    _, server = served
    with DatabaseClient(server.host, server.port) as connection:
        yield connection


# -- 1: round-trip overhead --------------------------------------------------


def test_s1_local_point_query(benchmark, served):
    db, _ = served
    benchmark(lambda: db.query(POINT_QUERY, params={"name": "part-0"}))


def test_s1_wire_point_query(benchmark, client):
    benchmark(lambda: client.query(POINT_QUERY,
                                   params={"name": "part-0"}))


def test_s1_local_scan_query(benchmark, served):
    db, _ = served
    benchmark(lambda: db.query(SCAN_QUERY))


def test_s1_wire_scan_query(benchmark, client):
    benchmark(lambda: client.query(SCAN_QUERY))


# -- 2: prepared execution ---------------------------------------------------


def test_s1_wire_prepared_execute(benchmark, client):
    statement = client.prepare(POINT_QUERY)
    benchmark(lambda: statement.execute({"name": "part-0"}))


# -- 3: concurrent clients ---------------------------------------------------


def test_s1_concurrent_client_scaling(served, capsys):
    db, server = served
    oracle = encode_payload(result_to_payload(db.query(SCAN_QUERY)))
    emit(capsys, "",
         "clients | total requests | wall s | req/s | identical")
    for clients in CLIENT_COUNTS:
        mismatches = []

        def worker():
            with DatabaseClient(server.host, server.port) as conn:
                for _ in range(REQUESTS_PER_CLIENT):
                    body = conn.query(SCAN_QUERY)
                    if encode_payload(body) != oracle:
                        mismatches.append(body)

        threads = [threading.Thread(target=worker)
                   for _ in range(clients)]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        total = clients * REQUESTS_PER_CLIENT
        emit(capsys,
             f"{clients:>7} | {total:>14} | {elapsed:>6.2f} "
             f"| {total / elapsed:>5.0f} | "
             f"{'yes' if not mismatches else 'NO'}")
        assert not mismatches, f"{len(mismatches)} mismatches at " \
                               f"{clients} clients"
    shed = db.metrics.value("server.load_shed")
    timeouts = db.metrics.value("server.queue_timeouts")
    emit(capsys, f"load_shed={shed} queue_timeouts={timeouts}")
    assert shed == 0 and timeouts == 0


def test_s1_pool_reuse_beats_reconnect(served, capsys):
    """Connection setup cost, amortized by the pool."""
    _, server = served
    rounds = 30
    started = time.perf_counter()
    for _ in range(rounds):
        with DatabaseClient(server.host, server.port) as conn:
            conn.query(SCAN_QUERY)
    reconnect = time.perf_counter() - started
    with ClientPool(server.host, server.port, size=1) as pool:
        started = time.perf_counter()
        for _ in range(rounds):
            pool.query(SCAN_QUERY)
        pooled = time.perf_counter() - started
    emit(capsys, "",
         f"{rounds} queries: reconnect-per-query {reconnect:.3f}s, "
         f"pooled {pooled:.3f}s "
         f"({reconnect / max(pooled, 1e-9):.1f}x)")
    assert pooled < reconnect


# -- 4: latency percentiles + machine-readable results ------------------------

PERCENTILE_SAMPLES = 300


def test_s1_latency_percentiles_and_json(served, client, capsys):
    """Client-side percentiles vs the server's histogram estimate.

    The client measures true per-request wall times; the server
    estimates the same distribution from its fixed latency buckets
    (what STATS and ``/metrics`` serve).  Both land in
    ``BENCH_S1.json`` so regressions are diffable between runs.
    """
    db, server = served
    latencies = []
    for _ in range(PERCENTILE_SAMPLES):
        started = time.perf_counter()
        client.query(POINT_QUERY, params={"name": "part-0"})
        latencies.append(time.perf_counter() - started)
    latencies.sort()

    def pct(q):
        return latencies[min(len(latencies) - 1,
                             int(q * len(latencies)))]

    client_side = {"p50": pct(0.50), "p95": pct(0.95), "p99": pct(0.99)}
    body = client.stats()
    histogram = next(h for h in body["metrics"]["histograms"]
                     if h["name"] == "server.request_seconds")
    server_side = histogram["percentiles"]
    emit(capsys, "",
         "R-S1 | wire point query latency | client-observed vs "
         "server-estimated",
         "      | " + "  ".join(
             f"{label} {client_side[label] * 1000:.3f}ms"
             for label in ("p50", "p95", "p99")) + " (client)",
         "      | " + "  ".join(
             f"{label} {server_side[label] * 1000:.3f}ms"
             for label in ("p50", "p95", "p99")
             if server_side.get(label) is not None)
         + f" (server histogram, {histogram['count']} samples)")
    results = {
        "experiment": "R-S1",
        "query": POINT_QUERY,
        "samples": PERCENTILE_SAMPLES,
        "client_side_ms": {k: round(v * 1000, 3)
                           for k, v in client_side.items()},
        "server_side_ms": {k: (round(v * 1000, 3) if v is not None
                               else None)
                           for k, v in server_side.items()},
        "histogram_samples": histogram["count"],
        "admission": body["server"]["admission"],
    }
    out = pathlib.Path("BENCH_S1.json")
    out.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    emit(capsys, f"      | wrote {out.resolve()}")
    assert client_side["p50"] <= client_side["p95"] <= client_side["p99"]
    # The server's own estimate must at least land in the same decade
    # as the client's view (client adds the wire on top).
    if server_side.get("p50") is not None:
        assert server_side["p50"] <= client_side["p99"] * 2

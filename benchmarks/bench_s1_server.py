"""R-S1 — The network service layer: wire overhead and concurrency.

The embedded kernel answers a point query in fractions of a
millisecond; putting a socket in front of it must not bury that.  Three
questions:

1. **Round-trip overhead** — the same point query in-process vs over a
   loopback connection (frame encode + TCP + dispatch + frame decode).
   The timing table carries both rows; the wire row minus the local row
   is the protocol tax.
2. **PREPARE/EXECUTE payoff** — repeated parameterized EXECUTEs ride
   the plan cache's parameterized-analysis cache; the timing rows
   compare cold QUERY text against prepared EXECUTE.
3. **Concurrent clients** — deterministic section: total throughput at
   1/2/4/8 threaded clients over the shared server, every response
   checked byte-identical against the in-process oracle, plus the
   shed/timeout counters (which must stay zero at these rates).
4. **Latency percentiles** — client-observed p50/p95/p99 of the wire
   point query next to the server's own bucket-estimated percentiles
   (the ``server.request_seconds`` histogram the STATS opcode and
   ``/metrics`` expose), written to ``BENCH_S1.json`` for
   machine-readable tracking across runs.
5. **Connection axis** — how many idle handshaken sessions the
   event-loop server holds at once, what each costs in resident
   memory, and whether a request on one of them still answers promptly
   (sampled PING p95) while thousands of peers sit registered in the
   selector.  Scaled down automatically under low ``RLIMIT_NOFILE``.
6. **Streamed results beyond the frame cap** — a VALID HISTORY result
   several times larger than ``MAX_FRAME_BYTES`` is refused outright
   by the eager QUERY path but streams to completion through a cursor,
   with client-process RSS growing by chunks, not by the result.

Loopback TCP only — numbers measure the software stack, not a NIC.
"""

import contextlib
import json
import os
import pathlib
import resource
import socket
import threading
import time

import pytest

from benchmarks._util import build_db, emit, header
from repro import (
    AtomType,
    Attribute,
    DataType,
    DatabaseConfig,
    Schema,
    TemporalDatabase,
)
from repro.errors import RemoteError
from repro.server import ClientPool, DatabaseClient, DatabaseServer
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_MAGIC,
    PROTOCOL_VERSION,
    Opcode,
    encode_payload,
    read_frame,
    result_to_payload,
    write_frame,
)
from repro.workloads import fanout_spec

POINT_QUERY = "SELECT ALL FROM Part WHERE Part.name = $name VALID AT 40"
SCAN_QUERY = "SELECT Part.name, Part.cost FROM Part VALID AT 40"
CLIENT_COUNTS = [1, 2, 4, 8]
REQUESTS_PER_CLIENT = 50


def _record(section: str, payload) -> pathlib.Path:
    """Merge one section into ``BENCH_S1.json``.

    Several benchmarks in this module contribute axes to the same
    results file, so each reads what is already there and replaces only
    its own key — running a single test never erases the others' rows.
    """
    out = pathlib.Path("BENCH_S1.json")
    try:
        existing = json.loads(out.read_text(encoding="utf-8"))
        if not isinstance(existing, dict) or "experiment" in existing:
            existing = {}  # pre-sectioned flat layout: start over
    except (OSError, ValueError):
        existing = {}
    existing[section] = payload
    out.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    return out


def _rss_bytes() -> int:
    """Current resident set size of this process (server + clients —
    the benches run everything in one process, so growth bounds both
    sides at once)."""
    try:
        with open("/proc/self/statm", encoding="ascii") as statm:
            return int(statm.read().split()[1]) * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError):
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def test_s1_report_header(benchmark, capsys):
    header(capsys, "R-S1",
           "wire overhead, prepared execution, concurrent clients")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    path = tmp_path_factory.mktemp("s1") / "db"
    db, ids, groups = build_db(str(path), fanout_spec(fanout=8),
                               buffer_pages=512)
    server = DatabaseServer(db).start()
    yield db, server
    server.shutdown()
    db.close()


@pytest.fixture(scope="module")
def client(served):
    _, server = served
    with DatabaseClient(server.host, server.port) as connection:
        yield connection


# -- 1: round-trip overhead --------------------------------------------------


def test_s1_local_point_query(benchmark, served):
    db, _ = served
    benchmark(lambda: db.query(POINT_QUERY, params={"name": "part-0"}))


def test_s1_wire_point_query(benchmark, client):
    benchmark(lambda: client.query(POINT_QUERY,
                                   params={"name": "part-0"}))


def test_s1_local_scan_query(benchmark, served):
    db, _ = served
    benchmark(lambda: db.query(SCAN_QUERY))


def test_s1_wire_scan_query(benchmark, client):
    benchmark(lambda: client.query(SCAN_QUERY))


# -- 2: prepared execution ---------------------------------------------------


def test_s1_wire_prepared_execute(benchmark, client):
    statement = client.prepare(POINT_QUERY)
    benchmark(lambda: statement.execute({"name": "part-0"}))


# -- 3: concurrent clients ---------------------------------------------------


def test_s1_concurrent_client_scaling(served, capsys):
    db, server = served
    oracle = encode_payload(result_to_payload(db.query(SCAN_QUERY)))
    emit(capsys, "",
         "clients | total requests | wall s | req/s | identical")
    for clients in CLIENT_COUNTS:
        mismatches = []

        def worker():
            with DatabaseClient(server.host, server.port) as conn:
                for _ in range(REQUESTS_PER_CLIENT):
                    body = conn.query(SCAN_QUERY)
                    if encode_payload(body) != oracle:
                        mismatches.append(body)

        threads = [threading.Thread(target=worker)
                   for _ in range(clients)]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        total = clients * REQUESTS_PER_CLIENT
        emit(capsys,
             f"{clients:>7} | {total:>14} | {elapsed:>6.2f} "
             f"| {total / elapsed:>5.0f} | "
             f"{'yes' if not mismatches else 'NO'}")
        assert not mismatches, f"{len(mismatches)} mismatches at " \
                               f"{clients} clients"
    shed = db.metrics.value("server.load_shed")
    timeouts = db.metrics.value("server.queue_timeouts")
    emit(capsys, f"load_shed={shed} queue_timeouts={timeouts}")
    assert shed == 0 and timeouts == 0


def test_s1_pool_reuse_beats_reconnect(served, capsys):
    """Connection setup cost, amortized by the pool."""
    _, server = served
    rounds = 30
    started = time.perf_counter()
    for _ in range(rounds):
        with DatabaseClient(server.host, server.port) as conn:
            conn.query(SCAN_QUERY)
    reconnect = time.perf_counter() - started
    with ClientPool(server.host, server.port, size=1) as pool:
        started = time.perf_counter()
        for _ in range(rounds):
            pool.query(SCAN_QUERY)
        pooled = time.perf_counter() - started
    emit(capsys, "",
         f"{rounds} queries: reconnect-per-query {reconnect:.3f}s, "
         f"pooled {pooled:.3f}s "
         f"({reconnect / max(pooled, 1e-9):.1f}x)")
    assert pooled < reconnect


# -- 4: latency percentiles + machine-readable results ------------------------

PERCENTILE_SAMPLES = 300


def test_s1_latency_percentiles_and_json(served, client, capsys):
    """Client-side percentiles vs the server's histogram estimate.

    The client measures true per-request wall times; the server
    estimates the same distribution from its fixed latency buckets
    (what STATS and ``/metrics`` serve).  Both land in
    ``BENCH_S1.json`` so regressions are diffable between runs.
    """
    db, server = served
    latencies = []
    for _ in range(PERCENTILE_SAMPLES):
        started = time.perf_counter()
        client.query(POINT_QUERY, params={"name": "part-0"})
        latencies.append(time.perf_counter() - started)
    latencies.sort()

    def pct(q):
        return latencies[min(len(latencies) - 1,
                             int(q * len(latencies)))]

    client_side = {"p50": pct(0.50), "p95": pct(0.95), "p99": pct(0.99)}
    body = client.stats()
    histogram = next(h for h in body["metrics"]["histograms"]
                     if h["name"] == "server.request_seconds")
    server_side = histogram["percentiles"]
    emit(capsys, "",
         "R-S1 | wire point query latency | client-observed vs "
         "server-estimated",
         "      | " + "  ".join(
             f"{label} {client_side[label] * 1000:.3f}ms"
             for label in ("p50", "p95", "p99")) + " (client)",
         "      | " + "  ".join(
             f"{label} {server_side[label] * 1000:.3f}ms"
             for label in ("p50", "p95", "p99")
             if server_side.get(label) is not None)
         + f" (server histogram, {histogram['count']} samples)")
    results = {
        "experiment": "R-S1",
        "query": POINT_QUERY,
        "samples": PERCENTILE_SAMPLES,
        "client_side_ms": {k: round(v * 1000, 3)
                           for k, v in client_side.items()},
        "server_side_ms": {k: (round(v * 1000, 3) if v is not None
                               else None)
                           for k, v in server_side.items()},
        "histogram_samples": histogram["count"],
        "admission": body["server"]["admission"],
    }
    out = _record("latency", results)
    emit(capsys, f"      | wrote {out.resolve()}")
    assert client_side["p50"] <= client_side["p95"] <= client_side["p99"]
    # The server's own estimate must at least land in the same decade
    # as the client's view (client adds the wire on top).
    if server_side.get("p50") is not None:
        assert server_side["p50"] <= client_side["p99"] * 2


# -- 5: connection axis — thousands of idle sessions -------------------------

IDLE_SESSION_TARGET = 5000
PING_SAMPLES = 200
PER_SESSION_RSS_CAP = 64 * 1024


def _raw_session(server) -> socket.socket:
    """A handshaken raw socket — the cheapest possible idle session
    (no DatabaseClient machinery), so the sweep measures the server."""
    sock = socket.create_connection((server.host, server.port),
                                    timeout=10)
    sock.settimeout(10)
    write_frame(sock, Opcode.HELLO, 1, encode_payload(
        {"magic": PROTOCOL_MAGIC, "protocol": PROTOCOL_VERSION}))
    frame = read_frame(sock)
    assert frame.opcode == Opcode.RESULT
    return sock


def _ping(sock: socket.socket, request_id: int) -> None:
    write_frame(sock, Opcode.PING, request_id, encode_payload({}))
    frame = read_frame(sock)
    assert frame.opcode == Opcode.RESULT


def test_s1_idle_connection_scaling(served, capsys):
    """Open up to 5,000 handshaken idle sessions against a dedicated
    event-loop server, then check that (a) every one of them is live in
    the selector, (b) the marginal memory cost per session is small and
    flat, and (c) a request threaded between thousands of idle peers
    still answers in single-digit milliseconds."""
    db, _ = served
    soft, _hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    target = min(IDLE_SESSION_TARGET, max(soft - 300, 0))
    if target < 500:
        pytest.skip(f"RLIMIT_NOFILE soft limit {soft} leaves no room "
                    f"for a connection sweep")
    server = DatabaseServer(db, max_connections=target + 16,
                            idle_timeout=None).start()
    sockets = []
    try:
        rss_before = _rss_bytes()
        started = time.perf_counter()
        for _ in range(target):
            sockets.append(_raw_session(server))
        open_seconds = time.perf_counter() - started
        rss_after = _rss_bytes()
        per_session = (rss_after - rss_before) / target

        # PING a stride-sample of the sessions while every other one
        # stays idle and registered.
        stride = max(1, target // PING_SAMPLES)
        latencies = []
        for index, sock in enumerate(sockets[::stride]):
            ping_started = time.perf_counter()
            _ping(sock, 2 + index)
            latencies.append(time.perf_counter() - ping_started)
        latencies.sort()

        def pct(q):
            return latencies[min(len(latencies) - 1,
                                 int(q * len(latencies)))]

        sessions = server.state_snapshot()["sessions"]
        emit(capsys, "",
             f"R-S1 | connection axis | {target} idle sessions in "
             f"{open_seconds:.2f}s "
             f"({target / open_seconds:.0f}/s)",
             f"      | sessions live {sessions} | "
             f"rss +{(rss_after - rss_before) / (1 << 20):.1f} MiB "
             f"({per_session / 1024:.1f} KiB/session)",
             f"      | PING among idle peers ({len(latencies)} "
             f"samples): p50 {pct(0.50) * 1000:.3f}ms "
             f"p95 {pct(0.95) * 1000:.3f}ms "
             f"p99 {pct(0.99) * 1000:.3f}ms")
        _record("connection_axis", {
            "idle_sessions": target,
            "open_seconds": round(open_seconds, 3),
            "sessions_per_second": round(target / open_seconds, 1),
            "rss_growth_mib": round(
                (rss_after - rss_before) / (1 << 20), 2),
            "rss_per_session_kib": round(per_session / 1024, 2),
            "ping_samples": len(latencies),
            "ping_ms": {"p50": round(pct(0.50) * 1000, 3),
                        "p95": round(pct(0.95) * 1000, 3),
                        "p99": round(pct(0.99) * 1000, 3)},
        })
        assert sessions == target
        assert per_session < PER_SESSION_RSS_CAP
        assert pct(0.95) < 0.005, \
            f"p95 PING {pct(0.95) * 1000:.3f}ms at {target} sessions"
    finally:
        for sock in sockets:
            with contextlib.suppress(OSError):
                sock.close()
        server.shutdown()


# -- 6: streamed results beyond the frame cap ---------------------------------

BLOB_BYTES = 16 * 1024
STREAM_TARGET_BYTES = 4 * MAX_FRAME_BYTES
STREAM_CHUNK_ENTRIES = 8


def test_s1_streamed_result_beyond_frame_cap(tmp_path_factory, capsys):
    """A VALID HISTORY result ≥4x the 8 MiB frame cap: the eager QUERY
    path refuses it with a non-transient ResultTooLargeError, while a
    cursor streams the identical result to completion with resident
    memory growing by O(chunk), not O(result)."""
    path = tmp_path_factory.mktemp("s1stream") / "db"
    schema = Schema("blobs")
    schema.add_atom_type(AtomType("Blob", [
        Attribute("tag", DataType.STRING, required=True),
        Attribute("payload", DataType.STRING),
    ]))
    # Large pages so a 16 KiB record fits one slot (page offsets are
    # 16-bit, so 32 KiB is the ceiling); tiny decode cache and buffer
    # pool so neither silently absorbs the result set and masks a
    # materialization bug in the streaming path.
    db = TemporalDatabase.create(str(path), schema, DatabaseConfig(
        page_size=32 * 1024, buffer_pages=128, durability="none",
        decode_cache_bytes=1 << 20))
    roots = 128
    versions = 18  # 128 roots x 18 states x 16 KiB ~= 36 MiB on the wire
    filler = "x" * BLOB_BYTES
    with db.transaction() as txn:
        atom_ids = [txn.insert("Blob",
                               {"tag": f"b{index}", "payload": filler},
                               valid_from=0)
                    for index in range(roots)]
    for state in range(1, versions):
        with db.transaction() as txn:
            for index, atom in enumerate(atom_ids):
                txn.update(atom, {"tag": f"b{index}s{state}"},
                           valid_from=state)
    query = "SELECT ALL FROM Blob VALID HISTORY"
    server = DatabaseServer(db).start()
    try:
        with DatabaseClient(server.host, server.port) as conn:
            # Warm-up pass: the first stream through fresh thread
            # arenas raises the allocator's high-water mark once
            # (transient JSON buffers across loop/worker/client
            # threads); steady-state growth is what O(chunk) promises.
            cold_before = _rss_bytes()
            for _ in conn.query_stream(
                    query, chunk_entries=STREAM_CHUNK_ENTRIES).chunks():
                pass
            cold_growth = _rss_bytes() - cold_before

            rss_before = _rss_bytes()
            rss_peak = rss_before
            total_entries = 0
            payload_bytes = 0
            chunk_count = 0
            started = time.perf_counter()
            cursor = conn.query_stream(
                query, chunk_entries=STREAM_CHUNK_ENTRIES)
            for chunk in cursor.chunks():
                chunk_count += 1
                total_entries += len(chunk)
                payload_bytes += sum(
                    len(entry["molecule"]["root"]["values"]["payload"])
                    for entry in chunk)
                rss_peak = max(rss_peak, _rss_bytes())
            stream_seconds = time.perf_counter() - started
            growth = rss_peak - rss_before

            with pytest.raises(RemoteError) as info:
                conn.query(query)
            assert info.value.remote_type == "ResultTooLargeError"
            assert info.value.transient is False
            # The refusal left the connection synchronized.
            conn.ping()

        emit(capsys, "",
             f"R-S1 | streamed result | {total_entries} entries / "
             f"{payload_bytes / (1 << 20):.1f} MiB payload "
             f"({payload_bytes / MAX_FRAME_BYTES:.1f}x the frame cap) "
             f"in {chunk_count} chunks of {STREAM_CHUNK_ENTRIES}",
             f"      | streamed in {stream_seconds:.2f}s "
             f"({payload_bytes / (1 << 20) / stream_seconds:.1f} MiB/s) "
             f"| rss peak +{growth / (1 << 20):.1f} MiB steady "
             f"(+{cold_growth / (1 << 20):.1f} MiB first pass) "
             f"| eager QUERY -> ResultTooLargeError")
        _record("streamed_result", {
            "query": query,
            "entries": total_entries,
            "payload_mib": round(payload_bytes / (1 << 20), 2),
            "frame_cap_multiple": round(
                payload_bytes / MAX_FRAME_BYTES, 2),
            "chunk_entries": STREAM_CHUNK_ENTRIES,
            "chunks": chunk_count,
            "stream_seconds": round(stream_seconds, 3),
            "throughput_mib_s": round(
                payload_bytes / (1 << 20) / stream_seconds, 2),
            "rss_peak_growth_mib": round(growth / (1 << 20), 2),
            "rss_first_pass_growth_mib": round(
                cold_growth / (1 << 20), 2),
            "eager_query": "ResultTooLargeError",
        })
        assert total_entries == roots * versions
        assert payload_bytes >= STREAM_TARGET_BYTES
        # O(chunk) memory: materializing the whole result on either
        # side would cost at least payload_bytes of RSS; the measured
        # steady-state pass must stay far below that.
        assert growth < payload_bytes // 4, \
            f"rss grew {growth / (1 << 20):.1f} MiB while streaming a " \
            f"{payload_bytes / (1 << 20):.1f} MiB result"
    finally:
        server.shutdown()
        db.close()

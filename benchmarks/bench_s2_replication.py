"""R-S2 — WAL-shipping replication: read scaling and steady-state lag.

One primary process plus N replica processes (``--replica-of``) on
loopback.  Four questions:

1. **Fleet read capacity vs replica count** (headline) — every serving
   node measured alone on the same time-travel query, with every other
   process frozen (SIGSTOP), then summed.  This host has a single CPU,
   so measuring the nodes *concurrently* only divides one core among
   them; freezing the others measures what each node could serve with
   a core of its own, which is the multi-host deployment replication
   models.  The technique is stated up front so the headline ratio is
   read for what it is: added serving capacity, not single-box CPU
   scale-out.
2. **Concurrent routed goodput** — 12 client threads issue ``AS OF``
   queries pinned at a transaction time every replica has replayed,
   through a :class:`ClientPool` that routes time-bounded reads
   round-robin to the replicas; a writer keeps committing through the
   primary the whole time.  On one core, aggregate reads *drop* as
   replicas are added (replay + extra processes tax the shared core)
   while writer throughput rises several-fold because routed reads
   leave the primary.  Recorded unvarnished next to the headline.
3. **Steady-state lag** — while the writer runs, each replica's PING is
   sampled twice a second: replayed-vs-received LSN gap and the
   server-reported lag seconds, recorded as median/max.
4. **Replica fidelity** — after the measured window the writer stops,
   replicas catch up, and an ``AS OF`` query over the atoms the writer
   was updating must return identical results from the primary and
   every replica.  A mismatch fails the benchmark: throughput numbers
   from a diverged replica would be meaningless.

``BENCH_S2.json`` keeps the machine-readable rows.
"""

import json
import os
import pathlib
import re
import shutil
import signal
import subprocess
import sys
import threading
import time

from benchmarks._util import build_db, emit, header
from repro.server import ClientPool, DatabaseClient
from repro.workloads import fanout_spec

REPLICA_POINTS = [0, 1, 2, 4]
READER_THREADS = 12
WINDOW_SECONDS = 5.0
CAPACITY_SECONDS = 2.0
CAPACITY_THREADS = 6
READ_QUERY = "SELECT ALL FROM Document AS OF {tt}"
ORACLE_QUERY = "SELECT ALL FROM Component AS OF {tt}"

_ADDR = re.compile(r"serving .* on ([\d.]+):(\d+)")


def _record(section: str, payload) -> pathlib.Path:
    """Merge one section into ``BENCH_S2.json`` (same idiom as R-S1)."""
    out = pathlib.Path("BENCH_S2.json")
    try:
        existing = json.loads(out.read_text(encoding="utf-8"))
        if not isinstance(existing, dict):
            existing = {}
    except (OSError, ValueError):
        existing = {}
    existing[section] = payload
    out.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    return out


def _percentile(sorted_values, fraction):
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                int(len(sorted_values) * fraction))
    return sorted_values[index]


class _Server:
    """One ``python -m repro serve`` subprocess."""

    def __init__(self, path, extra=()):
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        env["PYTHONUNBUFFERED"] = "1"
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--path", str(path),
             "--port", "0", "--request-timeout", "5.0", *extra],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True)
        deadline = time.monotonic() + 30
        self.host = self.port = None
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                raise RuntimeError(
                    f"server at {path} died: {self.proc.poll()}")
            match = _ADDR.search(line)
            if match:
                self.host, self.port = match.group(1), int(match.group(2))
                break
        if self.port is None:
            raise RuntimeError("server printed no address line")
        # Drain further stdout so the pipe can never fill and block.
        threading.Thread(target=self.proc.stdout.read, daemon=True).start()

    def stop(self):
        self.proc.terminate()
        try:
            self.proc.wait(10)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait(10)


class _Cluster:
    def __init__(self, root, n_replicas):
        seed = root / "seed"
        if not seed.exists():
            db, ids, groups = build_db(str(seed), fanout_spec(fanout=8))
            # Last committed transaction time of the seed build: a
            # belief time every copy (primary and replicas) has from
            # birth, so AS OF it is always replica-routable.
            (root / "seed.json").write_text(json.dumps({
                "comp_ids": sorted(ids[h] for h in groups["Component"]),
                "as_of": int(db._clock.now()) - 1,
            }))
            db.close()
        meta = json.loads((root / "seed.json").read_text())
        self.comp_ids = meta["comp_ids"]
        self.seed_as_of = meta["as_of"]
        run_dir = root / f"point{n_replicas}"
        shutil.copytree(seed, run_dir / "primary")
        self.primary = _Server(run_dir / "primary")
        self.replicas = []
        for index in range(n_replicas):
            shutil.copytree(seed, run_dir / f"replica{index}")
            self.replicas.append(_Server(
                run_dir / f"replica{index}",
                ("--replica-of", f"{self.primary.host}:{self.primary.port}",
                 "--replica-checkpoint-interval", "1.0")))

    def wait_caught_up(self, timeout=30.0):
        deadline = time.monotonic() + timeout
        for server in self.replicas:
            client = DatabaseClient(server.host, server.port)
            try:
                while time.monotonic() < deadline:
                    rep = client.ping().get("replication") or {}
                    if rep.get("caught_up"):
                        break
                    time.sleep(0.05)
                else:
                    raise AssertionError("replica never caught up")
            finally:
                client.close()

    def watermark(self):
        """The lowest replayed transaction time across replicas."""
        marks = []
        for server in self.replicas:
            client = DatabaseClient(server.host, server.port)
            try:
                rep = client.ping().get("replication") or {}
                marks.append(int(rep.get("replayed_tt", 0)))
            finally:
                client.close()
        return min(marks) if marks else None

    def stop(self):
        for server in self.replicas:
            server.stop()
        self.primary.stop()


def _node_goodput(server, query):
    """Closed-loop read throughput of one node in isolation."""
    stop = threading.Event()
    counts = [0] * CAPACITY_THREADS

    def loop(slot):
        client = DatabaseClient(server.host, server.port)
        try:
            while not stop.is_set():
                client.query(query)
                counts[slot] += 1
        finally:
            client.close()

    workers = [threading.Thread(target=loop, args=(slot,), daemon=True)
               for slot in range(CAPACITY_THREADS)]
    begun = time.monotonic()
    for worker in workers:
        worker.start()
    time.sleep(CAPACITY_SECONDS)
    stop.set()
    for worker in workers:
        worker.join(10)
    return sum(counts) / (time.monotonic() - begun)


def _timesliced_capacity(cluster, query):
    """Per-node read capacity with every other process SIGSTOPped.

    The sum estimates the fleet's aggregate serving capacity were each
    node given its own core/host — the quantity replication actually
    adds.  Run quiesced (writer stopped, replicas caught up) so frozen
    peers cannot distort the node under test.
    """
    nodes = [cluster.primary] + cluster.replicas
    per_node = []
    for node in nodes:
        others = [server for server in nodes if server is not node]
        for other in others:
            os.kill(other.proc.pid, signal.SIGSTOP)
        try:
            per_node.append(round(_node_goodput(node, query), 1))
        finally:
            for other in others:
                os.kill(other.proc.pid, signal.SIGCONT)
    return per_node


def _run_point(tmp_root, n_replicas):
    cluster = _Cluster(tmp_root, n_replicas)
    try:
        writer = DatabaseClient(cluster.primary.host, cluster.primary.port)
        # Committed history through the wire, then confirm every
        # replica replays it before the clock starts.
        for round_no in range(20):
            with writer.transaction() as txn:
                txn.update(cluster.comp_ids[round_no % 16],
                           {"weight": float(round_no)}, valid_from=1)
        cluster.wait_caught_up()
        # Readers pin to the seed's last committed transaction time: a
        # belief time every server holds from birth, so the pool can
        # always route it to a replica regardless of replay progress.
        as_of = cluster.seed_as_of
        read_query = READ_QUERY.format(tt=as_of)

        pool = ClientPool(
            cluster.primary.host, cluster.primary.port,
            size=READER_THREADS,
            replicas=[(s.host, s.port) for s in cluster.replicas])

        stop = threading.Event()
        writes = [0]

        def write_loop():
            # Round-robin over the whole component population: chains
            # stay shallow, the update stream stays stationary.
            n = 0
            while not stop.is_set():
                try:
                    with writer.transaction() as txn:
                        txn.update(
                            cluster.comp_ids[n % len(cluster.comp_ids)],
                            {"weight": float(n % 97)}, valid_from=1)
                except Exception:  # noqa: BLE001 - shutdown race
                    if not stop.is_set():
                        raise
                    return
                writes[0] = n = n + 1

        lag_gaps, lag_seconds = [], []

        def lag_loop():
            clients = [DatabaseClient(s.host, s.port)
                       for s in cluster.replicas]
            try:
                while not stop.wait(0.5):
                    for client in clients:
                        rep = client.ping().get("replication") or {}
                        lag_gaps.append(int(rep.get("received_lsn", 0))
                                        - int(rep.get("replayed_lsn", 0)))
                        lag_seconds.append(
                            float(rep.get("lag_seconds", 0.0)))
            finally:
                for client in clients:
                    client.close()

        counts = [0] * READER_THREADS
        errors = [0] * READER_THREADS
        latencies = [[] for _ in range(READER_THREADS)]

        def read_loop(slot):
            while not stop.is_set():
                started = time.perf_counter()
                try:
                    pool.query(read_query)
                except Exception:  # noqa: BLE001 - shed/timeout counts
                    errors[slot] += 1
                    continue
                counts[slot] += 1
                latencies[slot].append(time.perf_counter() - started)

        threads = [threading.Thread(target=write_loop, daemon=True),
                   threading.Thread(target=lag_loop, daemon=True)]
        threads += [threading.Thread(target=read_loop, args=(slot,),
                                     daemon=True)
                    for slot in range(READER_THREADS)]
        begun = time.monotonic()
        for thread in threads:
            thread.start()
        time.sleep(WINDOW_SECONDS)
        stop.set()
        for thread in threads:
            thread.join(10)
        elapsed = time.monotonic() - begun

        # -- fidelity oracle: every replica answers exactly like the
        # primary once caught up (same atoms the writer was updating).
        cluster.wait_caught_up()
        oracle_tt = cluster.watermark()
        answers = {}
        targets = [("primary", cluster.primary)] + [
            (f"replica{index}", server)
            for index, server in enumerate(cluster.replicas)]
        for name, server in targets:
            client = DatabaseClient(server.host, server.port)
            try:
                oracle_query = ORACLE_QUERY.format(
                    tt=oracle_tt if oracle_tt is not None else as_of)
                answers[name] = json.dumps(client.query(oracle_query),
                                           sort_keys=True)
            finally:
                client.close()
        for name, answer in answers.items():
            assert answer == answers["primary"], (
                f"{name} diverged from primary at AS OF {oracle_tt}")

        flat = sorted(value for slot in latencies for value in slot)
        stats_client = DatabaseClient(cluster.primary.host,
                                      cluster.primary.port)
        try:
            snapshot = stats_client.stats().get("metrics", {})
            shed = sum(c["value"] for c in snapshot.get("counters", ())
                       if c["name"] == "server.load_shed")
        finally:
            stats_client.close()
        pool.close()
        writer.close()

        # -- quiesced per-node capacity (the headline measurement).
        per_node = _timesliced_capacity(cluster, read_query)

        lag_sorted = sorted(lag_gaps)
        return {
            "replicas": n_replicas,
            "fleet_capacity_reads_per_second": round(sum(per_node), 1),
            "node_capacity_reads_per_second": per_node,
            "reads_per_second": round(sum(counts) / elapsed, 1),
            "read_errors": sum(errors),
            "writes_per_second": round(writes[0] / elapsed, 1),
            "p50_ms": round(_percentile(flat, 0.50) * 1000, 2),
            "p95_ms": round(_percentile(flat, 0.95) * 1000, 2),
            "primary_load_shed": shed,
            "lag_records_median": _percentile(lag_sorted, 0.5),
            "lag_records_max": lag_sorted[-1] if lag_sorted else 0,
            "lag_seconds_max": round(max(lag_seconds), 3) if lag_seconds
            else 0.0,
            "oracle": "identical",
        }
    finally:
        cluster.stop()


def test_s2_report_header(benchmark, capsys):
    header(capsys, "R-S2",
           "replication: read capacity, routed goodput, steady-state lag")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_s2_read_scaling(tmp_path_factory, capsys):
    tmp_root = tmp_path_factory.mktemp("s2")
    rows = [_run_point(tmp_root, point) for point in REPLICA_POINTS]

    emit(capsys, "",
         "fleet capacity: per-node, others frozen (single-CPU host — "
         "sum estimates one-core-per-node deployment):",
         f"{'replicas':>8} {'fleet r/s':>10}  per-node r/s")
    for row in rows:
        nodes = ", ".join(f"{value:.0f}"
                          for value in row["node_capacity_reads_per_second"])
        emit(capsys, f"{row['replicas']:>8} "
             f"{row['fleet_capacity_reads_per_second']:>10.1f}  [{nodes}]")

    emit(capsys, "",
         "concurrent routed goodput, 12 clients + writer, all processes "
         f"sharing one core ({WINDOW_SECONDS:.0f}s windows):",
         f"{'replicas':>8} {'reads/s':>8} {'errors':>7} {'p50 ms':>7} "
         f"{'p95 ms':>8} {'writes/s':>9} {'lag max':>8}")
    for row in rows:
        emit(capsys,
             f"{row['replicas']:>8} {row['reads_per_second']:>8.1f} "
             f"{row['read_errors']:>7} {row['p50_ms']:>7.2f} "
             f"{row['p95_ms']:>8.2f} {row['writes_per_second']:>9.1f} "
             f"{row['lag_records_max']:>8}")

    def fleet(at):
        return next(r for r in rows if r["replicas"] == at)[
            "fleet_capacity_reads_per_second"]

    capacity_ratio = fleet(2) / (fleet(0) or 1.0)
    base = rows[0]
    two = next(r for r in rows if r["replicas"] == 2)
    concurrent_ratio = two["reads_per_second"] / (
        base["reads_per_second"] or 1.0)
    writer_speedup = two["writes_per_second"] / max(
        base["writes_per_second"], 1.0)
    emit(capsys, "",
         f"2-replica / 0-replica fleet capacity: {capacity_ratio:.2f}x; "
         f"concurrent goodput {concurrent_ratio:.2f}x with writer "
         f"speedup {writer_speedup:.1f}x (reads offloaded from the "
         "primary)")

    path = _record("replication_axis", {
        "points": rows,
        "reader_threads": READER_THREADS,
        "window_seconds": WINDOW_SECONDS,
        "capacity_threads": CAPACITY_THREADS,
        "capacity_seconds": CAPACITY_SECONDS,
        "capacity_ratio_2_replicas": round(capacity_ratio, 2),
        "concurrent_goodput_ratio_2_replicas": round(concurrent_ratio, 2),
        "writer_speedup_2_replicas": round(writer_speedup, 2),
        "host_cpus": os.cpu_count(),
    })
    emit(capsys, f"[recorded -> {path.name}]")
    # Fidelity is the gate (asserted per point); capacity must at least
    # show the added serving nodes.
    assert all(row["oracle"] == "identical" for row in rows)
    assert capacity_ratio >= 1.7

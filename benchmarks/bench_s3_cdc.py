"""R-S3 — change data capture: stream throughput, tail lag, DIFF cost.

Three questions about the CDC subsystem (``SUBSCRIBE`` + ``DIFF``),
answered on one seeded BOM workload:

1. **Sustained event throughput** — a cold subscriber replays the whole
   committed history (``from_lsn=1``): events/second through the wire
   protocol, and the same drain against the in-process
   :class:`ChangeStreamSource` so the decode cost and the wire tax are
   visible separately.
2. **Steady-state tail lag** — a writer commits through the server
   while a caught-up subscriber tails the stream; the server-reported
   per-subscriber lag (``STATS -> server.cdc``, in *records*) is
   sampled throughout and recorded as median/max, alongside the live
   delivery rate.
3. **DIFF cost vs the naive plan** — ``DIFF m BETWEEN t1 AND t2``
   against the obvious alternative a client would otherwise write:
   materialize full molecule slices at both endpoints
   (``molecules_at``) and compare them in Python.  The naive plan also
   cannot attribute changes (no transaction times, no first
   before-image, no netting of vanished-and-reborn atoms), so the cost
   ratio understates the gap.

The **differential oracle runs inside the bench** (question 3's
database): folding the drained stream over ``(t1, t2]`` must equal the
DIFF result byte-for-byte per molecule root — throughput numbers from
a stream that disagrees with the query form would be meaningless.

``BENCH_S3.json`` keeps the machine-readable rows.
"""

import json
import pathlib
import random
import statistics
import threading
import time

from benchmarks._util import build_db, emit, header
from repro import FOREVER, ReproError
from repro.cdc import ChangeStreamSource, fold_events
from repro.server import DatabaseClient, DatabaseServer
from repro.workloads import WorkloadSpec

MT = "Part.contains.Component"
NOW = FOREVER - 1
SPEC = WorkloadSpec(parts=24, fanout=5, versions_per_atom=6, seed=7)
CHURN_TXNS = 60
LAG_WINDOW_SECONDS = 4.0
DIFF_REPEATS = 7


def _record(section: str, payload) -> pathlib.Path:
    """Merge one section into ``BENCH_S3.json`` (same idiom as R-S1/S2)."""
    out = pathlib.Path("BENCH_S3.json")
    try:
        existing = json.loads(out.read_text(encoding="utf-8"))
        if not isinstance(existing, dict):
            existing = {}
    except (OSError, ValueError):
        existing = {}
    existing[section] = payload
    out.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    return out


def _percentile(sorted_values, fraction):
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                int(len(sorted_values) * fraction))
    return sorted_values[index]


def _build(path):
    """Seed workload plus a churn window whose start time is recorded.

    Returns ``(db, parts, comps, t1, t2)`` — the churn all lands inside
    ``(t1, t2]``, which is the window the DIFF questions use.
    """
    db, ids, groups = build_db(str(path), SPEC)
    parts = sorted(ids[h] for h in groups["Part"])
    comps = sorted(ids[h] for h in groups["Component"])
    t1 = int(db._clock.now()) - 1
    rng = random.Random(13)
    for n in range(CHURN_TXNS):
        try:
            with db.transaction() as txn:
                roll = rng.random()
                if roll < 0.5:
                    txn.update(rng.choice(parts),
                               {"cost": float(rng.randrange(500))},
                               valid_from=1)
                elif roll < 0.8:
                    txn.update(rng.choice(comps),
                               {"weight": float(rng.randrange(90))},
                               valid_from=1)
                elif roll < 0.9:
                    txn.link("contains", rng.choice(parts),
                             rng.choice(comps), valid_from=1)
                else:
                    txn.unlink("contains", rng.choice(parts),
                               rng.choice(comps), valid_from=1)
        except ReproError:
            pass  # double-link, unlink of nothing: fine, move on
    t2 = int(db._clock.now()) - 1
    return db, parts, comps, t1, t2


def _drain_source(db):
    """Replay the whole log through an in-process source."""
    source = ChangeStreamSource(db)
    events, cursor = [], 1
    while True:
        body = source.handle({"subscriber": "s3-inproc",
                              "from_lsn": cursor, "max_records": 1024,
                              "ack_lsn": cursor - 1})
        cursor = body["next_from"]
        events.extend(body["events"])
        if body["caught_up"]:
            break
    source.handle({"subscriber": "s3-inproc", "unsubscribe": True})
    return events


def test_s3_report_header(benchmark, capsys):
    header(capsys, "R-S3",
           "CDC: stream throughput, steady-state tail lag, DIFF cost")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_s3_stream_throughput(tmp_path_factory, capsys):
    db, _parts, _comps, _t1, _t2 = _build(
        tmp_path_factory.mktemp("s3-throughput") / "db")
    try:
        # Decode-only: the in-process source, no wire.
        begun = time.perf_counter()
        inproc_events = _drain_source(db)
        inproc_seconds = time.perf_counter() - begun
        assert inproc_events, "seed workload produced no events"

        # Through the wire: a cold subscriber replays the same history.
        with DatabaseServer(db, max_connections=16) as server:
            with DatabaseClient(server.host, server.port) as client:
                feed = client.subscribe("s3-wire", from_lsn=1,
                                        batch_size=1024)
                wire_events = 0
                begun = time.perf_counter()
                while True:
                    batch = feed.poll(wait_ms=0)
                    wire_events += len(batch)
                    if feed.caught_up and not batch:
                        break
                wire_seconds = time.perf_counter() - begun
                feed.cancel()
        assert wire_events == len(inproc_events), \
            "wire replay lost or invented events"

        row = {
            "events": len(inproc_events),
            "decode_events_per_second": round(
                len(inproc_events) / inproc_seconds, 1),
            "wire_events_per_second": round(
                wire_events / wire_seconds, 1),
            "wire_tax": round(wire_seconds / inproc_seconds, 2),
        }
        emit(capsys, "",
             f"cold replay of {row['events']} events: "
             f"{row['decode_events_per_second']:.0f} ev/s in-process, "
             f"{row['wire_events_per_second']:.0f} ev/s through the "
             f"wire ({row['wire_tax']:.1f}x tax)")
        path = _record("stream_throughput", row)
        emit(capsys, f"[recorded -> {path.name}]")
    finally:
        db.close()


def test_s3_tail_lag(tmp_path_factory, capsys):
    db, parts, _comps, _t1, _t2 = _build(
        tmp_path_factory.mktemp("s3-lag") / "db")
    try:
        with DatabaseServer(db, max_connections=16) as server:
            writer = DatabaseClient(server.host, server.port)
            tailer = DatabaseClient(server.host, server.port)
            sampler = DatabaseClient(server.host, server.port)
            stop = threading.Event()
            writes = [0]
            delivered = [0]
            lags = []

            def write_loop():
                n = 0
                while not stop.is_set():
                    try:
                        with writer.transaction() as txn:
                            txn.update(parts[n % len(parts)],
                                       {"cost": float(n % 97)},
                                       valid_from=1)
                    except Exception:  # noqa: BLE001 - shutdown race
                        if not stop.is_set():
                            raise
                        return
                    writes[0] = n = n + 1

            def tail_loop():
                # No from_lsn: attach at the current head and tail.
                feed = tailer.subscribe("s3-tail", batch_size=256,
                                        poll_ms=100)
                try:
                    while not stop.is_set():
                        delivered[0] += len(feed.poll(wait_ms=100))
                    # Drain what the writer left behind, then measure
                    # nothing further.
                    while True:
                        batch = feed.poll(wait_ms=0)
                        if feed.caught_up and not batch:
                            break
                finally:
                    feed.cancel()

            def lag_loop():
                while not stop.wait(0.2):
                    body = sampler.stats()
                    subs = (body.get("server", {}).get("cdc", {})
                            .get("subscribers", {}))
                    if "s3-tail" in subs:
                        lags.append(int(subs["s3-tail"]["lag"]))

            threads = [threading.Thread(target=write_loop, daemon=True),
                       threading.Thread(target=tail_loop, daemon=True),
                       threading.Thread(target=lag_loop, daemon=True)]
            begun = time.monotonic()
            for thread in threads:
                thread.start()
            time.sleep(LAG_WINDOW_SECONDS)
            stop.set()
            for thread in threads:
                thread.join(15)
            elapsed = time.monotonic() - begun
            writer.close()
            tailer.close()
            sampler.close()

        lag_sorted = sorted(lags)
        row = {
            "window_seconds": LAG_WINDOW_SECONDS,
            "writes_per_second": round(writes[0] / elapsed, 1),
            "delivered_events_per_second": round(delivered[0] / elapsed, 1),
            "lag_samples": len(lags),
            "lag_records_median": _percentile(lag_sorted, 0.5),
            "lag_records_p95": _percentile(lag_sorted, 0.95),
            "lag_records_max": lag_sorted[-1] if lag_sorted else 0,
        }
        emit(capsys, "",
             f"steady-state tail, {LAG_WINDOW_SECONDS:.0f}s window: "
             f"{row['writes_per_second']:.0f} writes/s, "
             f"{row['delivered_events_per_second']:.0f} events/s "
             f"delivered, lag median {row['lag_records_median']} / "
             f"p95 {row['lag_records_p95']} / max "
             f"{row['lag_records_max']} records "
             f"({row['lag_samples']} samples)")
        assert writes[0] > 0 and delivered[0] > 0
        path = _record("tail_lag", row)
        emit(capsys, f"[recorded -> {path.name}]")
    finally:
        db.close()


def _slice_state(molecules):
    """(values per atom, link set) across a list of molecules."""
    atoms, links = {}, set()
    for molecule in molecules:
        for atom in molecule.atoms():
            atoms[atom.atom_id] = (atom.type_name,
                                   dict(atom.version.values))
            for edge, children in atom.children.items():
                for child in children:
                    links.add((str(edge), atom.atom_id, child.atom_id))
    return atoms, links


def _naive_diff(db, roots, t1, t2):
    """The plan DIFF replaces: two full slices, compared in Python.

    Returns ``(changes, states_shipped)`` — the second number is what a
    remote client doing this comparison would have to transfer: every
    atom state of both slices, changed or not.
    """
    before = _slice_state(db.molecules_at(roots, MT, NOW, tt=t1))
    after = _slice_state(db.molecules_at(roots, MT, NOW, tt=t2))
    changes = 0
    for atom_id, state in after[0].items():
        if before[0].get(atom_id) != state:
            changes += 1
    changes += sum(1 for atom_id in before[0] if atom_id not in after[0])
    changes += len(after[1] ^ before[1])
    return changes, len(before[0]) + len(after[0])


def test_s3_diff_vs_slices(tmp_path_factory, capsys):
    db, _parts, _comps, t1, t2 = _build(
        tmp_path_factory.mktemp("s3-diff") / "db")
    try:
        roots = db.atoms_of_type("Part")
        text = f"DIFF {MT} BETWEEN {t1} AND {t2}"

        diff_times, diff_rows = [], 0
        for _ in range(DIFF_REPEATS):
            begun = time.perf_counter()
            result = db.query(text)
            diff_times.append(time.perf_counter() - begun)
            diff_rows = len(result.entries)

        naive_times, naive_changes, naive_shipped = [], 0, 0
        for _ in range(DIFF_REPEATS):
            begun = time.perf_counter()
            naive_changes, naive_shipped = _naive_diff(db, roots, t1, t2)
            naive_times.append(time.perf_counter() - begun)

        assert diff_rows > 0 and naive_changes > 0, \
            "churn window produced no observable changes"

        # -- the differential oracle, inside the bench: fold the
        # subscribed stream over the same window and demand the DIFF
        # result byte-for-byte, per molecule root.
        events = _drain_source(db)
        folded = fold_events(events, t1, t2)
        got = {}
        for entry in db.query(text).entries:
            got.setdefault(entry.root_id, []).append(entry.row)
        expected = {}
        for root in roots:
            scope = set()
            for tt in (t1, t2):
                molecule = db.molecule_at(root, MT, NOW, tt)
                if molecule is not None:
                    scope.update(a.atom_id for a in molecule.atoms())
            rows = [row for row in folded if row["atom_id"] in scope]
            if rows:
                expected[root] = rows
        assert json.dumps(got, sort_keys=True) == \
            json.dumps(expected, sort_keys=True), \
            "DIFF and the folded stream disagree — numbers meaningless"

        diff_ms = statistics.median(diff_times) * 1000
        naive_ms = statistics.median(naive_times) * 1000
        row = {
            "window": [t1, t2],
            "diff_ms": round(diff_ms, 3),
            "diff_rows": diff_rows,
            "naive_two_slice_ms": round(naive_ms, 3),
            "naive_changes": naive_changes,
            "naive_states_shipped": naive_shipped,
            "cost_ratio": round(diff_ms / naive_ms, 2),
            "reduction": round(naive_shipped / max(diff_rows, 1), 1),
            "stream_events": len(events),
            "oracle": "identical",
        }
        emit(capsys, "",
             f"DIFF over ({t1}, {t2}]: {diff_ms:.2f} ms for "
             f"{diff_rows} net rows; naive two-slice compare "
             f"{naive_ms:.2f} ms but ships {naive_shipped} atom states "
             f"({row['reduction']:.0f}x more data) and cannot "
             "attribute tt/vt or net rewrites",
             "oracle: fold(SUBSCRIBE stream) == DIFF, byte-identical")
        assert row["oracle"] == "identical"
        path = _record("diff_vs_slices", row)
        emit(capsys, f"[recorded -> {path.name}]")
    finally:
        db.close()

"""R-T1 — Storage consumption by strategy vs. history length.

For each version-storage strategy and history length (versions per
atom), load the same BOM workload and report the pages and bytes the
database occupies.  The timing series measures bulk-load time; the
deterministic rows give the table the paper-style evaluation reports.

Expected shape: all strategies grow linearly in total version count;
CLUSTERED pays record-rewrite slack, SEPARATED adds version-directory
overhead, CHAINED sits lowest (one compact record per version).
"""

import pytest

from benchmarks._util import ALL_STRATEGIES, build_db, emit, header
from repro.workloads import history_depth_spec

VERSION_SWEEP = [1, 4, 16, 64]


def test_t1_report_header(benchmark, capsys):
    header(capsys, "R-T1",
           "storage consumption per strategy vs. versions/atom "
           "(rows follow as benchmarks run)")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


@pytest.mark.parametrize("strategy", ALL_STRATEGIES,
                         ids=[s.value for s in ALL_STRATEGIES])
@pytest.mark.parametrize("versions", VERSION_SWEEP)
def test_t1_load_and_storage(benchmark, tmp_path, capsys, strategy,
                             versions):
    spec = history_depth_spec(versions=versions)

    counter = iter(range(10**6))

    def load():
        db, _, _ = build_db(str(tmp_path / f"db{next(counter)}"), spec,
                            strategy)
        stats = db.storage_stats()
        db.close()
        return stats

    stats = benchmark.pedantic(load, rounds=1, iterations=1)
    benchmark.extra_info["pages"] = stats.total_pages
    emit(capsys,
         f"R-T1 | strategy={strategy.value:>9} versions={versions:>3} | "
         f"pages={stats.total_pages:>5} bytes={stats.total_bytes:>9} | "
         f"segments={stats.segment_pages} dir={stats.directory_pages}")


"""R-T2 — Current time-slice query cost by strategy.

With a fixed history length, run the canonical molecule query
(``Part.contains.Component`` sliced at the current instant) over every
root and compare strategies.  Deterministic rows report buffer page
touches per query — the hardware-independent cost.

Expected shape: SEPARATED and CHAINED answer current slices from one
record per atom; CLUSTERED drags the whole history through the buffer,
so it touches the most pages (and the gap widens with history length).
"""

import pytest

from benchmarks._util import ALL_STRATEGIES, build_db, emit, header, pins, reset_counters
from repro import MoleculeType
from repro.workloads import history_depth_spec

HISTORY = 32


def test_t2_report_header(benchmark, capsys):
    header(capsys, "R-T2",
           f"current time-slice molecule query, history={HISTORY}")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


@pytest.fixture(scope="module")
def databases(tmp_path_factory):
    built = {}
    for strategy in ALL_STRATEGIES:
        path = tmp_path_factory.mktemp("t2") / strategy.value
        built[strategy] = build_db(str(path), history_depth_spec(HISTORY),
                                   strategy)
    yield built
    for db, _, _ in built.values():
        db.close()


@pytest.mark.parametrize("strategy", ALL_STRATEGIES,
                         ids=[s.value for s in ALL_STRATEGIES])
def test_t2_current_slice(benchmark, capsys, databases, strategy):
    db, ids, groups = databases[strategy]
    mtype = MoleculeType.parse("Part.contains.Component", db.schema)
    parts = [ids[handle] for handle in groups["Part"]]
    at = HISTORY - 1  # inside every atom's current version

    def run():
        return db.builder.build_many(parts, mtype, at)

    molecules = benchmark(run)
    reset_counters(db)
    run()
    emit(capsys,
         f"R-T2 | strategy={strategy.value:>9} | molecules={len(molecules)} "
         f"| page_touches={pins(db):>5} | per_molecule="
         f"{pins(db) / max(1, len(molecules)):.1f}")


"""R-T3 — Update (new version creation) cost by strategy and history.

Measures appending one more version to an atom whose history already
holds *h* versions.  Deterministic rows report disk writes per update.

Expected shape: CHAINED and SEPARATED are O(1) in history length (one
new record plus directory maintenance); CLUSTERED rewrites the whole
temporal-atom record, so its cost grows linearly with *h* — the
fundamental write/read trade the paper's realization weighs.
"""

import itertools

import pytest

from benchmarks._util import ALL_STRATEGIES, build_db, emit, header, reset_counters
from repro.workloads import history_depth_spec

HISTORIES = [1, 16, 64, 192]


def test_t3_report_header(benchmark, capsys):
    header(capsys, "R-T3", "cost of appending one version vs. history "
                           "length")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


@pytest.fixture(scope="module")
def databases(tmp_path_factory):
    built = {}
    for strategy in ALL_STRATEGIES:
        for history in HISTORIES:
            path = (tmp_path_factory.mktemp("t3")
                    / f"{strategy.value}{history}")
            built[(strategy, history)] = build_db(
                str(path), history_depth_spec(history, parts=4), strategy)
    yield built
    for db, _, _ in built.values():
        db.close()


@pytest.mark.parametrize("strategy", ALL_STRATEGIES,
                         ids=[s.value for s in ALL_STRATEGIES])
@pytest.mark.parametrize("history", HISTORIES)
def test_t3_append_version(benchmark, capsys, databases, strategy, history):
    db, ids, groups = databases[(strategy, history)]
    parts = [ids[handle] for handle in groups["Part"]]
    part_cycle = itertools.cycle(parts)
    next_time = itertools.count(history + 10)

    def update_once():
        at = next(next_time)
        # The value must actually change: the engine elides updates that
        # leave the state identical.
        with db.transaction() as txn:
            txn.update(next(part_cycle), {"cost": float(at)},
                       valid_from=at)

    benchmark.pedantic(update_once, rounds=8, iterations=1, warmup_rounds=1)
    # Deterministic write cost: start from an all-clean buffer pool, then
    # count the pages a single update dirties (averaged to smooth record
    # moves and page splits).
    db.buffer.flush_all()
    reset_counters(db)
    samples = 4
    for _ in range(samples):
        update_once()
        db.buffer.flush_all()
    writes = db._disk.stats.writes / samples
    emit(capsys,
         f"R-T3 | strategy={strategy.value:>9} history={history:>3} | "
         f"disk_writes_per_update={writes:>6.1f}")


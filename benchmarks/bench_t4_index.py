"""R-T4 — Attribute index vs. type scan for time-slice root selection.

A selective equality query over many parts, once without and once with
an attribute index.  Deterministic rows report the page touches of each
plan; the planner's choice is printed from the result itself.

Expected shape: the type scan touches every part's record; the index
probe touches a handful of B+-tree pages plus the qualifying atoms —
the classic orders-of-magnitude gap once selectivity is high.
"""

import pytest

from benchmarks._util import build_db, emit, header, pins, reset_counters
from repro import VersionStrategy
from repro.workloads import WorkloadSpec

PARTS = 400
QUERY = ("SELECT Part.cost FROM Part "
         "WHERE Part.name = 'part-123' VALID AT 1")


def test_t4_report_header(benchmark, capsys):
    header(capsys, "R-T4",
           f"index vs. scan root selection over {PARTS} parts")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


@pytest.fixture(scope="module")
def scan_db(tmp_path_factory):
    spec = WorkloadSpec(parts=PARTS, fanout=1, suppliers=4,
                        versions_per_atom=2, seed=7)
    db, ids, groups = build_db(str(tmp_path_factory.mktemp("t4") / "scan"),
                               spec, VersionStrategy.SEPARATED,
                               buffer_pages=2048)
    yield db
    db.close()


@pytest.fixture(scope="module")
def indexed_db(tmp_path_factory):
    spec = WorkloadSpec(parts=PARTS, fanout=1, suppliers=4,
                        versions_per_atom=2, seed=7)
    db, ids, groups = build_db(str(tmp_path_factory.mktemp("t4") / "idx"),
                               spec, VersionStrategy.SEPARATED,
                               buffer_pages=2048)
    db.create_attribute_index("Part", "name")
    yield db
    db.close()


def test_t4_type_scan(benchmark, capsys, scan_db):
    result = benchmark(scan_db.query, QUERY)
    assert len(result) == 1
    reset_counters(scan_db)
    result = scan_db.query(QUERY)
    emit(capsys,
         f"R-T4 | plan={result.plan:<40} | page_touches="
         f"{pins(scan_db):>5} | parts={PARTS}")


def test_t4_index_lookup(benchmark, capsys, indexed_db):
    result = benchmark(indexed_db.query, QUERY)
    assert len(result) == 1
    assert "index(" in result.plan
    reset_counters(indexed_db)
    result = indexed_db.query(QUERY)
    emit(capsys,
         f"R-T4 | plan={result.plan:<40} | page_touches="
         f"{pins(indexed_db):>5} | parts={PARTS}")


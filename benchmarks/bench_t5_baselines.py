"""R-T5 — The temporal engine vs. the classical baselines.

The same 200-update BOM history is loaded into the engine (SEPARATED
strategy), the snapshot-per-change baseline, and the flat 1NF
tuple-timestamping baseline; all three then answer the same time-slice
and history queries.

Expected shape: SNAPSHOT's storage explodes with the number of change
points (database size x change count) while its slice queries are
cheap; 1NF stores compactly but pays join sweeps per molecule; the
integrated engine is compact AND navigates references directly.
"""

import pytest

from benchmarks._util import build_db, emit, header
from repro import MoleculeType, VersionStrategy
from repro.baselines import SnapshotDatabase, TupleTimestampDatabase
from repro.temporal import Interval
from repro.workloads import (
    apply_to_snapshot,
    apply_to_tuple_timestamp,
    cad_schema,
    generate_bom,
    history_depth_spec,
)

SPEC = history_depth_spec(versions=8, parts=12)  # ~200 update operations
MOLECULE = "Part.contains.Component"


def test_t5_report_header(benchmark, capsys):
    header(capsys, "R-T5",
           "temporal engine vs. snapshot-copy and 1NF baselines")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


@pytest.fixture(scope="module")
def systems(tmp_path_factory):
    ops, groups = generate_bom(SPEC)
    db, ids, _ = build_db(str(tmp_path_factory.mktemp("t5") / "engine"),
                          SPEC, VersionStrategy.SEPARATED)
    snap = SnapshotDatabase(cad_schema())
    snap_ids = apply_to_snapshot(snap, ops)
    flat = TupleTimestampDatabase(cad_schema())
    flat_ids = apply_to_tuple_timestamp(flat, ops)
    parts = groups["Part"]
    yield {
        "engine": (db, ids, parts),
        "snapshot": (snap, snap_ids, parts),
        "1nf": (flat, flat_ids, parts),
    }
    db.close()


def _slice_all(system, ids, parts, mtype, at):
    return [system.molecule_at(ids[h], mtype, at) for h in parts]


@pytest.mark.parametrize("name", ["engine", "snapshot", "1nf"])
def test_t5_time_slice(benchmark, capsys, systems, name):
    system, ids, parts = systems[name]
    schema = system.schema
    mtype = MoleculeType.parse(MOLECULE, schema)
    molecules = benchmark(_slice_all, system, ids, parts, mtype, 3)
    assert all(m is not None for m in molecules)
    emit(capsys, f"R-T5 | slice@3    | {name:>8} | "
                 f"molecules={len(molecules)}")


@pytest.mark.parametrize("name", ["engine", "snapshot", "1nf"])
def test_t5_molecule_history(benchmark, capsys, systems, name):
    system, ids, parts = systems[name]
    mtype = MoleculeType.parse(MOLECULE, system.schema)
    window = Interval(0, SPEC.versions_per_atom)
    root = ids[parts[0]]
    states = benchmark(system.molecule_history, root, mtype, window)
    emit(capsys, f"R-T5 | history    | {name:>8} | states={len(states)}")


def test_t5_storage_report(benchmark, capsys, systems, tmp_path):
    """Marginal storage growth per change point, per system.

    Absolute sizes are unit-incomparable (a paged file with fixed
    structure vs. serialized in-memory state), so the honest comparison
    is *growth*: build the workload at two history depths and divide the
    size delta by the change-point delta.  This is where the snapshot
    baseline's (database size x change points) blow-up shows.
    """
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # Sparse churn (5% of atoms per round) is where snapshotting hurts:
    # every round copies the whole database to version a handful of atoms.
    from repro.workloads import WorkloadSpec
    small = WorkloadSpec(parts=12, fanout=3, suppliers=4,
                         versions_per_atom=8, churn_fraction=0.05, seed=5)
    large = WorkloadSpec(parts=12, fanout=3, suppliers=4,
                         versions_per_atom=40, churn_fraction=0.05, seed=5)
    small_ops, _ = generate_bom(small)
    large_ops, _ = generate_bom(large)
    delta_changes = (len(large_ops) - len(small_ops)) or 1

    growth = {}
    db_small, _, _ = build_db(str(tmp_path / "e4"), small,
                              VersionStrategy.SEPARATED)
    db_large, _, _ = build_db(str(tmp_path / "e16"), large,
                              VersionStrategy.SEPARATED)
    growth["engine"] = (db_large.storage_stats().total_bytes
                        - db_small.storage_stats().total_bytes)
    db_small.close()
    db_large.close()

    snap_small = SnapshotDatabase(cad_schema())
    apply_to_snapshot(snap_small, small_ops)
    snap_large = SnapshotDatabase(cad_schema())
    apply_to_snapshot(snap_large, large_ops)
    growth["snapshot"] = (snap_large.storage_bytes()
                          - snap_small.storage_bytes())

    flat_small = TupleTimestampDatabase(cad_schema())
    apply_to_tuple_timestamp(flat_small, small_ops)
    flat_large = TupleTimestampDatabase(cad_schema())
    apply_to_tuple_timestamp(flat_large, large_ops)
    growth["1nf"] = (flat_large.storage_bytes()
                     - flat_small.storage_bytes())

    for name in ("engine", "1nf", "snapshot"):
        emit(capsys,
             f"R-T5 | storage growth | {name:>8} | "
             f"bytes_per_change={growth[name] / delta_changes:>9.1f}")
    emit(capsys,
         f"R-T5 | snapshot grows "
         f"{growth['snapshot'] / max(1, growth['engine']):.1f}x faster "
         f"than the engine per change point (and the gap widens with "
         f"database size)")


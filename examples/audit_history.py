#!/usr/bin/env python3
"""Bitemporal auditing: what did we believe, and when did we believe it?

Valid time records when facts held in the world; transaction time
records when the database learned them.  Because the engine never
destroys superseded versions, every past knowledge state remains
queryable with ``AS OF`` — the property an auditor needs.

The scenario: an insurance policy database where premiums are
retroactively corrected, and an auditor reconstructs what the company
believed at the moment a disputed invoice was issued.

Run with::

    python examples/audit_history.py
"""

import shutil
import tempfile

from repro import (
    AtomType,
    Attribute,
    Cardinality,
    DataType,
    LinkType,
    Schema,
    TemporalDatabase,
)
from repro.core import history as hist


def build_schema() -> Schema:
    schema = Schema("insurance")
    schema.add_atom_type(AtomType("Policy", [
        Attribute("holder", DataType.STRING, required=True),
        Attribute("premium", DataType.FLOAT),
        Attribute("status", DataType.STRING),
    ]))
    schema.add_atom_type(AtomType("Claim", [
        Attribute("description", DataType.STRING),
        Attribute("amount", DataType.FLOAT),
    ]))
    schema.add_link_type(LinkType("filed_under", "Claim", "Policy",
                                  Cardinality.ONE_TO_MANY))
    return schema


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="repro-audit-")
    db = TemporalDatabase.create(f"{workdir}/db", build_schema())

    # Valid time in months since 2020-01.
    with db.transaction() as txn:          # knowledge state tt=0
        policy = txn.insert("Policy", {"holder": "K. Lemke",
                                       "premium": 120.0,
                                       "status": "active"}, valid_from=0)
    with db.transaction() as txn:          # tt=1: premium raise from month 12
        txn.update(policy, {"premium": 135.0}, valid_from=12)

    invoice_belief = db._clock.now() - 1   # the belief when invoicing

    with db.transaction() as txn:          # tt=2: a claim arrives
        claim = txn.insert("Claim", {"description": "hail damage",
                                     "amount": 2300.0}, valid_from=14)
        txn.link("filed_under", claim, policy, valid_from=14)

    with db.transaction() as txn:          # tt=3: retroactive correction!
        # Back office discovers the raise was wrongly computed: it should
        # have been 128.0, and only from month 13 on.
        txn.correct(policy, 12, 13, {"premium": 120.0})
        txn.correct(policy, 13, 2**62, {"premium": 128.0})

    print("== Current belief: premium timeline ==")
    for version in hist.coalesce_timeline(db.history(policy)):
        print(f"  {version.vt}: {version.values['premium']}")

    print("\n== What the invoice (issued at knowledge state "
          f"tt={invoice_belief}) was based on ==")
    for month in (11, 12, 14):
        then = db.version_at(policy, month, tt=invoice_belief)
        now = db.version_at(policy, month)
        print(f"  month {month}: believed-then={then.values['premium']:6.1f}"
              f"  believed-now={now.values['premium']:6.1f}")

    print("\n== Audit verdict ==")
    month = 12
    then = db.version_at(policy, month, tt=invoice_belief)
    now = db.version_at(policy, month)
    delta = then.values["premium"] - now.values["premium"]
    print(f"  the month-{month} invoice overcharged by {delta:.2f}")

    print("\n== Full bitemporal record of the policy atom ==")
    for version in db.history(policy):
        marker = "live" if version.live else "superseded"
        print(f"  vt={str(version.vt):18} tt={str(version.tt):18} "
              f"premium={version.values['premium']:6.1f} [{marker}]")

    print("\n== Claims under the policy (MQL) ==")
    result = db.query(
        "SELECT Claim.description, Claim.amount "
        "FROM Claim.filed_under.Policy "
        "WHERE Claim.amount > 1000 VALID AT 15")
    for row in result.rows():
        print(f"  {row['Claim.description']}: {row['Claim.amount']}")

    db.close()
    shutil.rmtree(workdir)
    print("\naudit_history complete.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""CAD assembly management: BOM evolution across design releases.

The MAD model's home turf: an assembly is a *molecule* derived from
part/component atoms connected by ``contains`` links.  This example
builds a bicycle assembly, evolves it through three design releases,
and then answers the engineering questions a design database exists
for:

* What did release N look like?  (time-slice molecule)
* What changed between two releases?  (molecule diff)
* When was a component part of the assembly?  (lifespan of membership)
* Which parts does a component appear in?  (reverse traversal)

Run with::

    python examples/cad_assembly.py
"""

import shutil
import tempfile

from repro import Interval, TemporalDatabase
from repro.workloads import cad_schema

#: Design releases are points on the valid-time axis.
RELEASE_1, RELEASE_2, RELEASE_3 = 100, 200, 300


def component_names(molecule):
    return sorted(atom.version.values["cname"] for atom in molecule.atoms()
                  if atom.type_name == "Component")


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="repro-cad-")
    db = TemporalDatabase.create(f"{workdir}/db", cad_schema())

    # --- release 1: the original design ----------------------------------
    with db.transaction() as txn:
        bike = txn.insert("Part", {"name": "bicycle", "cost": 400.0,
                                   "released": True},
                          valid_from=RELEASE_1)
        frame = txn.insert("Component",
                           {"cname": "steel-frame", "weight": 3.2,
                            "material": "steel"}, valid_from=RELEASE_1)
        fork = txn.insert("Component",
                          {"cname": "fork", "weight": 0.9,
                           "material": "steel"}, valid_from=RELEASE_1)
        saddle = txn.insert("Component",
                            {"cname": "saddle", "weight": 0.4,
                             "material": "polymer"}, valid_from=RELEASE_1)
        for component in (frame, fork, saddle):
            txn.link("contains", bike, component, valid_from=RELEASE_1)
        steelworks = txn.insert("Supplier", {"sname": "steelworks",
                                             "rating": 4},
                                valid_from=RELEASE_1)
        txn.link("supplied_by", frame, steelworks, valid_from=RELEASE_1)
        txn.link("supplied_by", fork, steelworks, valid_from=RELEASE_1)

    # --- release 2: the frame goes aluminium ---------------------------------
    with db.transaction() as txn:
        alu_frame = txn.insert("Component",
                               {"cname": "alu-frame", "weight": 1.9,
                                "material": "aluminium"},
                               valid_from=RELEASE_2)
        txn.unlink("contains", bike, frame, valid_from=RELEASE_2)
        txn.link("contains", bike, alu_frame, valid_from=RELEASE_2)
        txn.update(bike, {"cost": 520.0}, valid_from=RELEASE_2)

    # --- release 3: carbon fork, lighter saddle --------------------------------
    with db.transaction() as txn:
        txn.update(fork, {"material": "carbon", "weight": 0.5},
                   valid_from=RELEASE_3)
        txn.update(saddle, {"weight": 0.3}, valid_from=RELEASE_3)
        txn.update(bike, {"cost": 610.0}, valid_from=RELEASE_3)

    assembly = "Part.contains.Component"

    # --- what does each release look like? -----------------------------------
    print("== Assembly per release ==")
    for label, release in (("R1", RELEASE_1), ("R2", RELEASE_2),
                           ("R3", RELEASE_3)):
        molecule = db.molecule_at(bike, assembly, release)
        weight = sum(atom.version.values["weight"]
                     for atom in molecule.atoms()
                     if atom.type_name == "Component")
        print(f"  {label}: cost={molecule.root.version.values['cost']:7.2f} "
              f"weight={weight:4.2f}kg {component_names(molecule)}")

    # --- diff two releases ------------------------------------------------------
    print("\n== Diff R1 -> R2 ==")
    before = set(component_names(db.molecule_at(bike, assembly, RELEASE_1)))
    after = set(component_names(db.molecule_at(bike, assembly, RELEASE_2)))
    for removed in sorted(before - after):
        print(f"  - {removed}")
    for added in sorted(after - before):
        print(f"  + {added}")

    # --- membership lifespan ------------------------------------------------------
    print("\n== When was the steel frame part of the bicycle? ==")
    spans = [span for span, molecule in db.molecule_history(
        bike, assembly, Interval(RELEASE_1, RELEASE_3 + 100))
        if "steel-frame" in component_names(molecule)]
    for span in spans:
        print(f"  {span}")

    # --- reverse traversal: where is the fork used? --------------------------------
    print("\n== Parts using the fork at R3 (reverse molecule) ==")
    result = db.query(
        "SELECT Part.name FROM Component.contains.Part "
        f"WHERE Component.cname = 'fork' VALID AT {RELEASE_3}")
    for row in result.rows():
        print(f"  used in: {row['Part.name']}")

    # --- MQL over the full structure --------------------------------------------------
    print("\n== Suppliers of heavy steel components at R1 ==")
    result = db.query(
        "SELECT Component.cname, Supplier.sname "
        "FROM Component.supplied_by.Supplier "
        "WHERE Component.material = 'steel' AND Component.weight > 1 "
        f"VALID AT {RELEASE_1}")
    for entry in result:
        print(f"  {entry.row['Component.cname']} <- "
              f"{entry.row['Supplier.sname']}")

    db.close()
    shutil.rmtree(workdir)
    print("\ncad_assembly complete.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The operations toolkit: verify, statistics, vacuum, dump, migrate.

A database that never forgets needs janitors.  This example builds a
database with a busy correction history, then walks through the
operational life cycle:

1. `verify`  — prove the bitemporal invariant and reference symmetry hold;
2. `stats`   — see where the versions pile up;
3. `dump`    — take a logical backup (pure JSON, layout-independent);
4. `load`    — restore the backup under a *different* storage strategy
               (the migration path between physical layouts);
5. `vacuum`  — trade superseded knowledge for space, and show exactly
               which `AS OF` queries that sacrifices.

Run with::

    python examples/operations_toolkit.py
"""

import shutil
import tempfile

from repro import DatabaseConfig, TemporalDatabase, VersionStrategy
from repro.tools import (
    database_statistics,
    dump_database,
    load_database,
    vacuum_superseded,
    verify_database,
)
from repro.workloads import apply_to_database, cad_schema, generate_bom, small_spec


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="repro-ops-")
    db = TemporalDatabase.create(
        f"{workdir}/source", cad_schema(),
        DatabaseConfig(strategy=VersionStrategy.CHAINED))
    ops, groups = generate_bom(small_spec())
    ids = apply_to_database(db, ops)
    part = ids[groups["Part"][0]]
    # A few retroactive corrections to make history interesting.
    for window in ((0, 1), (1, 2)):
        with db.transaction() as txn:
            txn.correct(part, window[0], window[1], {"cost": 42.0})

    print("== 1. verify ==")
    report = verify_database(db)
    print(f"  {report.summary()}")

    print("\n== 2. statistics ==")
    print("  " + database_statistics(db).summary().replace("\n", "\n  "))

    print("\n== 3. dump (logical backup) ==")
    document = dump_database(db)
    versions = sum(len(atom["versions"]) for atom in document["atoms"])
    print(f"  {len(document['atoms'])} atoms, {versions} version records, "
          f"format {document['format']}")

    print("\n== 4. load under a different strategy (migration) ==")
    clone = load_database(f"{workdir}/clone", document,
                          DatabaseConfig(strategy=VersionStrategy.SEPARATED))
    same = all(db.history(atom_id) == clone.history(atom_id)
               for atom_id in ids.values())
    print(f"  source strategy : {db.config.strategy.value}")
    print(f"  clone strategy  : {clone.config.strategy.value}")
    print(f"  bitemporal record identical: {same}")
    print(f"  clone verifies: {verify_database(clone).ok}")

    print("\n== 5. vacuum the clone ==")
    belief_to_lose = 2  # a knowledge state the vacuum will discard
    before = clone.version_at(part, 0, tt=belief_to_lose)
    cutoff = clone._clock.now()
    result = vacuum_superseded(clone, cutoff)
    print(f"  {result.summary()}")
    after = clone.version_at(part, 0, tt=belief_to_lose)
    print(f"  AS OF {belief_to_lose} before vacuum: "
          f"cost={before.values['cost'] if before else None}")
    print(f"  AS OF {belief_to_lose} after vacuum : "
          f"{'gone (knowledge older than cutoff)' if after is None else after.values['cost']}")
    current = clone.version_at(part, 0)
    print(f"  current belief unaffected: cost={current.values['cost']}")

    db.close()
    clone.close()
    shutil.rmtree(workdir)
    print("\noperations_toolkit complete.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Project planning: staffing complex objects that evolve week by week.

A project is a molecule: the project atom, its task atoms, and the
engineers assigned to each task.  Assignments come and go, tasks change
status — interval queries (``VALID DURING``) reconstruct who worked on
what, when, and reveal staffing gaps.

Run with::

    python examples/project_planning.py
"""

import shutil
import tempfile

from repro import (
    AtomType,
    Attribute,
    Cardinality,
    DataType,
    Interval,
    LinkType,
    Schema,
    TemporalDatabase,
)


def build_schema() -> Schema:
    schema = Schema("planning")
    schema.add_atom_type(AtomType("Project", [
        Attribute("title", DataType.STRING, required=True),
        Attribute("phase", DataType.STRING),
    ]))
    schema.add_atom_type(AtomType("Task", [
        Attribute("summary", DataType.STRING, required=True),
        Attribute("status", DataType.STRING),
        Attribute("estimate_days", DataType.INT),
    ]))
    schema.add_atom_type(AtomType("Engineer", [
        Attribute("handle", DataType.STRING, required=True),
        Attribute("level", DataType.INT),
    ]))
    schema.add_link_type(LinkType("has_task", "Project", "Task",
                                  Cardinality.ONE_TO_MANY))
    schema.add_link_type(LinkType("assigned", "Task", "Engineer",
                                  Cardinality.MANY_TO_MANY))
    return schema


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="repro-plan-")
    db = TemporalDatabase.create(f"{workdir}/db", build_schema())

    # Valid time in project weeks.
    with db.transaction() as txn:
        project = txn.insert("Project", {"title": "temporal-engine",
                                         "phase": "design"}, valid_from=0)
        storage = txn.insert("Task", {"summary": "storage kernel",
                                      "status": "open",
                                      "estimate_days": 15}, valid_from=0)
        query = txn.insert("Task", {"summary": "query processor",
                                    "status": "open",
                                    "estimate_days": 20}, valid_from=0)
        ada = txn.insert("Engineer", {"handle": "ada", "level": 3},
                         valid_from=0)
        lin = txn.insert("Engineer", {"handle": "lin", "level": 2},
                         valid_from=0)
        txn.link("has_task", project, storage, valid_from=0)
        txn.link("has_task", project, query, valid_from=0)
        txn.link("assigned", storage, ada, valid_from=0)

    # Week 4: storage in progress, lin joins the query task.
    with db.transaction() as txn:
        txn.update(storage, {"status": "in_progress"}, valid_from=4)
        txn.link("assigned", query, lin, valid_from=4)

    # Week 8: ada moves from storage to the query task; storage done.
    with db.transaction() as txn:
        txn.update(storage, {"status": "done"}, valid_from=8)
        txn.unlink("assigned", storage, ada, valid_from=8)
        txn.link("assigned", query, ada, valid_from=8)
        txn.update(project, {"phase": "implementation"}, valid_from=8)

    # Week 12: the project ships; the query task closes.
    with db.transaction() as txn:
        txn.update(query, {"status": "done"}, valid_from=12)
        txn.update(project, {"phase": "shipped"}, valid_from=12)

    # --- who worked on what, when? ---------------------------------------
    print("== Staffing timeline of each task ==")
    for task in (storage, query):
        summary = db.version_at(task, 0).values["summary"]
        print(f"  {summary}:")
        for span, molecule in db.molecule_history(
                task, "Task.assigned.Engineer", Interval(0, 14)):
            crew = sorted(a.version.values["handle"]
                          for a in molecule.atoms()
                          if a.type_name == "Engineer")
            status = molecule.root.version.values["status"]
            print(f"    {span}: {crew or '(nobody)'} [{status}]")

    # --- staffing gaps ------------------------------------------------------
    print("\n== Weeks where an open/in-progress task had nobody assigned ==")
    for task in (storage, query):
        for span, molecule in db.molecule_history(
                task, "Task.assigned.Engineer", Interval(0, 14)):
            staffed = any(a.type_name == "Engineer"
                          for a in molecule.atoms())
            status = molecule.root.version.values["status"]
            if not staffed and status != "done":
                summary = molecule.root.version.values["summary"]
                print(f"  {summary}: unstaffed during {span}")

    # --- MQL across the whole project ------------------------------------------
    print("\n== Project states over the quarter (MQL DURING) ==")
    result = db.query(
        "SELECT Project.phase, Task.status "
        "FROM Project.has_task.Task "
        "VALID DURING [0, 14)")
    for entry in result:
        statuses = sorted(entry.row["Task.status"])
        print(f"  {entry.valid}: phase={entry.row['Project.phase']}, "
              f"tasks={statuses}")

    print("\n== Done tasks with at least one senior engineer (week 13) ==")
    # Note the existential semantics: the WHERE clause selects tasks that
    # HAVE a level>=3 engineer; the projection lists the whole crew.
    result = db.query(
        "SELECT Task.summary, Engineer.handle "
        "FROM Task.assigned.Engineer "
        "WHERE Task.status = 'done' AND Engineer.level >= 3 VALID AT 13")
    for row in result.rows():
        print(f"  {row['Task.summary']}: crew={sorted(row['Engineer.handle'])}")

    db.close()
    shutil.rmtree(workdir)
    print("\nproject_planning complete.")


if __name__ == "__main__":
    main()

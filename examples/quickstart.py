#!/usr/bin/env python3
"""Quickstart: a five-minute tour of the temporal complex-object engine.

Creates a small engineering database, evolves it over time, and shows
the three query styles: time slices, interval histories, and
transaction-time rollback (``AS OF``).

Run with::

    python examples/quickstart.py
"""

import shutil
import tempfile

from repro import (
    AtomType,
    Attribute,
    Cardinality,
    DataType,
    DatabaseConfig,
    Interval,
    LinkType,
    Schema,
    TemporalDatabase,
    VersionStrategy,
)


def build_schema() -> Schema:
    """Parts contain components; components come from suppliers."""
    schema = Schema("quickstart")
    schema.add_atom_type(AtomType("Part", [
        Attribute("name", DataType.STRING, required=True),
        Attribute("cost", DataType.FLOAT),
    ]))
    schema.add_atom_type(AtomType("Component", [
        Attribute("cname", DataType.STRING, required=True),
        Attribute("weight", DataType.FLOAT),
    ]))
    schema.add_atom_type(AtomType("Supplier", [
        Attribute("sname", DataType.STRING, required=True),
    ]))
    schema.add_link_type(LinkType("contains", "Part", "Component",
                                  Cardinality.MANY_TO_MANY))
    schema.add_link_type(LinkType("supplied_by", "Component", "Supplier",
                                  Cardinality.MANY_TO_MANY))
    return schema


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="repro-quickstart-")
    db = TemporalDatabase.create(
        f"{workdir}/db", build_schema(),
        DatabaseConfig(strategy=VersionStrategy.SEPARATED))

    # --- build a little world, with valid time in days ------------------
    with db.transaction() as txn:
        wheel = txn.insert("Part", {"name": "wheel", "cost": 80.0},
                           valid_from=0)
        hub = txn.insert("Component", {"cname": "hub", "weight": 0.4},
                         valid_from=0)
        rim = txn.insert("Component", {"cname": "rim", "weight": 0.9},
                         valid_from=0)
        acme = txn.insert("Supplier", {"sname": "acme"}, valid_from=0)
        txn.link("contains", wheel, hub, valid_from=0)
        txn.link("contains", wheel, rim, valid_from=0)
        txn.link("supplied_by", hub, acme, valid_from=0)

    # Day 30: the rim is redesigned and the part gets more expensive.
    with db.transaction() as txn:
        txn.update(rim, {"weight": 0.7}, valid_from=30)
        txn.update(wheel, {"cost": 95.0}, valid_from=30)

    # Day 60: a tube is added to the wheel.
    with db.transaction() as txn:
        tube = txn.insert("Component", {"cname": "tube", "weight": 0.2},
                          valid_from=60)
        txn.link("contains", wheel, tube, valid_from=60)

    # --- time-slice queries ---------------------------------------------
    print("== The wheel on day 10 vs day 70 ==")
    for day in (10, 70):
        result = db.query(
            "SELECT Part.cost, Component.cname "
            "FROM Part.contains.Component "
            f"WHERE Part.name = 'wheel' VALID AT {day}")
        (row,) = result.rows()
        print(f"  day {day}: cost={row['Part.cost']}, "
              f"components={sorted(row['Component.cname'])}")

    # --- interval queries --------------------------------------------------
    print("\n== Cost history of the wheel over days [0, 90) ==")
    result = db.query("SELECT Part.cost FROM Part "
                      "WHERE Part.name = 'wheel' VALID DURING [0, 90)")
    for entry in result:
        print(f"  {entry.valid}: cost={entry.row['Part.cost']}")

    # --- molecule API directly ---------------------------------------------
    print("\n== Molecule states (composition changes) ==")
    for span, molecule in db.molecule_history(
            wheel, "Part.contains.Component", Interval(0, 90)):
        names = sorted(a.version.values["cname"] for a in molecule.atoms()
                       if a.type_name == "Component")
        print(f"  {span}: {names}")

    # --- bitemporal correction and AS OF --------------------------------------
    print("\n== Retroactive correction with AS OF ==")
    belief_before = db._clock.now() - 1
    with db.transaction() as txn:
        # We learn the wheel's cost was actually 85 from day 0 to 30.
        txn.correct(wheel, 0, 30, {"cost": 85.0})
    now = db.query("SELECT Part.cost FROM Part "
                   "WHERE Part.name = 'wheel' VALID AT 10")
    then = db.query("SELECT Part.cost FROM Part "
                    f"WHERE Part.name = 'wheel' VALID AT 10 "
                    f"AS OF {belief_before}")
    print(f"  current belief about day 10: {now.rows()[0]['Part.cost']}")
    print(f"  what we believed before:     {then.rows()[0]['Part.cost']}")

    db.close()
    shutil.rmtree(workdir)
    print("\nquickstart complete.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The paper's core question, live: how should histories be stored?

Builds the same BOM workload under all three version-storage strategies
and prints the cost signature of each — storage pages, update cost, and
buffer traffic for current vs. past time slices.  This is a miniature,
human-readable version of what the benchmark suite measures rigorously.

Run with::

    python examples/storage_strategies.py
"""

import shutil
import tempfile

from repro import DatabaseConfig, TemporalDatabase, VersionStrategy
from repro.workloads import (
    apply_to_database,
    cad_schema,
    generate_bom,
    history_depth_spec,
)

VERSIONS = 24


def pins(db):
    return db.buffer.stats.hits + db.buffer.stats.misses


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="repro-strategies-")
    ops, groups = generate_bom(history_depth_spec(versions=VERSIONS))

    print(f"{'strategy':>10} | {'pages':>6} | {'slice now':>9} | "
          f"{'slice old':>9} | {'history':>8}")
    print("-" * 56)
    for strategy in VersionStrategy:
        db = TemporalDatabase.create(
            f"{workdir}/{strategy.value}", cad_schema(),
            DatabaseConfig(strategy=strategy, buffer_pages=512))
        ids = apply_to_database(db, ops)
        part = ids[groups["Part"][0]]

        pages = db.storage_stats().total_pages

        db.buffer.stats.reset()
        db.molecule_at(part, "Part.contains.Component", VERSIONS - 1)
        slice_now = pins(db)

        db.buffer.stats.reset()
        db.molecule_at(part, "Part.contains.Component", 0)
        slice_old = pins(db)

        db.buffer.stats.reset()
        db.history(part)
        history_cost = pins(db)

        print(f"{strategy.value:>10} | {pages:>6} | {slice_now:>9} | "
              f"{slice_old:>9} | {history_cost:>8}")
        db.close()

    print("""
Reading the table (buffer pins = page touches):
  * CLUSTERED reads a whole history per touch: slices anywhere are
    equally cheap, history reads are cheapest - but every update
    rewrites the grown record.
  * CHAINED pays per pointer hop: the old slice walks the chain, so its
    cost grows with temporal distance.
  * SEPARATED answers 'now' from its dense current segment and 'old'
    through the version directory - flat in temporal distance.
""")
    shutil.rmtree(workdir)


if __name__ == "__main__":
    main()

"""Setuptools entry point.

The pyproject.toml intentionally omits a ``[build-system]`` table: this
environment has no network access and no ``wheel`` package, so pip must
take the legacy ``setup.py develop`` path for ``pip install -e .``.
"""

from setuptools import setup

setup()

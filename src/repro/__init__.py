"""repro — a temporal complex-object database engine.

A from-scratch Python realization of the temporal MAD (Molecule-Atom
Data) model in the spirit of Käfer & Schöning, *Realizing a Temporal
Complex-Object Data Model*, SIGMOD 1992: bitemporal atom version
histories, dynamically derived molecules, a temporal molecule query
language, and — the paper's core question — selectable physical
version-storage strategies over a page-based storage kernel.

Quick start::

    from repro import (AtomType, Attribute, Cardinality, DataType,
                       DatabaseConfig, LinkType, Schema, TemporalDatabase)

    schema = Schema("cad")
    schema.add_atom_type(AtomType("Part", [
        Attribute("name", DataType.STRING, required=True),
        Attribute("cost", DataType.FLOAT)]))
    schema.add_atom_type(AtomType("Component", [
        Attribute("weight", DataType.FLOAT)]))
    schema.add_link_type(LinkType("contains", "Part", "Component"))

    db = TemporalDatabase.create("/tmp/cad_db", schema)
    with db.transaction() as txn:
        part = txn.insert("Part", {"name": "wheel", "cost": 10.0},
                          valid_from=0)
        hub = txn.insert("Component", {"weight": 2.5}, valid_from=0)
        txn.link("contains", part, hub, valid_from=0)
        txn.update(part, {"cost": 12.5}, valid_from=10)

    result = db.query(
        "SELECT Part.name, Part.cost FROM Part.contains.Component "
        "VALID AT 5")
    db.close()
"""

from repro.core.database import DatabaseConfig, TemporalDatabase
from repro.core.datatypes import DataType
from repro.core.diff import MoleculeDiff, diff_molecules
from repro.core.molecule import Molecule, MoleculeEdge, MoleculeType
from repro.core.schema import AtomType, Attribute, Cardinality, LinkType, Schema
from repro.core.version import Version
from repro.errors import ReproError
from repro.storage.buffer import ReplacementPolicy
from repro.storage.strategies import VersionStrategy
from repro.temporal import FOREVER, TMIN, Interval, TemporalElement

__version__ = "1.0.0"

__all__ = [
    "DatabaseConfig",
    "TemporalDatabase",
    "DataType",
    "MoleculeDiff",
    "diff_molecules",
    "Molecule",
    "MoleculeEdge",
    "MoleculeType",
    "AtomType",
    "Attribute",
    "Cardinality",
    "LinkType",
    "Schema",
    "Version",
    "ReproError",
    "ReplacementPolicy",
    "VersionStrategy",
    "FOREVER",
    "TMIN",
    "Interval",
    "TemporalElement",
    "__version__",
]

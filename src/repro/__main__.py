"""Command-line front end: ``python -m repro <command> <dbdir> ...``.

Commands:

* ``info DB``                — schema, storage strategy, space, indexes
* ``query DB "MQL"``         — run a temporal MQL query and print it
* ``profile DB "MQL"``       — run under EXPLAIN ANALYZE and print the
  per-operator profile (``--json`` for machine-readable output)
* ``history DB ATOM_ID``     — print an atom's bitemporal record
* ``timeline DB ATOM_ID``    — print the coalesced current-belief timeline
* ``verify DB``              — run the integrity verifier
* ``vacuum DB --before-tt T``— remove versions superseded before T
* ``serve --path DB --port N`` — serve the database over TCP
  (``--metrics-port`` adds the HTTP /metrics+/health sidecar,
  ``--event-log FILE`` tees structured events to a JSON-lines file,
  ``--replica-of HOST:PORT`` runs as a read-only replica that ships
  and replays the primary's WAL)
* ``shell --connect HOST:PORT`` — interactive MQL shell over the wire
  (``\\tail [TYPE]`` follows the server's change stream)
* ``monitor --connect HOST:PORT`` — top-like live view of a running
  server: throughput, latency percentiles, shed rate, buffer hits,
  replication and change-stream subscriber lag
* ``tail --connect HOST:PORT`` — follow the change-data-capture
  stream: committed changes as typed events, with server-side
  filters and a named resumable cursor (see ``docs/cdc.md``)

All commands open the database read-mostly and close it cleanly.
"""

from __future__ import annotations

import argparse
import sys

from repro import DatabaseConfig, TemporalDatabase, VersionStrategy
from repro.core import history as hist
from repro.errors import ReproError
from repro.tools import (
    database_statistics,
    dump_json,
    load_database,
    vacuum_superseded,
    verify_database,
)


def _open(path: str) -> TemporalDatabase:
    return TemporalDatabase.open(path)


def cmd_info(args: argparse.Namespace) -> int:
    with _open(args.db) as db:
        stats = db.storage_stats()
        print(f"database    : {args.db}")
        print(f"schema      : {db.schema.name}")
        print(f"strategy    : {stats.strategy}")
        print(f"page size   : {stats.page_size}")
        print(f"pages       : {stats.total_pages} "
              f"({stats.total_bytes} bytes)")
        print(f"segments    : {stats.segment_pages}")
        print("atom types  :")
        for atom_type in db.schema.atom_types:
            count = len(db.atoms_of_type(atom_type.name))
            attrs = ", ".join(f"{a.name}:{a.data_type.value}"
                              for a in atom_type.attributes)
            print(f"  {atom_type.name} ({count} atoms): {attrs}")
        print("link types  :")
        for link in db.schema.link_types:
            print(f"  {link.name}: {link.source} -> {link.target} "
                  f"[{link.cardinality.value}]")
        print(f"indexes     : {', '.join(db.indexes.index_names())}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    with _open(args.db) as db:
        print(database_statistics(db).summary())
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    with _open(args.db) as db:
        result = db.query(args.mql)
        print(f"-- plan: {result.plan}")
        print(result.to_table())
        print(f"-- {len(result)} entr{'y' if len(result) == 1 else 'ies'}")
        if result.profile is not None:  # query had an EXPLAIN ANALYZE prefix
            print()
            print(result.profile.render())
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    import json

    with _open(args.db) as db:
        result = db.explain(args.mql)
        profile = result.profile
        if args.json:
            print(json.dumps({
                "plan": result.plan,
                "entries": len(result),
                "profile": profile.to_dict() if profile else None,
                "metrics": db.metrics_snapshot(),
            }, indent=2, sort_keys=True))
        else:
            if profile is not None:
                print(profile.render())
            print(f"-- {len(result)} entr{'y' if len(result) == 1 else 'ies'}")
    return 0


def cmd_history(args: argparse.Namespace) -> int:
    with _open(args.db) as db:
        versions = db.history(args.atom_id)
        type_name = db.engine.atom_type_name(args.atom_id)
        print(f"atom {args.atom_id} ({type_name}): "
              f"{len(versions)} version records")
        for seq, version in enumerate(versions):
            marker = "live" if version.live else "superseded"
            print(f"  [{seq:>3}] vt={str(version.vt):>20} "
                  f"tt={str(version.tt):>20} [{marker}]")
            for key, value in sorted(version.values.items()):
                print(f"        {key} = {value!r}")
            for key, partners in sorted(version.refs.items()):
                print(f"        {key} -> {sorted(partners)}")
    return 0


def cmd_timeline(args: argparse.Namespace) -> int:
    with _open(args.db) as db:
        versions = db.history(args.atom_id)
        print(f"atom {args.atom_id}: current-belief timeline")
        for version in hist.coalesce_timeline(versions):
            values = ", ".join(f"{k}={v!r}"
                               for k, v in sorted(version.values.items()))
            print(f"  {version.vt}: {values}")
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    with _open(args.db) as db:
        report = verify_database(db)
        print(report.summary())
        for problem in report.problems:
            print(f"  ! {problem}")
        return 0 if report.ok else 1


def cmd_vacuum(args: argparse.Namespace) -> int:
    with _open(args.db) as db:
        report = vacuum_superseded(db, args.before_tt)
        print(report.summary())
    return 0


def cmd_dump(args: argparse.Namespace) -> int:
    with _open(args.db) as db:
        text = dump_json(db)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"dumped to {args.output}")
    else:
        print(text)
    return 0


def cmd_load(args: argparse.Namespace) -> int:
    import json

    with open(args.dump_file, encoding="utf-8") as handle:
        document = json.load(handle)
    config = None
    if args.strategy:
        config = DatabaseConfig(strategy=VersionStrategy(args.strategy))
    db = load_database(args.db, document, config)
    print(f"loaded {len(document['atoms'])} atoms into {args.db} "
          f"({db.config.strategy.value})")
    db.close()
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.obs import EventLog
    from repro.server import AdmissionController, DatabaseServer

    replica_of = getattr(args, "replica_of", None)
    primary_host = primary_port = None
    if replica_of:
        primary_host, _, port_text = replica_of.rpartition(":")
        if not primary_host or not port_text.isdigit():
            print(f"error: --replica-of needs HOST:PORT, got {replica_of!r}",
                  file=sys.stderr)
            return 2
        primary_port = int(port_text)

    db = _open(args.path)
    applier = None
    if replica_of:
        from repro.replication import ReplicaApplier
        applier = ReplicaApplier(
            db, primary_host, primary_port,
            replica_id=args.replica_id,
            checkpoint_interval=args.replica_checkpoint_interval)
    event_sink = None
    if args.event_log:
        event_sink = open(args.event_log, "a", encoding="utf-8")
    admission = AdmissionController(
        max_inflight=args.max_inflight,
        max_queued=args.max_queued,
        request_timeout=args.request_timeout,
        slow_query_ms=args.slow_query_ms,
        metrics=db.metrics,
        events=EventLog(sink=event_sink, metrics=db.metrics))
    server = DatabaseServer(
        db, host=args.host, port=args.port,
        max_connections=args.max_connections,
        idle_timeout=args.idle_timeout,
        admission=admission,
        metrics_port=args.metrics_port,
        metrics_host=args.host,
        worker_threads=args.worker_threads,
        replication=applier)
    stop = threading.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda *_: stop.set())
    server.start()
    if applier is not None:
        applier.start()
        print(f"read-only replica of {replica_of} "
              f"(replica id {applier.replica_id})", flush=True)
    print(f"serving {args.path} on {server.host}:{server.port} "
          f"(max {args.max_connections} connections, "
          f"{args.max_inflight} in flight)", flush=True)
    if server.sidecar is not None:
        print(f"telemetry on http://{server.sidecar.host}:"
              f"{server.sidecar.port} (/metrics /health /stats)",
              flush=True)
    try:
        stop.wait()
    finally:
        print("shutting down: draining requests, checkpointing...",
              flush=True)
        if applier is not None:
            applier.stop()
        server.shutdown()
        db.close()
        if event_sink is not None:
            event_sink.close()
        print("closed cleanly", flush=True)
    return 0


def _counter_total(snapshot, name: str) -> int:
    return sum(c["value"] for c in snapshot.get("counters", ())
               if c["name"] == name)


def _histogram_entry(snapshot, name: str):
    for histogram in snapshot.get("histograms", ()):
        if histogram["name"] == name:
            return histogram
    return None


def _render_monitor(body, prev, elapsed: float):
    """``(frame text, counter totals)`` from one STATS response.

    *prev* is the previous poll's ``(requests, shed)`` counter totals
    (or None on the first frame) — rates are deltas over *elapsed*.
    """
    server = body["server"]
    metrics = body["metrics"]
    admission = server["admission"]
    requests = _counter_total(metrics, "server.requests")
    shed = _counter_total(metrics, "server.load_shed")
    hits = _counter_total(metrics, "buffer.hits")
    misses = _counter_total(metrics, "buffer.misses")
    pins = hits + misses
    lines = [
        f"repro server {server['host']}:{server['port']}"
        f"  up {server['uptime_seconds']:.0f}s"
        + ("  [DRAINING]" if server.get("draining") else ""),
        f"sessions {server['sessions']}/{server['max_connections']}"
        f"  inflight {admission['inflight']}/{admission['max_inflight']}"
        f"  queued {admission['queued']}/{admission['max_queued']}"
        + (f"  cursors {server['open_cursors']}"
           if server.get("open_cursors") else ""),
        f"requests {requests}  shed {shed}"
        f"  timeouts {_counter_total(metrics, 'server.queue_timeouts')}",
    ]
    replication = server.get("replication")
    if replication:
        if replication.get("role") == "replica":
            line = (f"replica of {replication['primary']}"
                    f"  replayed lsn {replication['replayed_lsn']}"
                    f" (tt {replication['replayed_tt']})"
                    f"  lag {replication['lag_seconds']:.1f}s")
            if not replication.get("connected"):
                line += "  [DISCONNECTED]"
            lines.append(line)
        else:
            subs = replication.get("subscribers") or {}
            line = (f"primary  wal head {replication.get('head', 0)}"
                    f"  replicas {len(subs)}")
            retained = replication.get("retained_bytes") or 0
            if retained:
                line += f"  retained {retained} bytes"
            lines.append(line)
    cdc = server.get("cdc")
    if cdc and cdc.get("subscribers"):
        subscribers = cdc["subscribers"]
        lines.append(f"cdc subscribers {len(subscribers)}"
                     f"  events decoded {cdc.get('events_decoded', 0)}")
        for name, entry in sorted(subscribers.items()):
            lines.append(f"  {name}: acked {entry['acked']}"
                         f"  lag {entry['lag']}"
                         f"  held {entry['held_bytes']} bytes")
    if prev is not None and elapsed > 0:
        rate = (requests - prev[0]) / elapsed
        shed_rate = (shed - prev[1]) / elapsed
        lines.append(f"throughput {rate:.1f} req/s"
                     f"  shed {shed_rate:.1f}/s")
    latency = _histogram_entry(metrics, "server.request_seconds")
    if latency is not None and latency["count"]:
        pct = latency["percentiles"]
        cells = "  ".join(
            f"{label} {pct[label] * 1000.0:.2f}ms"
            for label in ("p50", "p95", "p99")
            if pct.get(label) is not None)
        lines.append(f"latency {cells}  ({latency['count']} samples)")
    if pins:
        lines.append(f"buffer {hits}/{pins} hits "
                     f"({100.0 * hits / pins:.1f}%)")
    for event in body.get("events", ()):
        detail = " ".join(
            f"{key}={value}" for key, value in sorted(event.items())
            if key not in ("seq", "ts", "event") and value is not None)
        lines.append(f"  [{event['seq']:>5}] {event['event']}"
                     + (f" {detail}" if detail else ""))
    return "\n".join(lines), (requests, shed)


def _format_event(event) -> str:
    """One change event as a human-readable tail line."""
    vt = event.get("vt") or (0, 0)
    text = (f"[{event.get('lsn', '?'):>6}] tt {event['tt']}  "
            f"{event['kind']:<17} {event.get('type') or '?'}"
            f"#{event['atom_id']}  vt [{vt[0]},{vt[1]})")
    if event.get("link"):
        text += f"  {event['link']}: {event['src']} -> {event['dst']}"
    if event["kind"] == "attribute_changed":
        before = event.get("before") or {}
        after = event.get("after") or {}
        changed = {key: after[key] for key in after
                   if before.get(key) != after.get(key)}
        text += f"  {changed}"
    elif event["kind"] == "atom_created":
        text += f"  {event.get('after') or {}}"
    return text


def cmd_tail(args: argparse.Namespace) -> int:
    import json

    from repro.errors import ConnectionClosedError, RemoteError
    from repro.server import DatabaseClient

    host, _, port = args.connect.rpartition(":")
    if not host or not port.isdigit():
        print(f"error: --connect needs HOST:PORT, got {args.connect!r}",
              file=sys.stderr)
        return 2
    client = DatabaseClient(host, int(port))
    feed = client.subscribe(args.subscriber, types=args.type or None,
                            kinds=args.kind or None,
                            roots=args.root or None,
                            from_lsn=args.from_lsn)
    seen = 0
    try:
        for event in feed:
            if args.json:
                print(json.dumps(event, sort_keys=True), flush=True)
            else:
                print(_format_event(event), flush=True)
            seen += 1
            if args.count and seen >= args.count:
                break
    except KeyboardInterrupt:
        pass
    except (RemoteError, ConnectionClosedError) as exc:
        print(f"server went away: {exc}", file=sys.stderr)
        return 1
    finally:
        feed.close()
        client.close()
    return 0


def cmd_monitor(args: argparse.Namespace) -> int:
    import time

    from repro.errors import ConnectionClosedError, RemoteError
    from repro.server import DatabaseClient

    host, _, port = args.connect.rpartition(":")
    if not host or not port.isdigit():
        print(f"error: --connect needs HOST:PORT, got {args.connect!r}",
              file=sys.stderr)
        return 2
    client = DatabaseClient(host, int(port))
    prev = None
    last_poll = time.monotonic()
    clear = not args.once and sys.stdout.isatty()
    try:
        while True:
            try:
                body = client.stats(events=args.events)
            except (RemoteError, ConnectionClosedError) as exc:
                print(f"server went away: {exc}", file=sys.stderr)
                return 1
            now = time.monotonic()
            frame, totals = _render_monitor(body, prev, now - last_poll)
            prev, last_poll = totals, now
            if clear:
                print("\x1b[2J\x1b[H", end="")
            print(frame, flush=True)
            if args.once:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    finally:
        client.close()


def _shell_tail(host: str, port: int, session_id, type_name) -> None:
    """The shell's ``\\tail [TYPE]`` command: follow the change stream.

    Runs on its own connection so a Ctrl-C landing mid-poll can only
    desynchronize the tail's connection, never the shell's.  The
    ephemeral cursor is unsubscribed afterwards (on a fresh connection,
    since the tail's own may be unusable) so it never pins WAL
    retention once the shell moves on.
    """
    from repro.errors import (ConnectionClosedError, ProtocolError,
                              RemoteError)
    from repro.server import DatabaseClient

    subscriber = f"shell-{session_id}"
    tail_client = DatabaseClient(host, port)
    feed = tail_client.subscribe(
        subscriber, types=[type_name] if type_name else None)
    print(f"tailing changes as {subscriber!r}"
          + (f" (type {type_name})" if type_name else "")
          + "; Ctrl-C returns to the prompt")
    count = 0
    try:
        for event in feed:
            print("  " + _format_event(event), flush=True)
            count += 1
    except KeyboardInterrupt:
        print(f"-- {count} event{'' if count == 1 else 's'}")
    except (RemoteError, ConnectionClosedError) as exc:
        print(f"tail ended: {exc}", file=sys.stderr)
    finally:
        try:
            tail_client.close()
        except (ConnectionClosedError, ProtocolError, OSError):
            pass
        try:
            with DatabaseClient(host, port) as cleanup:
                cleanup.change_stream(subscriber, unsubscribe=True)
        except (RemoteError, ConnectionClosedError, OSError) as exc:
            print(f"warning: could not unsubscribe {subscriber!r}: {exc}",
                  file=sys.stderr)


def cmd_shell(args: argparse.Namespace) -> int:
    from repro.errors import ConnectionClosedError, RemoteError
    from repro.server import DatabaseClient

    host, _, port = args.connect.rpartition(":")
    if not host or not port.isdigit():
        print(f"error: --connect needs HOST:PORT, got {args.connect!r}",
              file=sys.stderr)
        return 2
    client = DatabaseClient(host, int(port))
    print(f"connected to {host}:{port} "
          f"(schema {client.session.get('schema')}, "
          f"session {client.session.get('session_id')})")
    print("type MQL and press enter; \\q quits, \\explain Q profiles Q, "
          "\\stream Q fetches Q through a cursor, \\tail [TYPE] follows "
          "the change stream")
    try:
        while True:
            try:
                line = input("mql> ").strip()
            except EOFError:
                break
            if not line:
                continue
            if line in ("\\q", "quit", "exit"):
                break
            try:
                if line == "\\tail" or line.startswith("\\tail "):
                    type_name = line[len("\\tail"):].strip() or None
                    _shell_tail(host, int(port),
                                client.session.get("session_id"),
                                type_name)
                    continue
                if line.startswith("\\explain "):
                    body = client.explain(line[len("\\explain "):])
                elif line.startswith("\\stream "):
                    cursor = client.query_stream(line[len("\\stream "):])
                    count = 0
                    for entry in cursor:
                        start, end = entry["valid"]
                        cells = (entry.get("row")
                                 or entry.get("molecule") or {})
                        print(f"  root {entry['root_id']} "
                              f"[{start},{end}): {cells}")
                        count += 1
                    print(f"-- {count} "
                          f"entr{'y' if count == 1 else 'ies'} streamed "
                          f"({cursor.chunk_entries}/chunk), "
                          f"plan: {cursor.plan}")
                    continue
                else:
                    body = client.query(line)
            except RemoteError as exc:
                print(f"error: {exc}")
                continue
            except ConnectionClosedError as exc:
                print(f"connection lost: {exc}", file=sys.stderr)
                return 1
            for entry in body["entries"]:
                start, end = entry["valid"]
                cells = entry.get("row") or entry.get("molecule") or {}
                print(f"  root {entry['root_id']} [{start},{end}): {cells}")
            print(f"-- {len(body['entries'])} "
                  f"entr{'y' if len(body['entries']) == 1 else 'ies'}, "
                  f"plan: {body['plan']}")
            if "profile" in body:
                from repro.obs.profile import render_profile_dict
                print(render_profile_dict({"plan": body["plan"],
                                           **body["profile"]}))
    finally:
        client.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Temporal complex-object database tools")
    commands = parser.add_subparsers(dest="command", required=True)

    info = commands.add_parser("info", help="describe a database")
    info.add_argument("db")
    info.set_defaults(handler=cmd_info)

    stats = commands.add_parser("stats", help="print database statistics")
    stats.add_argument("db")
    stats.set_defaults(handler=cmd_stats)

    query = commands.add_parser("query", help="run a temporal MQL query")
    query.add_argument("db")
    query.add_argument("mql")
    query.set_defaults(handler=cmd_query)

    profile = commands.add_parser(
        "profile", help="run a query under EXPLAIN ANALYZE")
    profile.add_argument("db")
    profile.add_argument("mql")
    profile.add_argument("--json", action="store_true",
                         help="emit profile and metrics snapshot as JSON")
    profile.set_defaults(handler=cmd_profile)

    history = commands.add_parser("history",
                                  help="print an atom's bitemporal record")
    history.add_argument("db")
    history.add_argument("atom_id", type=int)
    history.set_defaults(handler=cmd_history)

    timeline = commands.add_parser(
        "timeline", help="print an atom's coalesced timeline")
    timeline.add_argument("db")
    timeline.add_argument("atom_id", type=int)
    timeline.set_defaults(handler=cmd_timeline)

    verify = commands.add_parser("verify", help="check database integrity")
    verify.add_argument("db")
    verify.set_defaults(handler=cmd_verify)

    vacuum = commands.add_parser(
        "vacuum", help="remove versions superseded before a cutoff")
    vacuum.add_argument("db")
    vacuum.add_argument("--before-tt", type=int, required=True)
    vacuum.set_defaults(handler=cmd_vacuum)

    dump = commands.add_parser("dump", help="export content as JSON")
    dump.add_argument("db")
    dump.add_argument("-o", "--output")
    dump.set_defaults(handler=cmd_dump)

    load = commands.add_parser(
        "load", help="create a database from a dump (migration path)")
    load.add_argument("db", help="target directory (must not exist)")
    load.add_argument("dump_file")
    load.add_argument("--strategy",
                      choices=[s.value for s in VersionStrategy])
    load.set_defaults(handler=cmd_load)

    serve = commands.add_parser(
        "serve", help="serve a database over TCP")
    serve.add_argument("--path", required=True,
                       help="database directory to serve")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7042)
    serve.add_argument("--max-connections", type=int, default=32)
    serve.add_argument("--max-inflight", type=int, default=8)
    serve.add_argument("--max-queued", type=int, default=32)
    serve.add_argument("--request-timeout", type=float, default=10.0)
    serve.add_argument("--slow-query-ms", type=float, default=250.0)
    serve.add_argument("--idle-timeout", type=float, default=300.0)
    serve.add_argument("--worker-threads", type=int, default=None,
                       help="request-executor threads (default: "
                            "max-inflight plus headroom)")
    serve.add_argument("--metrics-port", type=int, default=None,
                       help="serve /metrics, /health, /stats over HTTP "
                            "on this port (0 = ephemeral)")
    serve.add_argument("--event-log", default=None, metavar="FILE",
                       help="append structured events to FILE as JSON "
                            "lines")
    serve.add_argument("--replica-of", default=None, metavar="HOST:PORT",
                       help="run as a read-only replica: ship and "
                            "replay the WAL of the primary at HOST:PORT")
    serve.add_argument("--replica-id", default=None,
                       help="stable replica identity for the primary's "
                            "subscription registry (default: persisted "
                            "generated id)")
    serve.add_argument("--replica-checkpoint-interval", type=float,
                       default=5.0, metavar="SECONDS",
                       help="how often the replica advances its durable "
                            "watermark (and ack) via checkpoint")
    serve.set_defaults(handler=cmd_serve)

    shell = commands.add_parser(
        "shell", help="interactive MQL shell against a running server")
    shell.add_argument("--connect", required=True, metavar="HOST:PORT")
    shell.set_defaults(handler=cmd_shell)

    tail = commands.add_parser(
        "tail", help="follow a server's change-data-capture stream")
    tail.add_argument("--connect", required=True, metavar="HOST:PORT")
    tail.add_argument("--subscriber", default="tail-cli",
                      help="cursor name; reusing it resumes after the "
                           "last acked event")
    tail.add_argument("--type", action="append", metavar="TYPE",
                      help="only events touching this atom type "
                           "(repeatable)")
    tail.add_argument("--kind", action="append", metavar="KIND",
                      help="only this event kind, e.g. atom_created "
                           "(repeatable)")
    tail.add_argument("--root", action="append", type=int, metavar="ID",
                      help="only events touching this atom id "
                           "(repeatable)")
    tail.add_argument("--from-lsn", type=int, default=None,
                      help="explicit start LSN (default: resume from "
                           "the persisted ack, or attach at the head)")
    tail.add_argument("--count", type=int, default=0,
                      help="stop after N events (default: follow "
                           "forever)")
    tail.add_argument("--json", action="store_true",
                      help="one JSON object per event")
    tail.set_defaults(handler=cmd_tail)

    monitor = commands.add_parser(
        "monitor", help="live top-like view of a running server")
    monitor.add_argument("--connect", required=True, metavar="HOST:PORT")
    monitor.add_argument("--interval", type=float, default=2.0,
                         help="seconds between refreshes")
    monitor.add_argument("--events", type=int, default=8,
                         help="structured event-log entries to show")
    monitor.add_argument("--once", action="store_true",
                         help="print one frame and exit (for scripts)")
    monitor.set_defaults(handler=cmd_monitor)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())

"""Access system: indexes and scans over the storage layer.

* :mod:`~repro.access.keys` — order-preserving fixed-width key encoding
  (the B+-tree compares raw bytes, so every indexable value must map to
  bytes whose lexicographic order matches the value order).
* :class:`~repro.access.btree.BPlusTree` — page-based B+-tree with
  duplicate support and leaf chaining for range scans.
* :class:`~repro.access.indexes.IndexManager` — the engine-facing index
  catalog: the mandatory type index (atom type → atom ids), optional
  attribute indexes, and per-type valid-time indexes.
"""

from repro.access.btree import BPlusTree
from repro.access.indexes import IndexManager
from repro.access.keys import (
    encode_bool,
    encode_composite,
    encode_float,
    encode_int,
    encode_string,
    string_prefix_is_lossy,
)

__all__ = [
    "BPlusTree",
    "IndexManager",
    "encode_bool",
    "encode_composite",
    "encode_float",
    "encode_int",
    "encode_string",
    "string_prefix_is_lossy",
]

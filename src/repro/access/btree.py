"""Page-based B+-tree with fixed-width keys and values.

Design points:

* Keys and values are fixed-width byte strings (widths chosen at tree
  creation); keys compare with raw ``bytes`` order, which the encoders in
  :mod:`repro.access.keys` make order-preserving.
* Duplicate keys are allowed — attribute indexes map one value to many
  atoms.  An entry is the *pair* (key, value); deletion removes one
  specific pair.
* Leaves are chained left-to-right, so range scans descend once and then
  walk the chain.
* Splits propagate upward along the descent path; deletion never merges
  nodes (underfull nodes are tolerated — the classic simplification for
  workloads that are insert-heavy, which version histories are).

Node page layout::

    leaf:      [type:1][count:2][next_leaf:8][(key value) * count]
    internal:  [type:1][count:2][child0:8]  [(key child) * count]

In an internal node, ``child_i`` (with ``child_0`` stored separately)
covers keys ``k`` with ``keys[i-1] <= k < keys[i]``.
"""

from __future__ import annotations

import struct
from bisect import bisect_left, bisect_right
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.errors import IndexCorruptError, KeyEncodingError
from repro.storage.buffer import BufferManager
from repro.storage.constants import INVALID_PAGE_ID

_TYPE_LEAF = 1
_TYPE_INTERNAL = 2
_HEAD = struct.Struct("<BHQ")  # type, count, next_leaf / child0


class _Node:
    """Decoded image of one tree page."""

    __slots__ = ("page_id", "is_leaf", "keys", "values", "children",
                 "next_leaf")

    def __init__(self, page_id: int, is_leaf: bool) -> None:
        self.page_id = page_id
        self.is_leaf = is_leaf
        self.keys: List[bytes] = []
        self.values: List[bytes] = []      # leaf payloads
        self.children: List[int] = []      # internal child page ids
        self.next_leaf: int = INVALID_PAGE_ID


class BPlusTree:
    """A B+-tree over buffered pages.

    The caller owns persistence of ``root_page_id`` (typically via the
    catalog's ``index_roots`` map).
    """

    def __init__(self, buffer: BufferManager, key_size: int, value_size: int,
                 root_page_id: Optional[int] = None, name: str = "btree") -> None:
        if key_size < 1 or value_size < 0:
            raise KeyEncodingError("key/value sizes must be positive")
        self._buffer = buffer
        self.name = name
        self.key_size = key_size
        self.value_size = value_size
        metrics = buffer.metrics
        self._c_node_reads = metrics.counter("btree.node_reads", index=name)
        self._c_node_writes = metrics.counter("btree.node_writes", index=name)
        self._c_splits = metrics.counter("btree.splits", index=name)
        page_size = buffer.page_size
        self._leaf_cap = (page_size - _HEAD.size) // (key_size + value_size)
        self._internal_cap = (page_size - _HEAD.size) // (key_size + 8)
        if self._leaf_cap < 3 or self._internal_cap < 3:
            raise KeyEncodingError(
                f"key width {key_size} too large for page size {page_size}")
        if root_page_id is None:
            root = _Node(self._allocate(), is_leaf=True)
            self._write(root)
            self.root_page_id = root.page_id
        else:
            self.root_page_id = root_page_id

    # -- node I/O ----------------------------------------------------------

    def _allocate(self) -> int:
        frame = self._buffer.new_page()
        self._buffer.unpin(frame.page_id, dirty=True)
        return frame.page_id

    def _read(self, page_id: int) -> _Node:
        self._c_node_reads.inc()
        with self._buffer.page(page_id) as frame:
            data = frame.data
        node_type, count, link = _HEAD.unpack_from(data, 0)
        if node_type not in (_TYPE_LEAF, _TYPE_INTERNAL):
            raise IndexCorruptError(
                f"{self.name}: page {page_id} is not a tree node")
        node = _Node(page_id, node_type == _TYPE_LEAF)
        at = _HEAD.size
        if node.is_leaf:
            node.next_leaf = link
            for _ in range(count):
                node.keys.append(bytes(data[at:at + self.key_size]))
                at += self.key_size
                node.values.append(bytes(data[at:at + self.value_size]))
                at += self.value_size
        else:
            node.children.append(link)
            for _ in range(count):
                node.keys.append(bytes(data[at:at + self.key_size]))
                at += self.key_size
                node.children.append(
                    struct.unpack_from("<Q", data, at)[0])
                at += 8
        return node

    def _write(self, node: _Node) -> None:
        self._c_node_writes.inc()
        with self._buffer.page(node.page_id, dirty=True) as frame:
            data = frame.data
            link = node.next_leaf if node.is_leaf else node.children[0]
            _HEAD.pack_into(data, 0,
                            _TYPE_LEAF if node.is_leaf else _TYPE_INTERNAL,
                            len(node.keys), link)
            at = _HEAD.size
            if node.is_leaf:
                for key, value in zip(node.keys, node.values):
                    data[at:at + self.key_size] = key
                    at += self.key_size
                    data[at:at + self.value_size] = value
                    at += self.value_size
            else:
                for key, child in zip(node.keys, node.children[1:]):
                    data[at:at + self.key_size] = key
                    at += self.key_size
                    struct.pack_into("<Q", data, at, child)
                    at += 8

    # -- validation ------------------------------------------------------------

    def _check_key(self, key: bytes) -> bytes:
        if len(key) != self.key_size:
            raise KeyEncodingError(
                f"{self.name}: key must be {self.key_size} bytes, "
                f"got {len(key)}")
        return key

    def _check_value(self, value: bytes) -> bytes:
        if len(value) != self.value_size:
            raise KeyEncodingError(
                f"{self.name}: value must be {self.value_size} bytes, "
                f"got {len(value)}")
        return value

    # -- insertion -----------------------------------------------------------------

    def insert(self, key: bytes, value: bytes) -> None:
        """Insert the (key, value) pair; duplicates are kept."""
        self._check_key(key)
        self._check_value(value)
        split = self._insert_into(self.root_page_id, key, value)
        if split is not None:
            separator, right_pid = split
            new_root = _Node(self._allocate(), is_leaf=False)
            new_root.children = [self.root_page_id, right_pid]
            new_root.keys = [separator]
            self._write(new_root)
            self.root_page_id = new_root.page_id

    def _insert_into(self, page_id: int, key: bytes,
                     value: bytes) -> Optional[Tuple[bytes, int]]:
        """Insert below *page_id*; return (separator, new right page) on split."""
        node = self._read(page_id)
        if node.is_leaf:
            at = bisect_right(node.keys, key)
            node.keys.insert(at, key)
            node.values.insert(at, value)
            if len(node.keys) <= self._leaf_cap:
                self._write(node)
                return None
            return self._split_leaf(node)
        slot = bisect_right(node.keys, key)
        split = self._insert_into(node.children[slot], key, value)
        if split is None:
            return None
        separator, right_pid = split
        node.keys.insert(slot, separator)
        node.children.insert(slot + 1, right_pid)
        if len(node.keys) <= self._internal_cap:
            self._write(node)
            return None
        return self._split_internal(node)

    def insert_many(self, pairs: Iterable[Tuple[bytes, bytes]],
                    skip_present: bool = False) -> int:
        """Insert many pairs with one leaf traversal per run of
        adjacent keys; returns how many were actually inserted.

        The batch is sorted, then consumed in runs: one descent finds
        the leaf for a run's first key, subsequent pairs keep landing
        in the same in-memory leaf while they sort at or below the
        leaf's upper fence, and the leaf is written back once per run
        instead of once per pair.  The first pair of every descent is
        always placed in the reached leaf (legal under the inclusive
        fence invariant, and the guarantee that every run makes
        progress even when its key equals the fence).  A run that
        would overflow the leaf flushes it and falls back to
        :meth:`insert` for that one pair — the split path — then
        re-descends, since the split rearranged the fences.

        With *skip_present*, pairs already in the tree (or earlier in
        the batch) are skipped — the attribute indexes' idempotence
        contract, previously paid for with one probe descent plus one
        insert descent per entry.
        """
        batch = sorted(pairs)
        for key, value in batch:
            self._check_key(key)
            self._check_value(value)
        inserted = 0
        position = 0
        total = len(batch)
        while position < total:
            key, value = batch[position]
            node = self._read(self.root_page_id)
            fence: Optional[bytes] = None
            while not node.is_leaf:
                slot = bisect_left(node.keys, key)
                if slot < len(node.keys):
                    fence = node.keys[slot]
                node = self._read(node.children[slot])
            dirty = False
            while True:
                if skip_present and self._pair_present(node, key, value):
                    position += 1
                elif len(node.keys) >= self._leaf_cap:
                    if dirty:
                        self._write(node)
                        dirty = False
                    self.insert(key, value)
                    inserted += 1
                    position += 1
                    break  # the split moved fences: re-descend
                else:
                    at = bisect_right(node.keys, key)
                    node.keys.insert(at, key)
                    node.values.insert(at, value)
                    dirty = True
                    inserted += 1
                    position += 1
                if position >= total:
                    break
                key, value = batch[position]
                if fence is not None and key > fence:
                    break
            if dirty:
                self._write(node)
        return inserted

    def _pair_present(self, leaf: _Node, key: bytes, value: bytes) -> bool:
        """Whether the exact (key, value) pair exists, starting from the
        (possibly dirty, in-memory) *leaf* the key descends to.

        Equal keys may straddle the leaf's right fence — single inserts
        place them right of the separator while batched runs keep them
        left — so the probe walks the sibling chain as long as it keeps
        seeing the key.
        """
        node = leaf
        at = bisect_left(node.keys, key)
        while True:
            while at < len(node.keys):
                if node.keys[at] != key:
                    return False
                if node.values[at] == value:
                    return True
                at += 1
            if node.next_leaf == INVALID_PAGE_ID:
                return False
            node = self._read(node.next_leaf)
            at = 0

    def _split_leaf(self, node: _Node) -> Tuple[bytes, int]:
        self._c_splits.inc()
        mid = len(node.keys) // 2
        right = _Node(self._allocate(), is_leaf=True)
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        right.next_leaf = node.next_leaf
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        node.next_leaf = right.page_id
        self._write(right)
        self._write(node)
        return right.keys[0], right.page_id

    def _split_internal(self, node: _Node) -> Tuple[bytes, int]:
        self._c_splits.inc()
        mid = len(node.keys) // 2
        separator = node.keys[mid]
        right = _Node(self._allocate(), is_leaf=False)
        right.keys = node.keys[mid + 1:]
        right.children = node.children[mid + 1:]
        node.keys = node.keys[:mid]
        node.children = node.children[:mid + 1]
        self._write(right)
        self._write(node)
        return separator, right.page_id

    # -- search ------------------------------------------------------------------------

    def _leftmost_leaf_for(self, key: bytes) -> _Node:
        node = self._read(self.root_page_id)
        while not node.is_leaf:
            slot = bisect_left(node.keys, key)
            node = self._read(node.children[slot])
        return node

    def search(self, key: bytes) -> List[bytes]:
        """All values stored under exactly *key* (duplicates in order)."""
        self._check_key(key)
        return [value for _, value in self.range_scan(key, key,
                                                      hi_inclusive=True)]

    def range_scan(self, lo: Optional[bytes], hi: Optional[bytes],
                   hi_inclusive: bool = False
                   ) -> Iterator[Tuple[bytes, bytes]]:
        """Yield (key, value) with ``lo <= key < hi`` (or ``<= hi``).

        ``None`` bounds mean unbounded on that side.
        """
        if lo is not None:
            self._check_key(lo)
            node = self._leftmost_leaf_for(lo)
            at = bisect_left(node.keys, lo)
        else:
            node = self._read(self.root_page_id)
            while not node.is_leaf:
                node = self._read(node.children[0])
            at = 0
        if hi is not None:
            self._check_key(hi)
        while True:
            while at < len(node.keys):
                key = node.keys[at]
                if hi is not None:
                    if hi_inclusive and key > hi:
                        return
                    if not hi_inclusive and key >= hi:
                        return
                yield key, node.values[at]
                at += 1
            if node.next_leaf == INVALID_PAGE_ID:
                return
            node = self._read(node.next_leaf)
            at = 0

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        """Every (key, value) pair in key order."""
        return self.range_scan(None, None)

    def __len__(self) -> int:
        return sum(1 for _ in self.items())

    # -- deletion --------------------------------------------------------------------------

    def delete(self, key: bytes, value: bytes) -> bool:
        """Remove one (key, value) pair; returns whether it was present.

        Nodes are allowed to underflow; structure is never rebalanced.
        """
        self._check_key(key)
        self._check_value(value)
        node = self._leftmost_leaf_for(key)
        at = bisect_left(node.keys, key)
        while True:
            while at < len(node.keys):
                if node.keys[at] != key:
                    return False
                if node.values[at] == value:
                    del node.keys[at]
                    del node.values[at]
                    self._write(node)
                    return True
                at += 1
            if node.next_leaf == INVALID_PAGE_ID:
                return False
            node = self._read(node.next_leaf)
            at = 0

    # -- integrity ---------------------------------------------------------------------------

    def check(self) -> int:
        """Validate ordering, fences, and uniform leaf depth; return height."""
        leaf_depths: List[int] = []
        self._check_node(self.root_page_id, None, None, 0, leaf_depths)
        if len(set(leaf_depths)) > 1:
            raise IndexCorruptError(f"{self.name}: leaves at mixed depths")
        return leaf_depths[0] if leaf_depths else 0

    def _check_node(self, page_id: int, lo: Optional[bytes],
                    hi: Optional[bytes], depth: int,
                    leaf_depths: List[int]) -> None:
        node = self._read(page_id)
        for a, b in zip(node.keys, node.keys[1:]):
            if a > b:
                raise IndexCorruptError(
                    f"{self.name}: unordered keys in page {page_id}")
        # Duplicate keys may straddle a separator (equal keys can remain in
        # the left sibling after a split), so both fences are inclusive.
        for key in node.keys:
            if lo is not None and key < lo:
                raise IndexCorruptError(
                    f"{self.name}: key below fence in page {page_id}")
            if hi is not None and key > hi:
                raise IndexCorruptError(
                    f"{self.name}: key above fence in page {page_id}")
        if node.is_leaf:
            leaf_depths.append(depth)
            return
        bounds = [lo, *node.keys, hi]
        for index, child in enumerate(node.children):
            self._check_node(child, bounds[index], bounds[index + 1],
                             depth + 1, leaf_depths)

"""Index management: the engine-facing catalog of B+-trees.

Three kinds of indexes exist:

* The **type index** (always present) maps ``(type id, atom id)`` pairs to
  nothing — a range scan over one type id enumerates the atoms of that
  type.  It replaces the per-type segment a relational system would have:
  in the MAD model all atoms share the version store, so type membership
  must be indexed explicitly.
* **Attribute indexes** (user-created) map ``(encoded value, atom id)``
  pairs.  They index values of *every* version ever written, so a lookup
  yields candidate atoms whose history mentions the value; the engine
  rechecks candidates against the queried time.  Superseded values are
  not removed — an index entry is a filter, never an authority.
* **Valid-time indexes** (per type, user-created) map
  ``(vt_start, atom id)``; a range scan finds atoms that changed inside a
  window, which accelerates change-oriented temporal queries.

All index roots and key widths are persisted through the catalog via
:meth:`IndexManager.persist_state`.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.access.btree import BPlusTree
from repro.access.keys import decode_int, encode_composite, encode_int
from repro.errors import AccessError
from repro.storage.buffer import BufferManager

_TYPE_INDEX = "type"
_ATOM_ID_WIDTH = 8


def attribute_index_name(type_name: str, attribute: str) -> str:
    return f"attr:{type_name}.{attribute}"


def vt_index_name(type_name: str) -> str:
    return f"vt:{type_name}"


class IndexManager:
    """Creates, persists, and serves the database's B+-tree indexes."""

    def __init__(self, buffer: BufferManager,
                 state: Optional[Dict[str, Dict[str, int]]] = None) -> None:
        self._buffer = buffer
        self.metrics = buffer.metrics
        self._c_probes = self.metrics.counter("index.probes")
        self._c_entries = self.metrics.counter("index.entries_added")
        self._c_batches = self.metrics.counter("index.batch_inserts")
        self._trees: Dict[str, BPlusTree] = {}
        self._meta: Dict[str, Dict[str, int]] = {}
        # Per-transaction write buffers: attribute entries dedupe within
        # the batch (dict-as-ordered-set), vt entries keep duplicates
        # (they are blind inserts in the unbatched path too).  Lookups
        # merge these so batching is invisible to readers.
        self._pending_attr: Dict[str, Dict[bytes, None]] = {}
        self._pending_vt: Dict[str, List[bytes]] = {}
        for name, meta in (state or {}).items():
            self._meta[name] = dict(meta)
            self._trees[name] = BPlusTree(
                buffer, key_size=meta["key_size"], value_size=0,
                root_page_id=meta["root"], name=name)
        if _TYPE_INDEX not in self._trees:
            self._create(_TYPE_INDEX, key_size=16)

    # -- persistence --------------------------------------------------------

    def persist_state(self) -> Dict[str, Dict[str, int]]:
        """Index roots and key widths for the catalog.

        Flushes pending entries first — a flush can split leaves and
        move root page ids, so it must happen before roots are read.
        """
        self.flush_pending()
        return {name: {"root": tree.root_page_id,
                       "key_size": tree.key_size}
                for name, tree in self._trees.items()}

    def flush_pending(self) -> int:
        """Drain buffered index entries into their trees.

        One :meth:`BPlusTree.insert_many` call per index: the sorted
        batch shares one leaf descent per run of adjacent keys and
        writes each touched leaf once per run, instead of paying a
        probe descent plus an insert descent per entry.  Returns the
        number of entries actually inserted.
        """
        total = 0
        for name in list(self._pending_attr):
            pending = self._pending_attr.pop(name)
            if not pending:
                continue
            count = self._tree(name).insert_many(
                [(key, b"") for key in pending], skip_present=True)
            self._c_entries.inc(count)
            self._c_batches.inc()
            total += count
        for name in list(self._pending_vt):
            pending = self._pending_vt.pop(name)
            if not pending:
                continue
            total += self._tree(name).insert_many(
                [(key, b"") for key in pending])
            self._c_batches.inc()
        return total

    # -- creation -------------------------------------------------------------

    def _create(self, name: str, key_size: int) -> BPlusTree:
        tree = BPlusTree(self._buffer, key_size=key_size, value_size=0,
                         name=name)
        self._trees[name] = tree
        self._meta[name] = {"key_size": key_size}
        return tree

    def create_attribute_index(self, type_name: str, attribute: str,
                               value_width: int) -> str:
        """Create an attribute index; returns its name.

        The caller (the engine) is responsible for backfilling entries for
        versions already stored.
        """
        name = attribute_index_name(type_name, attribute)
        if name in self._trees:
            raise AccessError(f"index {name} already exists")
        self._create(name, key_size=value_width + _ATOM_ID_WIDTH)
        return name

    def create_vt_index(self, type_name: str) -> str:
        """Create a valid-time (change) index for one atom type."""
        name = vt_index_name(type_name)
        if name in self._trees:
            raise AccessError(f"index {name} already exists")
        self._create(name, key_size=8 + _ATOM_ID_WIDTH)
        return name

    def has_index(self, name: str) -> bool:
        return name in self._trees

    def index_names(self) -> List[str]:
        return sorted(self._trees)

    def _tree(self, name: str) -> BPlusTree:
        try:
            return self._trees[name]
        except KeyError:
            raise AccessError(f"no index named {name}") from None

    # -- type index -----------------------------------------------------------------

    def register_atom(self, type_id: int, atom_id: int) -> None:
        key = encode_composite(encode_int(type_id), encode_int(atom_id))
        self._tree(_TYPE_INDEX).insert(key, b"")

    def unregister_atom(self, type_id: int, atom_id: int) -> None:
        key = encode_composite(encode_int(type_id), encode_int(atom_id))
        self._tree(_TYPE_INDEX).delete(key, b"")

    def atoms_of_type(self, type_id: int) -> Iterator[int]:
        """Atom ids registered under *type_id*, ascending."""
        self._c_probes.inc()
        lo = encode_composite(encode_int(type_id), encode_int(-(2**63)))
        hi = encode_composite(encode_int(type_id), encode_int(2**63 - 1))
        for key, _ in self._tree(_TYPE_INDEX).range_scan(lo, hi,
                                                         hi_inclusive=True):
            yield decode_int(key[8:16])

    # -- attribute indexes ---------------------------------------------------------------

    def add_attribute_entry(self, name: str, value_key: bytes,
                            atom_id: int) -> None:
        """Register that some version of *atom_id* carries *value_key*.

        Idempotent per (value, atom) pair — re-adding the same pair (the
        common case when consecutive versions keep a value) is skipped to
        bound index growth.

        Entries are buffered until :meth:`flush_pending` (transaction
        commit/abort, or persistence) batches them into the tree; the
        buffer dict dedupes within the batch and the flush dedupes
        against the tree.
        """
        self._tree(name)  # validate the index exists now, not at flush
        key = encode_composite(value_key, encode_int(atom_id))
        self._pending_attr.setdefault(name, {})[key] = None

    def candidate_atoms_eq(self, name: str, value_key: bytes) -> List[int]:
        """Atoms with *some* version matching the value key exactly."""
        self._c_probes.inc()
        lo = encode_composite(value_key, encode_int(-(2**63)))
        hi = encode_composite(value_key, encode_int(2**63 - 1))
        keys = {key for key, _ in
                self._tree(name).range_scan(lo, hi, hi_inclusive=True)}
        for key in self._pending_attr.get(name, ()):
            if lo <= key <= hi:
                keys.add(key)
        return [decode_int(key[-8:]) for key in sorted(keys)]

    def candidate_atoms_range(self, name: str, lo_key: Optional[bytes],
                              hi_key: Optional[bytes],
                              hi_inclusive: bool = False) -> List[int]:
        """Atoms with some version whose value key lies in the range.

        Distinct-ified: an atom appears once even if many versions match.
        """
        self._c_probes.inc()
        width = self._tree(name).key_size - _ATOM_ID_WIDTH
        lo = (encode_composite(lo_key, encode_int(-(2**63)))
              if lo_key is not None else None)
        if hi_key is not None:
            hi = encode_composite(hi_key, encode_int(2**63 - 1))
        else:
            hi = None
        matched = {key for key, _ in
                   self._tree(name).range_scan(lo, hi,
                                               hi_inclusive=hi_inclusive)}
        for key in self._pending_attr.get(name, ()):
            if lo is not None and key < lo:
                continue
            if hi is not None and (key > hi if hi_inclusive else key >= hi):
                continue
            matched.add(key)
        seen: Dict[int, None] = {}
        for key in sorted(matched):
            if hi_key is not None and not hi_inclusive:
                if key[:width] >= hi_key:
                    continue
            seen.setdefault(decode_int(key[-8:]))
        return list(seen)

    # -- valid-time indexes -----------------------------------------------------------------

    def add_vt_entry(self, name: str, vt_start: int, atom_id: int) -> None:
        self._tree(name)  # validate the index exists now, not at flush
        key = encode_composite(encode_int(vt_start), encode_int(atom_id))
        self._pending_vt.setdefault(name, []).append(key)

    def atoms_changed_during(self, name: str, start: int,
                             end: int) -> List[int]:
        """Atoms with a version whose validity began in ``[start, end)``."""
        self._c_probes.inc()
        lo = encode_composite(encode_int(start), encode_int(-(2**63)))
        hi = encode_composite(encode_int(end), encode_int(-(2**63)))
        matched = {key for key, _ in self._tree(name).range_scan(lo, hi)}
        for key in self._pending_vt.get(name, ()):
            if lo <= key < hi:
                matched.add(key)
        seen: Dict[int, None] = {}
        for key in sorted(matched):
            seen.setdefault(decode_int(key[8:16]))
        return list(seen)

    # -- integrity ------------------------------------------------------------------------------

    def check_all(self) -> None:
        self.flush_pending()
        for tree in self._trees.values():
            tree.check()

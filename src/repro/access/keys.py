"""Order-preserving key encoding for the B+-tree.

The tree compares keys with plain ``bytes`` comparison, so each value type
is mapped to a fixed-width byte string whose lexicographic order equals
the natural value order:

* signed 64-bit integers — big-endian with the sign bit flipped;
* IEEE-754 doubles — big-endian bit pattern, sign bit flipped for
  positives and all bits flipped for negatives (the classic total-order
  transform);
* booleans — one byte;
* strings — UTF-8 truncated or padded to a fixed prefix width.  The
  prefix is *lossy*: two distinct strings may share an encoding, so an
  index over strings returns candidates that the caller must recheck
  against the stored value (the planner does this automatically).

Composite keys concatenate the fixed-width parts, so the concatenation is
order-preserving as well.
"""

from __future__ import annotations

import struct

from repro.errors import KeyEncodingError

INT_KEY_WIDTH = 8
FLOAT_KEY_WIDTH = 8
BOOL_KEY_WIDTH = 1

#: Default number of bytes kept from a string for its index key.
DEFAULT_STRING_WIDTH = 16

_U64_BE = struct.Struct(">Q")
_I64_RANGE = (-(2**63), 2**63 - 1)


def encode_int(value: int) -> bytes:
    """Encode a signed 64-bit integer order-preservingly."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise KeyEncodingError(f"expected int, got {type(value).__name__}")
    if not (_I64_RANGE[0] <= value <= _I64_RANGE[1]):
        raise KeyEncodingError(f"integer {value} outside 64-bit range")
    return _U64_BE.pack((value + 2**63) & 0xFFFF_FFFF_FFFF_FFFF)


def decode_int(key: bytes) -> int:
    """Inverse of :func:`encode_int`."""
    (raw,) = _U64_BE.unpack(key[:8])
    return raw - 2**63


def encode_float(value: float) -> bytes:
    """Encode a double with the IEEE-754 total-order transform."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise KeyEncodingError(f"expected float, got {type(value).__name__}")
    (bits,) = struct.unpack(">Q", struct.pack(">d", float(value)))
    if bits & (1 << 63):
        bits ^= 0xFFFF_FFFF_FFFF_FFFF  # negative: flip everything
    else:
        bits ^= 1 << 63  # non-negative: flip only the sign bit
    return _U64_BE.pack(bits)


def encode_bool(value: bool) -> bytes:
    if not isinstance(value, bool):
        raise KeyEncodingError(f"expected bool, got {type(value).__name__}")
    return b"\x01" if value else b"\x00"


def encode_string(value: str, width: int = DEFAULT_STRING_WIDTH) -> bytes:
    """Encode a string as a fixed-width, zero-padded UTF-8 prefix."""
    if not isinstance(value, str):
        raise KeyEncodingError(f"expected str, got {type(value).__name__}")
    raw = value.encode("utf-8")[:width]
    return raw.ljust(width, b"\x00")


def string_prefix_is_lossy(value: str, width: int = DEFAULT_STRING_WIDTH) -> bool:
    """True when *value* does not round-trip through its prefix encoding.

    Lossy keys force the planner to recheck candidates against stored
    values; exact keys allow the index result to be trusted for equality.
    """
    raw = value.encode("utf-8")
    return len(raw) > width or raw.endswith(b"\x00")


def encode_composite(*parts: bytes) -> bytes:
    """Concatenate fixed-width encoded parts into one composite key."""
    return b"".join(parts)

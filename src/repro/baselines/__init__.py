"""Comparison baselines for the evaluation.

Two classical alternatives to an integrated temporal complex-object
engine (experiment R-T5 measures both against it):

* :class:`~repro.baselines.snapshot.SnapshotDatabase` — keep a complete
  logical copy of the database per change time point.  Queries about any
  instant are trivial; storage grows with (database size × number of
  change points).
* :class:`~repro.baselines.tuple_timestamp.TupleTimestampDatabase` —
  flat 1NF relations with explicit timestamp columns (the way temporal
  data was commonly shoehorned into relational systems): one row per
  atom version, link rows per reference interval, and molecule
  reconstruction by joins at query time.
"""

from repro.baselines.snapshot import SnapshotDatabase
from repro.baselines.tuple_timestamp import TupleTimestampDatabase

__all__ = ["SnapshotDatabase", "TupleTimestampDatabase"]

"""Snapshot baseline: one complete database copy per change point.

The oldest way to make data temporal: whenever anything changes at time
*t*, store a full copy of the database state tagged *t*.  Any past
instant is answered by the newest snapshot at or before it — queries are
trivial and fast, storage is catastrophic (size × change points), which
is precisely the trade-off experiment R-T5 quantifies.

The baseline is valid-time only and requires changes in nondecreasing
time order (snapshots cannot represent retroactive edits — one of the
reasons integrated version histories win).  Storage is accounted as the
serialized size of every snapshot, since the baseline's point is its
space behaviour, not its page layout.
"""

from __future__ import annotations

import json
from bisect import bisect_right
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.core.molecule import Molecule, MoleculeAtom, MoleculeType
from repro.core.schema import Schema
from repro.core.version import Version, ref_key
from repro.errors import TemporalUpdateError, UnknownAtomError
from repro.temporal import FOREVER, Interval, Timestamp

#: One atom's state inside a snapshot: (type name, values, refs).
_AtomState = Tuple[str, Dict[str, Any], Dict[str, FrozenSet[int]]]


class SnapshotDatabase:
    """Copy-per-change valid-time database."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._times: List[Timestamp] = []
        self._snapshots: List[Dict[int, _AtomState]] = []
        self._next_atom_id = 1
        self.rows_touched = 0  # query-effort counter

    # -- change application ---------------------------------------------------

    def _state_for_change(self, at: Timestamp) -> Dict[int, _AtomState]:
        if self._times and at < self._times[-1]:
            raise TemporalUpdateError(
                f"snapshot databases cannot change the past "
                f"(change at {at} after {self._times[-1]})")
        if self._times and self._times[-1] == at:
            return self._snapshots[-1]
        previous = self._snapshots[-1] if self._snapshots else {}
        state = {atom_id: (type_name, dict(values),
                           {k: v for k, v in refs.items()})
                 for atom_id, (type_name, values, refs) in previous.items()}
        self._times.append(at)
        self._snapshots.append(state)
        return state

    def insert(self, type_name: str, values: Dict[str, Any],
               at: Timestamp) -> int:
        atom_type = self.schema.atom_type(type_name)
        checked = atom_type.validate_values(values)
        state = self._state_for_change(at)
        atom_id = self._next_atom_id
        self._next_atom_id += 1
        state[atom_id] = (type_name, checked, {})
        return atom_id

    def update(self, atom_id: int, changes: Dict[str, Any],
               at: Timestamp) -> None:
        state = self._state_for_change(at)
        if atom_id not in state:
            raise UnknownAtomError(f"no atom {atom_id} at {at}")
        type_name, values, refs = state[atom_id]
        checked = self.schema.atom_type(type_name).validate_values(
            changes, partial=True)
        values.update(checked)

    def delete(self, atom_id: int, at: Timestamp) -> None:
        state = self._state_for_change(at)
        if atom_id not in state:
            raise UnknownAtomError(f"no atom {atom_id} at {at}")
        removed_refs = state.pop(atom_id)[2]
        # Maintain symmetry: partners lose their back references.
        for key, partners in removed_refs.items():
            link, direction = key.rsplit(".", 1)
            other = ref_key(link, "in" if direction == "out" else "out")
            for partner in partners:
                if partner in state:
                    p_refs = state[partner][2]
                    p_refs[other] = p_refs.get(other, frozenset()) - {atom_id}

    def link(self, link_name: str, source_id: int, target_id: int,
             at: Timestamp) -> None:
        self.schema.link_type(link_name)
        state = self._state_for_change(at)
        for atom_id in (source_id, target_id):
            if atom_id not in state:
                raise UnknownAtomError(f"no atom {atom_id} at {at}")
        out_key, in_key = ref_key(link_name, "out"), ref_key(link_name, "in")
        src_refs = state[source_id][2]
        src_refs[out_key] = src_refs.get(out_key, frozenset()) | {target_id}
        dst_refs = state[target_id][2]
        dst_refs[in_key] = dst_refs.get(in_key, frozenset()) | {source_id}

    def unlink(self, link_name: str, source_id: int, target_id: int,
               at: Timestamp) -> None:
        state = self._state_for_change(at)
        out_key, in_key = ref_key(link_name, "out"), ref_key(link_name, "in")
        if source_id in state:
            refs = state[source_id][2]
            refs[out_key] = refs.get(out_key, frozenset()) - {target_id}
        if target_id in state:
            refs = state[target_id][2]
            refs[in_key] = refs.get(in_key, frozenset()) - {source_id}

    # -- reads -------------------------------------------------------------------

    def _snapshot_at(self, at: Timestamp) -> Optional[Dict[int, _AtomState]]:
        index = bisect_right(self._times, at) - 1
        if index < 0:
            return None
        return self._snapshots[index]

    def _span_at(self, at: Timestamp) -> Interval:
        """The validity span of the snapshot covering *at*."""
        index = bisect_right(self._times, at) - 1
        start = self._times[index]
        end = (self._times[index + 1]
               if index + 1 < len(self._times) else FOREVER)
        return Interval(start, end)

    def version_at(self, atom_id: int, at: Timestamp) -> Optional[Version]:
        snapshot = self._snapshot_at(at)
        if snapshot is None or atom_id not in snapshot:
            return None
        self.rows_touched += 1
        type_name, values, refs = snapshot[atom_id]
        return Version(self._span_at(at), Interval(0, FOREVER),
                       dict(values),
                       {k: frozenset(v) for k, v in refs.items() if v})

    def atoms_of_type(self, type_name: str,
                      at: Timestamp) -> List[int]:
        snapshot = self._snapshot_at(at)
        if snapshot is None:
            return []
        self.rows_touched += len(snapshot)
        return sorted(atom_id for atom_id, (tn, _, _) in snapshot.items()
                      if tn == type_name)

    def molecule_at(self, root_id: int, mtype: MoleculeType,
                    at: Timestamp) -> Optional[Molecule]:
        root_version = self.version_at(root_id, at)
        if root_version is None:
            return None
        root = self._expand(root_id, mtype.root, root_version, mtype, at)
        return Molecule(mtype, root)

    def _expand(self, atom_id: int, type_name: str, version: Version,
                mtype: MoleculeType, at: Timestamp,
                path: frozenset = frozenset()) -> MoleculeAtom:
        # Depth bounds of recursive molecule types are not honoured by
        # the baselines (out of comparison scope); revisits along one
        # path are skipped so data cycles always terminate.
        path = path | {atom_id}
        atom = MoleculeAtom(atom_id, type_name, version)
        for edge in mtype.edges_from(type_name):
            children = []
            for child_id in sorted(version.refs.get(edge.parent_ref_key,
                                                    frozenset())):
                if child_id in path:
                    continue
                child_version = self.version_at(child_id, at)
                if child_version is None:
                    continue
                children.append(self._expand(child_id, edge.child,
                                             child_version, mtype, at,
                                             path))
            atom.children[edge] = children
        return atom

    def molecule_history(self, root_id: int, mtype: MoleculeType,
                         window: Interval
                         ) -> List[Tuple[Interval, Molecule]]:
        """One state per snapshot overlapping the window (no coalescing
        beyond identical adjacent compositions)."""
        states: List[Tuple[Interval, Molecule]] = []
        for index, at in enumerate(self._times):
            end = (self._times[index + 1]
                   if index + 1 < len(self._times) else FOREVER)
            span = Interval(at, end).intersect(window)
            if span is None:
                continue
            molecule = self.molecule_at(root_id, mtype, at)
            if molecule is None:
                continue
            if (states and states[-1][0].meets(span)
                    and states[-1][1].same_composition_as(molecule)):
                states[-1] = (Interval(states[-1][0].start, span.end),
                              states[-1][1])
            else:
                states.append((span, molecule))
        return states

    # -- accounting ----------------------------------------------------------------

    def snapshot_count(self) -> int:
        return len(self._snapshots)

    def storage_bytes(self) -> int:
        """Serialized size of all snapshots (the baseline's cost metric)."""
        total = 0
        for state in self._snapshots:
            document = {
                str(atom_id): [type_name, values,
                               {k: sorted(v) for k, v in refs.items()}]
                for atom_id, (type_name, values, refs) in state.items()
            }
            total += len(json.dumps(document, separators=(",", ":")))
        return total

"""1NF tuple-timestamping baseline: flat relations with time columns.

The way temporal data was commonly pressed into relational systems: one
table per atom type with ``(atom_id, vt_start, vt_end, attributes...)``
rows, one table per link type with ``(source, target, vt_start,
vt_end)`` rows.  An update closes the current row and inserts a new one;
a molecule at time *t* is reconstructed by joining the tables on the
link rows valid at *t*.

Compared to the integrated engine this loses object clustering — every
molecule touches one table per atom type plus one per link type, and
every access filters rows by interval — which the row-touch counters
make visible in experiment R-T5.  The baseline is valid-time only
(tuple timestamping with transaction time doubles the column set; the
comparison does not need it).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.core.molecule import Molecule, MoleculeAtom, MoleculeType
from repro.core.schema import Schema
from repro.core.version import Version, ref_key
from repro.errors import TemporalUpdateError, UnknownAtomError
from repro.temporal import FOREVER, Interval, Timestamp


class _AtomRow:
    """One tuple of an atom-type relation."""

    __slots__ = ("atom_id", "vt_start", "vt_end", "values")

    def __init__(self, atom_id: int, vt_start: Timestamp,
                 vt_end: Timestamp, values: Dict[str, Any]) -> None:
        self.atom_id = atom_id
        self.vt_start = vt_start
        self.vt_end = vt_end
        self.values = values

    def valid_at(self, at: Timestamp) -> bool:
        return self.vt_start <= at < self.vt_end


class _LinkRow:
    """One tuple of a link relation."""

    __slots__ = ("source", "target", "vt_start", "vt_end")

    def __init__(self, source: int, target: int, vt_start: Timestamp,
                 vt_end: Timestamp) -> None:
        self.source = source
        self.target = target
        self.vt_start = vt_start
        self.vt_end = vt_end

    def valid_at(self, at: Timestamp) -> bool:
        return self.vt_start <= at < self.vt_end


class TupleTimestampDatabase:
    """Flat 1NF valid-time relations with join-based molecule queries."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._atom_tables: Dict[str, List[_AtomRow]] = {
            atom_type.name: [] for atom_type in schema.atom_types}
        self._link_tables: Dict[str, List[_LinkRow]] = {
            link.name: [] for link in schema.link_types}
        self._atom_type_of: Dict[int, str] = {}
        self._next_atom_id = 1
        self.rows_touched = 0

    # -- mutation -------------------------------------------------------------

    def insert(self, type_name: str, values: Dict[str, Any],
               valid_from: Timestamp,
               valid_to: Timestamp = FOREVER) -> int:
        atom_type = self.schema.atom_type(type_name)
        checked = atom_type.validate_values(values)
        atom_id = self._next_atom_id
        self._next_atom_id += 1
        self._atom_tables[type_name].append(
            _AtomRow(atom_id, valid_from, valid_to, checked))
        self._atom_type_of[atom_id] = type_name
        return atom_id

    def _rows_of(self, atom_id: int) -> Tuple[str, List[_AtomRow]]:
        type_name = self._atom_type_of.get(atom_id)
        if type_name is None:
            raise UnknownAtomError(f"no atom {atom_id}")
        return type_name, self._atom_tables[type_name]

    def update(self, atom_id: int, changes: Dict[str, Any],
               valid_from: Timestamp) -> None:
        """Close overlapping rows at *valid_from* and re-insert changed."""
        type_name, table = self._rows_of(atom_id)
        checked = self.schema.atom_type(type_name).validate_values(
            changes, partial=True)
        touched = False
        for row in list(table):
            self.rows_touched += 1
            if row.atom_id != atom_id or row.vt_end <= valid_from:
                continue
            touched = True
            old_end = row.vt_end
            if row.vt_start < valid_from:
                row.vt_end = valid_from
                new_values = dict(row.values)
                new_values.update(checked)
                table.append(_AtomRow(atom_id, valid_from, old_end,
                                      new_values))
            else:
                row.values = {**row.values, **checked}
        if not touched:
            raise TemporalUpdateError(
                f"atom {atom_id} has no validity at or after {valid_from}")

    def delete(self, atom_id: int, valid_from: Timestamp) -> None:
        _, table = self._rows_of(atom_id)
        kept: List[_AtomRow] = []
        for row in table:
            self.rows_touched += 1
            if row.atom_id != atom_id or row.vt_end <= valid_from:
                kept.append(row)
                continue
            if row.vt_start < valid_from:
                row.vt_end = valid_from
                kept.append(row)
            # rows starting at/after valid_from vanish
        table[:] = kept

    def link(self, link_name: str, source_id: int, target_id: int,
             valid_from: Timestamp, valid_to: Timestamp = FOREVER) -> None:
        self.schema.link_type(link_name)
        self._link_tables[link_name].append(
            _LinkRow(source_id, target_id, valid_from, valid_to))

    def unlink(self, link_name: str, source_id: int, target_id: int,
               valid_from: Timestamp) -> None:
        for row in self._link_tables[link_name]:
            self.rows_touched += 1
            if (row.source == source_id and row.target == target_id
                    and row.vt_end > valid_from):
                row.vt_end = max(row.vt_start + 1, valid_from)

    # -- reads ----------------------------------------------------------------------

    def version_at(self, atom_id: int, at: Timestamp) -> Optional[Version]:
        type_name, table = self._rows_of(atom_id)
        for row in table:
            self.rows_touched += 1
            if row.atom_id == atom_id and row.valid_at(at):
                return Version(Interval(row.vt_start, row.vt_end),
                               Interval(0, FOREVER), dict(row.values),
                               self._refs_at(atom_id, type_name, at))
        return None

    def _refs_at(self, atom_id: int, type_name: str,
                 at: Timestamp) -> Dict[str, frozenset]:
        refs: Dict[str, frozenset] = {}
        for link in self.schema.links_touching(type_name):
            table = self._link_tables[link.name]
            if link.source == type_name:
                targets = set()
                for row in table:
                    self.rows_touched += 1
                    if row.source == atom_id and row.valid_at(at):
                        targets.add(row.target)
                if targets:
                    refs[ref_key(link.name, "out")] = frozenset(targets)
            if link.target == type_name:
                sources = set()
                for row in table:
                    self.rows_touched += 1
                    if row.target == atom_id and row.valid_at(at):
                        sources.add(row.source)
                if sources:
                    refs[ref_key(link.name, "in")] = frozenset(sources)
        return refs

    def atoms_of_type(self, type_name: str, at: Timestamp) -> List[int]:
        result = set()
        for row in self._atom_tables[type_name]:
            self.rows_touched += 1
            if row.valid_at(at):
                result.add(row.atom_id)
        return sorted(result)

    def molecule_at(self, root_id: int, mtype: MoleculeType,
                    at: Timestamp) -> Optional[Molecule]:
        """Join-based molecule reconstruction at one instant."""
        version = self.version_at(root_id, at)
        if version is None:
            return None
        return Molecule(mtype, self._expand(root_id, mtype.root, version,
                                            mtype, at))

    def _expand(self, atom_id: int, type_name: str, version: Version,
                mtype: MoleculeType, at: Timestamp,
                path: frozenset = frozenset()) -> MoleculeAtom:
        # Depth bounds of recursive molecule types are not honoured by
        # the baselines (out of comparison scope); revisits along one
        # path are skipped so data cycles always terminate.
        path = path | {atom_id}
        atom = MoleculeAtom(atom_id, type_name, version)
        for edge in mtype.edges_from(type_name):
            children = []
            for child_id in sorted(version.refs.get(edge.parent_ref_key,
                                                    frozenset())):
                if child_id in path:
                    continue
                child_version = self.version_at(child_id, at)
                if child_version is None:
                    continue
                children.append(self._expand(child_id, edge.child,
                                             child_version, mtype, at,
                                             path))
            atom.children[edge] = children
        return atom

    def molecule_history(self, root_id: int, mtype: MoleculeType,
                         window: Interval
                         ) -> List[Tuple[Interval, Molecule]]:
        """Change-point sweep over the flat tables."""
        points = {window.start}
        for table in self._atom_tables.values():
            for row in table:
                self.rows_touched += 1
                for point in (row.vt_start, row.vt_end):
                    if window.start < point < window.end:
                        points.add(point)
        for table in self._link_tables.values():
            for row in table:
                self.rows_touched += 1
                for point in (row.vt_start, row.vt_end):
                    if window.start < point < window.end:
                        points.add(point)
        boundaries = sorted(points) + [window.end]
        states: List[Tuple[Interval, Molecule]] = []
        for index in range(len(boundaries) - 1):
            span = Interval(boundaries[index], boundaries[index + 1])
            molecule = self.molecule_at(root_id, mtype, span.start)
            if molecule is None:
                continue
            if (states and states[-1][0].meets(span)
                    and states[-1][1].same_composition_as(molecule)):
                states[-1] = (Interval(states[-1][0].start, span.end),
                              states[-1][1])
            else:
                states.append((span, molecule))
        return states

    # -- accounting --------------------------------------------------------------------

    def row_counts(self) -> Dict[str, int]:
        counts = {name: len(rows) for name, rows in self._atom_tables.items()}
        counts.update({f"link:{name}": len(rows)
                       for name, rows in self._link_tables.items()})
        return counts

    def storage_bytes(self) -> int:
        """Serialized size of all rows (the baseline's cost metric)."""
        total = 0
        for rows in self._atom_tables.values():
            for row in rows:
                total += len(json.dumps(
                    [row.atom_id, row.vt_start, row.vt_end, row.values],
                    separators=(",", ":")))
        for rows in self._link_tables.values():
            total += 40 * len(rows)
        return total

"""Change-data-capture: typed change events over the temporal store.

Two entry points share one event vocabulary:

* :class:`~repro.cdc.source.ChangeStreamSource` answers the ungated
  ``SUBSCRIBE`` opcode — it tails the WAL, decodes committed physical
  records into schema-level change events, and serves them in
  long-polled batches with per-subscriber cursors that survive
  reconnect (the consumed watermark is persisted in the catalog, and
  the WAL's retention guard holds the log for lagging consumers
  exactly as it does for replicas).

* :func:`~repro.cdc.diff.compute_diff` backs the MQL query form
  ``DIFF <molecule> BETWEEN t1 AND t2`` — it compares two time slices
  of each molecule through the batched read path and reports the net
  delta as the *same* event records the stream emits.

:func:`~repro.cdc.events.fold_events` connects the two: folding the
subscribed event stream over ``(t1, t2]`` reconstructs the DIFF result
exactly (the differential oracle the tests and the R-S3 bench enforce).
"""

from repro.cdc.diff import compute_diff
from repro.cdc.events import (
    EVENT_KINDS,
    decode_operation,
    event_record,
    event_sort_key,
    fold_events,
)
from repro.cdc.source import ChangeStreamSource

__all__ = [
    "ChangeStreamSource",
    "EVENT_KINDS",
    "compute_diff",
    "decode_operation",
    "event_record",
    "event_sort_key",
    "fold_events",
]

"""Temporal DIFF: net change events between two time slices.

``DIFF <molecule> BETWEEN t1 AND t2`` asks how the current state of
each molecule (the valid instant ``FOREVER - 1``) evolved between two
transaction times: what the database believed at ``t1`` versus at
``t2``.  The answer is reported as the same canonical event records the
SUBSCRIBE change stream emits (:mod:`repro.cdc.events`), netted — one
value row per atom whose attributes moved, one link row per reference
that appeared or disappeared.

The computation is read-side only: for every atom in scope the full
version history (one batched ``all_versions_many`` fetch) is walked
over the belief-time boundaries inside ``(t1, t2]``, tracking how the
record governing the instant changes.  The *last* transition that
changed values (or a reference) supplies the row's transaction time and
valid window — by construction the record as originally written by that
operation, which is exactly what the WAL decoder reports for the same
operation.  That correspondence is what makes the differential oracle
(`fold_events` over the subscribed stream == DIFF) hold exactly.

Three deliberate semantic choices, shared with the fold:

* A creation brings its references: an atom created inside the window
  reports one ``link_added`` row per outgoing reference of its new
  state, because the linking operations were logged explicitly even
  when they shared the creating transaction.
* A deleted atom's outgoing links are implied by its deletion — no link
  rows are reported for an atom that no longer exists at the window
  end, because deletion truncates validity without logging per-link
  removals.
* Belief revisions that rewrite a state without changing it (an update
  to the same values) are not transitions; the row's times come from
  the last *effective* change.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.cdc.events import event_record, event_sort_key
from repro.core.version import OUT, Version, split_ref_key
from repro.temporal import FOREVER

#: Sentinel meaning "the atom has no state at the instant".
_ABSENT = None


def _state_at(candidates: List[Version], tau: int) -> Optional[Version]:
    """The record governing the instant as believed at *tau*."""
    for version in candidates:
        if version.tt.contains(tau):
            return version
    return _ABSENT


def _out_refs(version: Optional[Version]) -> Dict[Tuple[str, int], Version]:
    """``(link, dst) -> version`` for every outgoing reference."""
    refs: Dict[Tuple[str, int], Version] = {}
    if version is None:
        return refs
    for key, partners in version.refs.items():
        link, direction = split_ref_key(key)
        if direction != OUT:
            continue
        for dst in partners:
            refs[(link, dst)] = version
    return refs


def _deleted_vt(history: List[Version], tau: int,
                removed: Version, instant: int) -> Tuple[int, int]:
    """The valid window a deletion at belief time *tau* removed.

    A delete splits the governing record: its in-window remainder (if
    any) reappears truncated, with the same valid start and a new end at
    the deletion's window start.  That twin's end is the deletion window
    start the original operation logged.
    """
    for version in history:
        if (version.tt.start == tau
                and version.vt.start == removed.vt.start
                and version.vt.end <= instant):
            return (version.vt.end, FOREVER)
    return (removed.vt.start, FOREVER)


def atom_delta(history: List[Version], type_name: Optional[str],
               atom_id: int, t1: int, t2: int,
               at: Optional[int] = None) -> List[Dict[str, Any]]:
    """Net change events for one atom between belief times t1 and t2."""
    instant = FOREVER - 1 if at is None else at
    candidates = [v for v in history if v.vt.contains(instant)]
    boundaries = sorted(
        {v.tt.start for v in candidates if t1 < v.tt.start <= t2}
        | {v.tt.end for v in candidates
           if v.tt.end != FOREVER and t1 < v.tt.end <= t2})
    initial = _state_at(candidates, t1)
    prev = initial
    last_value: Optional[Tuple[int, Optional[Version],
                               Optional[Version]]] = None
    link_transitions: Dict[Tuple[str, int], List[Tuple[str, int,
                                                       Version]]] = {}
    for tau in boundaries:
        cur = _state_at(candidates, tau)
        if cur is prev:
            continue
        prev_vals = dict(prev.values) if prev is not None else None
        cur_vals = dict(cur.values) if cur is not None else None
        if prev_vals != cur_vals:
            last_value = (tau, prev, cur)
        if cur is not None:
            # A creation (prev absent) adds every reference of the new
            # state; between two existing states, set difference.  A
            # deletion adds nothing — see the module docstring.
            before_refs = _out_refs(prev)
            after_refs = _out_refs(cur)
            for key in after_refs.keys() - before_refs.keys():
                link_transitions.setdefault(key, []).append(
                    ("link_added", tau, after_refs[key]))
            if prev is not None:
                for key in before_refs.keys() - after_refs.keys():
                    link_transitions.setdefault(key, []).append(
                        ("link_removed", tau, cur))
        prev = cur
    final = prev
    if final is None:
        # The atom does not exist at the window end: its links are
        # implied by the deletion (or never netted into existence).
        link_transitions.clear()
    rows: List[Dict[str, Any]] = []
    initial_vals = dict(initial.values) if initial is not None else None
    final_vals = dict(final.values) if final is not None else None
    if initial_vals != final_vals and last_value is not None:
        tau, removed, established = last_value
        if initial is None:
            kind = "atom_created"
        elif final is None:
            kind = "atom_deleted"
        else:
            kind = "attribute_changed"
        if established is not None:
            vt = (established.vt.start, established.vt.end)
        else:
            vt = _deleted_vt(history, tau, removed, instant)
        rows.append(event_record(kind, atom_id, type_name, tau, vt,
                                 before=initial_vals, after=final_vals))
    for (link, dst), transitions in link_transitions.items():
        first_kind = transitions[0][0]
        kind, tau, record = transitions[-1]
        if first_kind != kind:
            continue  # appeared and disappeared: netted out
        rows.append(event_record(kind, atom_id, type_name, tau,
                                 (record.vt.start, record.vt.end),
                                 link=link, src=atom_id, dst=dst))
    rows.sort(key=event_sort_key)
    return rows


def compute_diff(engine, scopes: Dict[int, Dict[int, Optional[str]]],
                 t1: int, t2: int,
                 at: Optional[int] = None) -> Dict[int, List[Dict[str, Any]]]:
    """Net change events per root between belief times t1 and t2.

    *scopes* maps each root id to its atom scope — ``atom_id -> type
    name`` for every atom in the molecule at either endpoint.  All
    histories are fetched in one batched read; an atom shared by several
    molecules is walked once.
    """
    all_ids: Dict[int, Optional[str]] = {}
    for scope in scopes.values():
        all_ids.update(scope)
    histories = engine.all_versions_many(list(all_ids))
    deltas: Dict[int, List[Dict[str, Any]]] = {}
    for atom_id, type_name in all_ids.items():
        history = histories.get(atom_id)
        deltas[atom_id] = ([] if history is None else
                           atom_delta(history, type_name, atom_id,
                                      t1, t2, at))
    result: Dict[int, List[Dict[str, Any]]] = {}
    for root_id, scope in scopes.items():
        rows: List[Dict[str, Any]] = []
        for atom_id in scope:
            rows.extend(deltas.get(atom_id, ()))
        rows.sort(key=event_sort_key)
        result[root_id] = rows
    return result

"""Change events: the shared vocabulary of SUBSCRIBE and DIFF.

An event is a plain JSON-safe dict with a fixed key set::

    {"kind":    "atom_created" | "attribute_changed" | "atom_deleted"
              | "link_added" | "link_removed",
     "atom_id": int,            # the touched atom (link events: the source)
     "type":    str | None,     # the atom's schema type name
     "tt":      int,            # transaction time of the change
     "vt":      [start, end],   # valid-time window the change covers
     "before":  dict | None,    # attribute values replaced (None: none)
     "after":   dict | None,    # attribute values established (None: gone)
     "link":    str | None,     # link events: the link type name
     "src":     int | None,     # link events: source atom id
     "dst":     int | None}     # link events: target atom id

Streamed events additionally carry ``lsn`` and ``txn_id``; those are
positional metadata of the log, not part of the change itself, and
:func:`fold_events` strips them.

The decoder turns one logged OPERATION into one event, reported as the
*state transition at the instant the operation's window governs*: the
before/after images (and the reported valid window) are read back from
the engine at the last instant the valid window covers, as believed
just before and just after the transaction time.  The WAL records an
update as its *changes* only — the temporal store itself is the
before-image archive; CDC needs no extra logging.  Reading the images
back (rather than echoing the logged window) matters once corrections
have fragmented an atom's validity: the logged window then names
several version slices, and the one governing the instant is what DIFF
reads from its time slices — so the two stay byte-identical.  An
operation that does not change the instant's state (an idempotent
re-link, an unlink that removes nothing) decodes to ``None``.  (The
flip side: decoding assumes the history is retained — a vacuum that
discards superseded versions limits how far back a cold subscriber can
decode exact before-images.)

:func:`fold_events` is the consumer-side replay: net the events of a
window ``(t1, t2]`` at one valid instant into the same records
``DIFF <molecule> BETWEEN t1 AND t2`` computes from two time slices.
The differential oracle in the tests holds the two byte-identical.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core.version import OUT, split_ref_key
from repro.errors import UnknownAtomError
from repro.temporal import FOREVER

#: Every event kind, in no particular order (filters validate against it).
EVENT_KINDS = frozenset((
    "atom_created", "attribute_changed", "atom_deleted",
    "link_added", "link_removed",
))

_VALUE_KINDS = ("atom_created", "attribute_changed", "atom_deleted")


def event_record(kind: str, atom_id: int, type_name: Optional[str],
                 tt: int, vt: Tuple[int, int],
                 before: Optional[Dict[str, Any]] = None,
                 after: Optional[Dict[str, Any]] = None,
                 link: Optional[str] = None,
                 src: Optional[int] = None,
                 dst: Optional[int] = None) -> Dict[str, Any]:
    """Build one canonical event dict (every key always present)."""
    return {
        "kind": kind,
        "atom_id": atom_id,
        "type": type_name,
        "tt": tt,
        "vt": [vt[0], vt[1]],
        "before": dict(before) if before is not None else None,
        "after": dict(after) if after is not None else None,
        "link": link,
        "src": src,
        "dst": dst,
    }


def event_sort_key(event: Dict[str, Any]) -> Tuple:
    """Deterministic event ordering used by DIFF rows and the fold."""
    return (event["atom_id"], event["kind"], event["link"] or "",
            event["src"] or -1, event["dst"] or -1, event["tt"])


def _type_name(engine, atom_id: int) -> Optional[str]:
    try:
        return engine.atom_type_name(atom_id)
    except UnknownAtomError:
        return None  # vacuumed or never-applied atom; event stays usable


def _version_at(engine, atom_id: int, probe: int, tt: int):
    """The version valid at *probe* as believed at *tt*, or ``None``
    (unknown, vacuumed, or no state then)."""
    if tt < 0:
        return None
    try:
        return engine.version_at(atom_id, probe, tt)
    except UnknownAtomError:
        return None


def _has_out_ref(version, link: str, dst: int) -> bool:
    if version is None:
        return False
    for key, partners in version.refs.items():
        name, direction = split_ref_key(key)
        if name == link and direction == OUT and dst in partners:
            return True
    return False


def decode_operation(engine, payload: Dict[str, Any]
                     ) -> Optional[Dict[str, Any]]:
    """Decode one logged OPERATION payload into a change event.

    The operation is reported as the state transition it caused at the
    last instant its valid window covers (for the open-ended windows of
    "change it now" operations: the current-state instant): the
    before-image is the version governing that instant as believed just
    before the transaction time, the after-image the one believed just
    after, both read back from the engine.  The event's ``vt`` is the
    after-image's valid window (the record the operation established) —
    which is also what DIFF reports for the same transition.  Returns
    ``None`` when the operation changed nothing at that instant: an
    idempotent re-link, an unlink removing nothing, or an operation on
    a vacuumed atom whose history is gone.
    """
    op = payload.get("op")
    tt = int(payload["tt"])
    if op == "correct":
        window = (int(payload["ws"]), int(payload["we"]))
    elif op in ("insert", "update", "delete", "link", "unlink"):
        window = (int(payload["vf"]), int(payload["vt"]))
    else:
        return None
    probe = window[1] - 1
    if op in ("link", "unlink"):
        src = int(payload["src"])
        dst = int(payload["dst"])
        link = payload["link"]
        before_v = _version_at(engine, src, probe, tt - 1)
        after_v = _version_at(engine, src, probe, tt)
        was = _has_out_ref(before_v, link, dst)
        now = _has_out_ref(after_v, link, dst)
        if was == now:
            # The engine accepts (and logs) a link that already holds
            # or an unlink of a window that removes nothing without
            # changing the version graph: no schema-level change.
            return None
        host = after_v if after_v is not None else before_v
        return event_record(
            "link_added" if now else "link_removed",
            src, _type_name(engine, src), tt,
            (host.vt.start, host.vt.end),
            link=link, src=src, dst=dst)
    atom_id = int(payload["atom_id"])
    before_v = _version_at(engine, atom_id, probe, tt - 1)
    after_v = _version_at(engine, atom_id, probe, tt)
    if before_v is None and after_v is None:
        return None
    type_name = (payload["type"] if op == "insert"
                 else _type_name(engine, atom_id))
    before = dict(before_v.values) if before_v is not None else None
    after = dict(after_v.values) if after_v is not None else None
    if after_v is not None:
        kind = "atom_created" if before_v is None else "attribute_changed"
        vt = (after_v.vt.start, after_v.vt.end)
    else:
        kind = "atom_deleted"
        # The window the deletion removed: its logged start, clipped to
        # the removed record's own start (a correction may have split
        # validity so the governing slice starts inside the window).
        vt = (max(window[0], before_v.vt.start), window[1])
    return event_record(kind, atom_id, type_name, tt, vt,
                        before=before, after=after)


def fold_events(events: Iterable[Dict[str, Any]], t1: int, t2: int,
                at: Optional[int] = None) -> List[Dict[str, Any]]:
    """Net a change stream over ``(t1, t2]`` at one valid instant.

    Keeps only events whose transaction time lies in the window and
    whose valid-time interval covers *at* (default: the current-state
    instant ``FOREVER - 1``), then nets them:

    * per atom, the first effective before-image and the last effective
      after-image determine one value row (created / changed / deleted),
      or none when the values net out;
    * per ``(link, src, dst)`` triple, adds and removes cancel pairwise;
      a surviving net transition reports the last event's times — unless
      the source atom no longer exists at the window end, in which case
      its links are implied by the deletion and reported by no row.

    The result carries the same canonical records, in the same order,
    as ``DIFF <molecule> BETWEEN t1 AND t2`` — restricted to the atoms
    the caller cares about (the fold itself is scope-free; DIFF scopes
    to molecule membership).
    """
    instant = FOREVER - 1 if at is None else at
    # Per-atom value netting state, in first-touch order.
    value_state: Dict[int, Dict[str, Any]] = {}
    # Per-triple link netting: first kind, last event.
    link_state: Dict[Tuple[str, int, int], Dict[str, Any]] = {}
    for event in events:
        if not (t1 < event["tt"] <= t2):
            continue
        vt = event["vt"]
        if not (vt[0] <= instant < vt[1]):
            continue
        kind = event["kind"]
        if kind in _VALUE_KINDS:
            state = value_state.get(event["atom_id"])
            if state is None:
                state = {"initial": event["before"], "last": None,
                         "final": None}
                value_state[event["atom_id"]] = state
            state["final"] = event["after"]
            if event["before"] != event["after"]:
                state["last"] = event
        elif kind in ("link_added", "link_removed"):
            key = (event["link"], event["src"], event["dst"])
            entry = link_state.get(key)
            if entry is None:
                link_state[key] = {"first": kind, "last": event}
            else:
                entry["last"] = event
    rows: List[Dict[str, Any]] = []
    for atom_id, state in value_state.items():
        last = state["last"]
        if last is None:
            continue  # only no-op touches; values never moved
        initial, final = state["initial"], last["after"]
        if initial == final:
            continue  # netted out (includes created-then-deleted)
        if initial is None:
            kind = "atom_created"
        elif final is None:
            kind = "atom_deleted"
        else:
            kind = "attribute_changed"
        rows.append(event_record(kind, atom_id, last["type"], last["tt"],
                                 tuple(last["vt"]),
                                 before=initial, after=final))
    for entry in link_state.values():
        last = entry["last"]
        if entry["first"] != last["kind"]:
            continue  # add/remove pairs cancel
        source = value_state.get(last["atom_id"])
        if source is not None and source["final"] is None:
            # The source atom does not exist at the window end; its
            # links are implied by the deletion, matching DIFF.
            continue
        rows.append(event_record(last["kind"], last["atom_id"],
                                 last["type"], last["tt"],
                                 tuple(last["vt"]), link=last["link"],
                                 src=last["src"], dst=last["dst"]))
    rows.sort(key=event_sort_key)
    return rows

"""Server-side change streaming: the SUBSCRIBE opcode handler.

One :class:`ChangeStreamSource` lives inside a
:class:`~repro.server.server.DatabaseServer`, next to the replication
:class:`~repro.replication.source.ReplicationSource` whose batch /
long-poll / ack plumbing it mirrors.  A request names a subscriber, a
resume LSN, server-side filters, and an optional long-poll window; the
response carries a bounded batch of decoded change events.

Three invariants distinguish a change stream from a raw WAL stream:

* **Committed only** — each batch scans its LSN range for commit state
  (the same pass recovery uses) and emits only OPERATION records of
  committed transactions, up to the last *quiescent* LSN (no
  transaction's records straddle it).  Uncommitted and aborted work is
  never visible to subscribers.
* **Exactly-once per cursor** — ``next_from`` always lands on a
  quiescent boundary, so a resumed subscriber can never observe half a
  transaction or see an operation twice.  A fresh subscriber with no
  resume point attaches at the current quiescent head (it tails new
  changes; it does not replay history unless it asks with
  ``from_lsn=1``).
* **Durable cursors** — every ack is recorded in the WAL's CDC
  subscriber registry (holding retention like a replica) *and*
  persisted in the catalog extras, so a consumer that reconnects after
  a server restart resumes exactly where it acked.  Acks are
  epoch-qualified: a clean shutdown restarts the LSN space (bumping
  ``wal_epoch``), making old LSNs meaningless, so cursors from a prior
  epoch are discarded and such a subscriber re-attaches at the head —
  responses carry ``epoch`` so consumers can detect the reset.

Filters (``types``, ``kinds``, ``roots``) drop events server-side;
filtered events still advance the cursor, so a narrow subscription
stays cheap without pinning the log.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Set

from repro.cdc.events import EVENT_KINDS, decode_operation
from repro.errors import ReplicationError
from repro.replication.source import (
    MAX_BATCH_BYTES,
    MAX_BATCH_RECORDS,
    MAX_STREAM_WAIT_MS,
    DEFAULT_BATCH_RECORDS,
)
from repro.txn.recovery import _scan_commit_state
from repro.txn.wal import LogRecordType

#: Catalog extras key holding persisted per-subscriber acked LSNs.
CDC_EXTRAS_KEY = "cdc_subscribers"


class ChangeStreamSource:
    """Serves decoded change-event batches over ``SUBSCRIBE``."""

    def __init__(self, db: Any) -> None:
        self._db = db
        self._wal = db._wal
        metrics = db.metrics
        self._c_requests = metrics.counter("cdc.stream_requests")
        self._c_waits = metrics.counter("cdc.stream_waits")
        self._c_scanned = metrics.counter("cdc.records_scanned")
        self._c_decoded = metrics.counter("cdc.events_decoded")
        self._c_filtered = metrics.counter("cdc.events_filtered")
        self._g_subscribers = metrics.gauge("cdc.subscribers")
        self._g_max_lag = metrics.gauge("cdc.max_ack_lag")
        # Re-arm retention holds for subscribers that acked before the
        # last shutdown: their cursors are durable, so the log must keep
        # their resume points readable even while they are offline.
        # Entries from a previous WAL epoch are dropped — the clean
        # shutdown that bumped the epoch also reset the LSN space, so
        # those cursors name positions that no longer exist.
        stale = [name for name, entry in self._raw_acks().items()
                 if self._entry_ack(entry) is None]
        for name in stale:
            self._drop_persisted(name)
        for name, acked in self._persisted_acks().items():
            self._wal.subscribe_cdc(name, acked)
        self._refresh_gauges()

    # -- persisted cursors --------------------------------------------------

    def _raw_acks(self) -> Dict[str, Any]:
        extras = self._db._catalog.extras.get(CDC_EXTRAS_KEY)
        return dict(extras) if isinstance(extras, dict) else {}

    def _entry_ack(self, entry: Any) -> Optional[int]:
        """The acked LSN of one ``[epoch, lsn]`` entry, or ``None`` when
        it belongs to another WAL epoch (or predates the format)."""
        if (isinstance(entry, (list, tuple)) and len(entry) == 2
                and int(entry[0]) == self._epoch()):
            return int(entry[1])
        return None

    def _persisted_acks(self) -> Dict[str, int]:
        acks: Dict[str, int] = {}
        for name, entry in self._raw_acks().items():
            acked = self._entry_ack(entry)
            if acked is not None:
                acks[name] = acked
        return acks

    def _persist_ack(self, name: str, acked: int) -> None:
        acks = self._raw_acks()
        current = self._entry_ack(acks.get(name))
        if current is not None and current >= acked:
            return
        acks[name] = [self._epoch(), acked]
        self._db._catalog.extras[CDC_EXTRAS_KEY] = acks
        # Durable at the next checkpoint, exactly like replica_id /
        # wal_epoch; an ack lost to a crash only widens the resume
        # overlap, and quiescent cursors make re-delivery detectable
        # (events carry their LSN).

    def _drop_persisted(self, name: str) -> None:
        acks = self._raw_acks()
        if name in acks:
            del acks[name]
            self._db._catalog.extras[CDC_EXTRAS_KEY] = acks

    # -- request handling ---------------------------------------------------

    def handle(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Answer one SUBSCRIBE request; see ``docs/cdc.md`` for the
        payload shape."""
        self._c_requests.inc()
        try:
            subscriber = str(payload["subscriber"])
        except KeyError:
            raise ReplicationError(
                "SUBSCRIBE requires a subscriber name") from None
        if payload.get("unsubscribe"):
            self._wal.release_cdc(subscriber)
            self._drop_persisted(subscriber)
            self._refresh_gauges()
            return {"released": True, "subscriber": subscriber}
        try:
            raw_from = payload.get("from_lsn")
            from_lsn = None if raw_from is None else int(raw_from)
            max_records = int(payload.get("max_records",
                                          DEFAULT_BATCH_RECORDS))
            wait_ms = int(payload.get("wait_ms", 0))
            ack = payload.get("ack_lsn")
            acked = None if ack is None else int(ack)
        except (TypeError, ValueError) as exc:
            raise ReplicationError(
                f"malformed SUBSCRIBE request: {exc}") from exc
        types, kinds, roots = self._parse_filters(payload)
        max_records = max(1, min(max_records, MAX_BATCH_RECORDS))
        wait_ms = max(0, min(wait_ms, MAX_STREAM_WAIT_MS))

        if acked is not None:
            # Apply the request's ack *before* resolving the resume
            # point: a reconnecting consumer that reports its consumed
            # watermark but no explicit from_lsn must resume after that
            # watermark, not after the last persisted one (which lags
            # by the batch the consumer processed while disconnected).
            self._wal.ack_cdc(subscriber, acked)
            self._persist_ack(subscriber, acked)
        if from_lsn is None:
            persisted = self._persisted_acks().get(subscriber)
            if persisted is not None:
                from_lsn = int(persisted) + 1
            else:
                # Fresh subscriber: attach at the current quiescent
                # head so the first batch holds only *new* changes and
                # the cursor starts on a transaction boundary.
                head = self._wal.shippable_lsn
                _, quiescent, _ = _scan_commit_state(self._wal, 0, head)
                from_lsn = quiescent + 1
        if from_lsn < 1:
            raise ReplicationError(
                f"from_lsn must be >= 1, got {from_lsn}")
        if acked is None:
            acked = from_lsn - 1
            self._wal.ack_cdc(subscriber, acked)
            self._persist_ack(subscriber, acked)

        head = self._wal.shippable_lsn
        if head < from_lsn and wait_ms:
            self._c_waits.inc()
            head = self._wal.wait_for_shippable(from_lsn, wait_ms / 1000.0)

        events: List[Dict[str, Any]] = []
        next_from = from_lsn
        bound = from_lsn - 1
        if head >= from_lsn:
            records = list(self._wal.read_records_from(from_lsn,
                                                       upto_lsn=head))
            self._c_scanned.inc(len(records))
            committed, bound, _ = _scan_commit_state(
                self._wal, from_lsn - 1, head, records)
            budget = MAX_BATCH_BYTES
            cursor = from_lsn - 1
            with self._db._read_view():
                for record in records:
                    if record.lsn > bound:
                        break
                    cursor = record.lsn
                    if (record.type is not LogRecordType.OPERATION
                            or record.txn_id not in committed):
                        continue
                    event = decode_operation(self._db.engine,
                                             record.payload)
                    if event is None:
                        continue
                    self._c_decoded.inc()
                    if not self._admit(event, types, kinds, roots):
                        self._c_filtered.inc()
                        continue
                    event["lsn"] = record.lsn
                    event["txn_id"] = record.txn_id
                    events.append(event)
                    budget -= len(json.dumps(event,
                                             separators=(",", ":"))) + 32
                    if len(events) >= max_records or budget <= 0:
                        break
            next_from = cursor + 1
        self._refresh_gauges()
        return {
            "events": events,
            "head": head,
            "bound": bound,
            "next_from": next_from,
            "caught_up": next_from > bound,
            "epoch": self._epoch(),
        }

    @staticmethod
    def _parse_filters(payload: Dict[str, Any]
                       ) -> tuple[Optional[Set[str]], Optional[Set[str]],
                                  Optional[Set[int]]]:
        types = payload.get("types")
        kinds = payload.get("kinds")
        roots = payload.get("roots")
        if kinds is not None:
            kinds = {str(kind) for kind in kinds}
            unknown = kinds - EVENT_KINDS
            if unknown:
                raise ReplicationError(
                    f"unknown event kinds: {', '.join(sorted(unknown))}")
        return (
            {str(name) for name in types} if types is not None else None,
            kinds,
            {int(root) for root in roots} if roots is not None else None,
        )

    @staticmethod
    def _admit(event: Dict[str, Any], types: Optional[Set[str]],
               kinds: Optional[Set[str]],
               roots: Optional[Set[int]]) -> bool:
        if kinds is not None and event["kind"] not in kinds:
            return False
        if types is not None and event["type"] not in types:
            return False
        if roots is not None:
            touched = {event["atom_id"], event["src"], event["dst"]}
            if not (roots & touched):
                return False
        return True

    def _epoch(self) -> int:
        return int(self._db._catalog.extras.get("wal_epoch", 0))

    def _refresh_gauges(self) -> None:
        subscribers = self._wal.cdc_subscribers()
        head = self._wal.shippable_lsn
        self._g_subscribers.set(len(subscribers))
        self._g_max_lag.set(max(
            (head - int(entry["acked"]) for entry in subscribers.values()),
            default=0))

    def status(self) -> Dict[str, Any]:
        """CDC block for STATS/state_snapshot: per-subscriber cursor,
        ack lag in records, and the log bytes the cursor pins."""
        head = self._wal.shippable_lsn
        subscribers = {}
        for name, entry in self._wal.cdc_subscribers().items():
            acked = int(entry["acked"])
            subscribers[name] = {
                "acked": acked,
                "lag": max(0, head - acked),
                "held_bytes": self._wal.held_bytes(acked),
                "last_seen": entry["last_seen"],
            }
        return {
            "head": head,
            "epoch": self._epoch(),
            "subscribers": subscribers,
            "events_decoded": int(self._c_decoded.value),
        }

"""The temporal complex-object data model (the paper's contribution).

This package implements the temporal MAD model on top of the storage,
access, and transaction substrates:

* :mod:`~repro.core.datatypes` / :mod:`~repro.core.schema` — atom types
  with typed attributes and symmetric link types.
* :mod:`~repro.core.version` / :mod:`~repro.core.history` — bitemporal
  version records and the pure update/query algebra over histories.
* :mod:`~repro.core.molecule` — molecule types (rooted connected DAGs over
  atom types) and molecule instances.
* :mod:`~repro.core.builder` — time-slice and history molecule
  construction against a version store.
* :mod:`~repro.core.engine` — the logical operation layer binding the
  version store, indexes, and codec together (with per-operation undo).
* :mod:`~repro.core.database` — the public facade:
  :class:`~repro.core.database.TemporalDatabase`.
"""

from repro.core.database import DatabaseConfig, TemporalDatabase
from repro.core.datatypes import DataType
from repro.core.molecule import Molecule, MoleculeEdge, MoleculeType
from repro.core.schema import AtomType, Attribute, Cardinality, LinkType, Schema
from repro.core.version import Version

__all__ = [
    "DatabaseConfig",
    "TemporalDatabase",
    "DataType",
    "Molecule",
    "MoleculeEdge",
    "MoleculeType",
    "AtomType",
    "Attribute",
    "Cardinality",
    "LinkType",
    "Schema",
    "Version",
]

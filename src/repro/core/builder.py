"""Molecule construction: deriving complex objects from atom versions.

The builder is the temporal heart of query processing.  Given a molecule
type and a *time-slice* instant, it fetches the root atom's version valid
at that instant, then follows reference sets edge by edge, fetching each
partner's version at the same instant; atoms with no valid version at the
instant silently drop out (a reference may point at an atom born later or
already ended — the reference is part of the parent's state, the partner's
existence is its own).

For interval (``VALID DURING``) queries the builder runs an event sweep:
build the slice at the window start, find the earliest valid-time boundary
of any involved or referenced atom after the current instant, and rebuild
there; adjacent slices with identical composition are coalesced.  The
result is the molecule's *history*: a list of (interval, molecule) states.

The builder reads through the :class:`VersionReader` protocol so the same
construction logic serves the on-disk engine and the in-memory oracle.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Protocol, Set, Tuple

from repro.core import history as hist
from repro.core.molecule import Molecule, MoleculeAtom, MoleculeType
from repro.core.version import Version
from repro.errors import EvaluationError
from repro.obs import MetricsRegistry
from repro.temporal import FOREVER, Interval, Timestamp


class VersionReader(Protocol):
    """What the builder needs from an engine: per-atom version access."""

    def atom_type_name(self, atom_id: int) -> str:
        """The atom's type name (atoms never change type)."""

    def version_at(self, atom_id: int, at: Timestamp,
                   tt: Optional[Timestamp] = None) -> Optional[Version]:
        """The version valid at *at* as believed at *tt* (None = now)."""

    def all_versions(self, atom_id: int) -> List[Version]:
        """The full recorded history of the atom, in sequence order."""


class MoleculeBuilder:
    """Builds molecule instances from a version reader."""

    def __init__(self, reader: VersionReader,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self._reader = reader
        if metrics is None:
            metrics = getattr(reader, "metrics", None) or MetricsRegistry()
        self.metrics = metrics
        self._c_molecules = metrics.counter("builder.molecules")
        self._c_atoms = metrics.counter("builder.atoms_expanded")
        self._c_slices = metrics.counter("builder.slices")
        self._c_boundary_scans = metrics.counter("builder.boundary_scans")

    # -- time-slice construction ---------------------------------------------

    def build_at(self, root_id: int, mtype: MoleculeType, at: Timestamp,
                 tt: Optional[Timestamp] = None) -> Optional[Molecule]:
        """The molecule rooted at *root_id*, valid at instant *at*.

        Returns ``None`` when the root atom itself has no valid version at
        the instant.
        """
        molecule, _ = self._build_collect(root_id, mtype, at, tt)
        return molecule

    def build_many(self, root_ids: Iterable[int], mtype: MoleculeType,
                   at: Timestamp, tt: Optional[Timestamp] = None
                   ) -> List[Molecule]:
        """Molecules for every root id that is valid at the instant."""
        molecules = []
        for root_id in root_ids:
            molecule = self.build_at(root_id, mtype, at, tt)
            if molecule is not None:
                molecules.append(molecule)
        return molecules

    def _build_collect(self, root_id: int, mtype: MoleculeType,
                       at: Timestamp, tt: Optional[Timestamp]
                       ) -> Tuple[Optional[Molecule], Set[int]]:
        """Build a slice and collect every atom id consulted (including
        referenced atoms that were invalid at the instant)."""
        self._c_slices.inc()
        consulted: Set[int] = {root_id}
        root_version = self._reader.version_at(root_id, at, tt)
        if root_version is None:
            return None, consulted
        budgets = {edge: edge.max_depth for edge in mtype.edges}
        root_atom = self._expand(root_id, mtype.root, root_version, mtype,
                                 at, tt, consulted, depth=0,
                                 budgets=budgets, path=frozenset())
        self._c_molecules.inc()
        return Molecule(mtype, root_atom), consulted

    def _expand(self, atom_id: int, type_name: str, version: Version,
                mtype: MoleculeType, at: Timestamp,
                tt: Optional[Timestamp], consulted: Set[int],
                depth: int, budgets: dict,
                path: frozenset) -> MoleculeAtom:
        if depth > mtype.max_path_length():
            raise EvaluationError(
                "molecule expansion exceeded its type's depth bound "
                "(cyclic molecule type?)")
        self._c_atoms.inc()
        path = path | {atom_id}
        atom = MoleculeAtom(atom_id, type_name, version)
        for edge in mtype.edges_from(type_name):
            children: List[MoleculeAtom] = []
            remaining = budgets.get(edge, edge.max_depth)
            if remaining <= 0:
                atom.children[edge] = children
                continue
            partner_ids = version.refs.get(edge.parent_ref_key, frozenset())
            for child_id in sorted(partner_ids):
                consulted.add(child_id)
                if child_id in path:
                    continue  # a data cycle: never revisit along one path
                child_version = self._reader.version_at(child_id, at, tt)
                if child_version is None:
                    continue  # referenced but not valid at this instant
                child_budgets = dict(budgets)
                child_budgets[edge] = remaining - 1
                children.append(self._expand(child_id, edge.child,
                                             child_version, mtype, at, tt,
                                             consulted, depth + 1,
                                             child_budgets, path))
            atom.children[edge] = children
        return atom

    # -- interval construction -----------------------------------------------------

    def build_history(self, root_id: int, mtype: MoleculeType,
                      window: Interval,
                      tt: Optional[Timestamp] = None
                      ) -> List[Tuple[Interval, Molecule]]:
        """The molecule's states over *window*, coalesced.

        Each returned interval is a maximal span inside the window during
        which the molecule's composition (atoms, values, references) is
        constant; spans where the root is not valid produce no entry.
        """
        states: List[Tuple[Interval, Molecule]] = []
        at = window.start
        while at < window.end:
            molecule, consulted = self._build_collect(root_id, mtype, at, tt)
            next_at = self._next_boundary(consulted, at, tt)
            span_end = min(next_at, window.end)
            if molecule is not None:
                span = Interval(at, span_end)
                if (states
                        and states[-1][0].meets(span)
                        and states[-1][1].same_composition_as(molecule)):
                    states[-1] = (Interval(states[-1][0].start, span.end),
                                  states[-1][1])
                else:
                    states.append((span, molecule))
            if next_at >= window.end:
                break
            at = next_at
        return states

    def _next_boundary(self, atom_ids: Set[int], after: Timestamp,
                       tt: Optional[Timestamp]) -> Timestamp:
        """Earliest valid-time boundary after *after* among the atoms."""
        self._c_boundary_scans.inc()
        boundary = FOREVER
        for atom_id in atom_ids:
            for _, version in hist.live_versions(
                    self._reader.all_versions(atom_id), tt):
                for point in (version.vt.start, version.vt.end):
                    if after < point < boundary:
                        boundary = point
        return boundary

"""Molecule construction: deriving complex objects from atom versions.

The builder is the temporal heart of query processing.  Given a molecule
type and a *time-slice* instant, it fetches the root atom's version valid
at that instant, then follows reference sets edge by edge, fetching each
partner's version at the same instant; atoms with no valid version at the
instant silently drop out (a reference may point at an atom born later or
already ended — the reference is part of the parent's state, the partner's
existence is its own).

Expansion is *level-at-a-time*: instead of probing the reader once per
child, each BFS depth level gathers every child id discovered across the
whole frontier (all roots of a batch included) and issues one set-oriented
``version_at_many`` call, which the storage layer answers with grouped
page accesses.  Readers that lack the batch API (simple oracles, test
doubles) are served by a per-atom fallback with identical semantics.

For interval (``VALID DURING``) queries the builder runs an event sweep:
build the slice at the window start, find the earliest valid-time boundary
of any involved or referenced atom after the current instant, and rebuild
there; adjacent slices with identical composition are coalesced.  A
per-call memo keeps each consulted atom's boundary points so the sweep
reads and decodes every history once, not once per slice.

The builder reads through the :class:`VersionReader` protocol so the same
construction logic serves the on-disk engine and the in-memory oracle.
"""

from __future__ import annotations

from bisect import bisect_right
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Iterable, List, Optional, Protocol, Set, Tuple

from repro.core import history as hist
from repro.core.molecule import Molecule, MoleculeAtom, MoleculeType
from repro.core.version import Version
from repro.errors import EvaluationError
from repro.obs import MetricsRegistry
from repro.temporal import FOREVER, Interval, Timestamp


class VersionReader(Protocol):
    """What the builder needs from an engine: per-atom version access.

    Readers *may* additionally provide the set-oriented
    ``version_at_many(atom_ids, at, tt)`` and ``all_versions_many(atom_ids)``
    of :class:`~repro.core.engine.StorageEngine`; the builder detects them
    and batches every expansion level through them when present.
    """

    def atom_type_name(self, atom_id: int) -> str:
        """The atom's type name (atoms never change type)."""

    def version_at(self, atom_id: int, at: Timestamp,
                   tt: Optional[Timestamp] = None) -> Optional[Version]:
        """The version valid at *at* as believed at *tt* (None = now)."""

    def all_versions(self, atom_id: int) -> List[Version]:
        """The full recorded history of the atom, in sequence order."""


# One pending child expansion: the parent's children list to append to,
# the edge taken, the child id, the edge budget left *at the parent*, the
# parent's depth, the parent's budget map, the path down to (and
# including) the parent, and the index of the tree being grown.
_Request = Tuple[List[MoleculeAtom], "object", int, int, int, dict,
                 frozenset, int]


class MoleculeBuilder:
    """Builds molecule instances from a version reader."""

    def __init__(self, reader: VersionReader,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self._reader = reader
        if metrics is None:
            metrics = getattr(reader, "metrics", None) or MetricsRegistry()
        self.metrics = metrics
        self._c_molecules = metrics.counter("builder.molecules")
        self._c_atoms = metrics.counter("builder.atoms_expanded")
        self._c_slices = metrics.counter("builder.slices")
        self._c_boundary_scans = metrics.counter("builder.boundary_scans")
        self._c_parallel = metrics.counter("builder.parallel_builds")
        self._h_batch = metrics.histogram("builder.batch_size")
        #: History sweeps memoize per-atom boundary points by default;
        #: benchmarks flip this off to measure the per-slice rescan cost.
        self.history_memo_enabled = True

    # -- set-oriented fetch ----------------------------------------------------

    def _fetch_many(self, atom_ids: Iterable[int], at: Timestamp,
                    tt: Optional[Timestamp],
                    pred=None, projection=None
                    ) -> Dict[int, Optional[Version]]:
        """One version fetch for a whole frontier level.

        Uses the reader's batch API when it has one; otherwise falls back
        to per-atom ``version_at`` calls with identical results.  The
        pushdown arguments are forwarded only to readers that advertise
        ``supports_pushdown`` (the real engine); protocol-only readers
        keep seeing the original call shape.
        """
        ids = list(dict.fromkeys(atom_ids))
        if not ids:
            return {}
        self._h_batch.observe(len(ids))
        fetch = getattr(self._reader, "version_at_many", None)
        if fetch is not None:
            if ((pred is not None or projection is not None)
                    and getattr(self._reader, "supports_pushdown", False)):
                return fetch(ids, at, tt, pred=pred, projection=projection)
            return fetch(ids, at, tt)
        return {atom_id: self._reader.version_at(atom_id, at, tt)
                for atom_id in ids}

    # -- time-slice construction ---------------------------------------------

    def build_at(self, root_id: int, mtype: MoleculeType, at: Timestamp,
                 tt: Optional[Timestamp] = None) -> Optional[Molecule]:
        """The molecule rooted at *root_id*, valid at instant *at*.

        Returns ``None`` when the root atom itself has no valid version at
        the instant.
        """
        molecule, _ = self._build_collect(root_id, mtype, at, tt)
        return molecule

    def build_many(self, root_ids: Iterable[int], mtype: MoleculeType,
                   at: Timestamp, tt: Optional[Timestamp] = None,
                   parallelism: int = 1,
                   root_pred=None, projection=None) -> List[Molecule]:
        """Molecules for every root id that is valid at the instant.

        Duplicate root ids are built once (first occurrence wins the
        position).  All roots are grown level-at-a-time sharing one
        version batch per level.  With ``parallelism > 1`` the roots are
        fanned across a thread pool; results are returned in input order
        regardless of scheduling, so every mode yields the identical
        list.  The caller must hold the facade's read latch (or otherwise
        guarantee no concurrent mutation) for the duration of the call.

        *root_pred* (a compiled payload predicate) applies to the root
        fetch only — a root whose version at the instant fails it builds
        no molecule, exactly as the evaluator's WHERE would have dropped
        it.  *projection* applies to every level: fetched versions carry
        only the attributes the query reads.
        """
        ids = list(dict.fromkeys(root_ids))
        if not ids:
            return []
        if parallelism <= 1 or len(ids) == 1:
            built = self._build_forest(ids, mtype, at, tt,
                                       root_pred, projection)
        else:
            self._c_parallel.inc()
            workers = min(parallelism, len(ids))
            # Round-robin striping balances skewed molecule sizes better
            # than contiguous chunks; order is restored below.
            chunks = [ids[offset::workers] for offset in range(workers)]
            with ThreadPoolExecutor(max_workers=workers) as pool:
                futures = [pool.submit(self._build_forest, chunk, mtype,
                                       at, tt, root_pred, projection)
                           for chunk in chunks]
                by_root: Dict[int, Optional[Molecule]] = {}
                for chunk, future in zip(chunks, futures):
                    for root_id, (molecule, _) in zip(chunk, future.result()):
                        by_root[root_id] = molecule
            built = [(by_root[root_id], set()) for root_id in ids]
        return [molecule for molecule, _ in built if molecule is not None]

    def _build_collect(self, root_id: int, mtype: MoleculeType,
                       at: Timestamp, tt: Optional[Timestamp]
                       ) -> Tuple[Optional[Molecule], Set[int]]:
        """Build a slice and collect every atom id consulted (including
        referenced atoms that were invalid at the instant)."""
        return self._build_forest([root_id], mtype, at, tt)[0]

    def _build_forest(self, root_ids: List[int], mtype: MoleculeType,
                      at: Timestamp, tt: Optional[Timestamp],
                      root_pred=None, projection=None
                      ) -> List[Tuple[Optional[Molecule], Set[int]]]:
        """Level-at-a-time construction of one molecule per root id.

        Every depth level across *all* trees is resolved by a single
        batched fetch.  Returns ``(molecule or None, consulted ids)`` per
        root, in input order.
        """
        self._c_slices.inc(len(root_ids))
        consulted: List[Set[int]] = [{root_id} for root_id in root_ids]
        roots: List[Optional[MoleculeAtom]] = [None] * len(root_ids)
        root_versions = self._fetch_many(root_ids, at, tt,
                                         pred=root_pred,
                                         projection=projection)
        depth_bound = mtype.max_path_length()
        # Frontier of materialized-but-unexpanded atoms.
        frontier: List[Tuple[int, MoleculeAtom, int, dict, frozenset]] = []
        for index, root_id in enumerate(root_ids):
            version = root_versions.get(root_id)
            if version is None:
                continue
            roots[index] = MoleculeAtom(root_id, mtype.root, version)
            budgets = {edge: edge.max_depth for edge in mtype.edges}
            frontier.append((index, roots[index], 0, budgets, frozenset()))
        while frontier:
            requests: List[_Request] = []
            for index, atom, depth, budgets, path in frontier:
                if depth > depth_bound:
                    raise EvaluationError(
                        "molecule expansion exceeded its type's depth bound "
                        "(cyclic molecule type?)")
                self._c_atoms.inc()
                path = path | {atom.atom_id}
                for edge in mtype.edges_from(atom.type_name):
                    children: List[MoleculeAtom] = []
                    atom.children[edge] = children
                    remaining = budgets.get(edge, edge.max_depth)
                    if remaining <= 0:
                        continue
                    partner_ids = atom.version.refs.get(
                        edge.parent_ref_key, frozenset())
                    for child_id in sorted(partner_ids):
                        consulted[index].add(child_id)
                        if child_id in path:
                            continue  # a data cycle: never revisit on a path
                        requests.append((children, edge, child_id, remaining,
                                         depth, budgets, path, index))
            if not requests:
                break
            versions = self._fetch_many(
                (request[2] for request in requests), at, tt,
                projection=projection)
            frontier = []
            for (children, edge, child_id, remaining, depth, budgets,
                 path, index) in requests:
                version = versions.get(child_id)
                if version is None:
                    continue  # referenced but not valid at this instant
                child_budgets = dict(budgets)
                child_budgets[edge] = remaining - 1
                child = MoleculeAtom(child_id, edge.child, version)
                children.append(child)
                frontier.append((index, child, depth + 1, child_budgets,
                                 path))
        results: List[Tuple[Optional[Molecule], Set[int]]] = []
        for index, root_atom in enumerate(roots):
            if root_atom is None:
                results.append((None, consulted[index]))
            else:
                self._c_molecules.inc()
                results.append((Molecule(mtype, root_atom), consulted[index]))
        return results

    # -- interval construction -----------------------------------------------------

    def build_history(self, root_id: int, mtype: MoleculeType,
                      window: Interval,
                      tt: Optional[Timestamp] = None
                      ) -> List[Tuple[Interval, Molecule]]:
        """The molecule's states over *window*, coalesced.

        Each returned interval is a maximal span inside the window during
        which the molecule's composition (atoms, values, references) is
        constant; spans where the root is not valid produce no entry.
        """
        states: List[Tuple[Interval, Molecule]] = []
        at = window.start
        memo: Optional[Dict[int, List[Timestamp]]] = (
            {} if self.history_memo_enabled else None)
        while at < window.end:
            molecule, consulted = self._build_collect(root_id, mtype, at, tt)
            next_at = self._next_boundary(consulted, at, tt, memo)
            span_end = min(next_at, window.end)
            if molecule is not None:
                span = Interval(at, span_end)
                if (states
                        and states[-1][0].meets(span)
                        and states[-1][1].same_composition_as(molecule)):
                    states[-1] = (Interval(states[-1][0].start, span.end),
                                  states[-1][1])
                else:
                    states.append((span, molecule))
            if next_at >= window.end:
                break
            at = next_at
        return states

    def _boundary_points(self, versions: List[Version],
                         tt: Optional[Timestamp]) -> List[Timestamp]:
        """Sorted distinct valid-time boundaries of the live versions."""
        points: Set[Timestamp] = set()
        for _, version in hist.live_versions(versions, tt):
            points.add(version.vt.start)
            points.add(version.vt.end)
        return sorted(points)

    def _next_boundary(self, atom_ids: Set[int], after: Timestamp,
                       tt: Optional[Timestamp],
                       memo: Optional[Dict[int, List[Timestamp]]] = None
                       ) -> Timestamp:
        """Earliest valid-time boundary after *after* among the atoms.

        With a *memo* (one dict per ``build_history`` call), each atom's
        history is read and decoded once for the whole sweep — missing
        atoms are filled through one batched ``all_versions_many`` when
        the reader offers it.
        """
        self._c_boundary_scans.inc()
        if memo is not None:
            missing = [atom_id for atom_id in atom_ids
                       if atom_id not in memo]
            if missing:
                batch = getattr(self._reader, "all_versions_many", None)
                histories = batch(missing) if batch is not None else {}
                for atom_id in missing:
                    versions = histories.get(atom_id)
                    if versions is None:
                        # Per-atom read: raises UnknownAtomError for
                        # vanished atoms exactly like the unmemoized path.
                        versions = self._reader.all_versions(atom_id)
                    memo[atom_id] = self._boundary_points(versions, tt)
        boundary = FOREVER
        for atom_id in atom_ids:
            if memo is not None:
                points = memo[atom_id]
            else:
                points = self._boundary_points(
                    self._reader.all_versions(atom_id), tt)
            position = bisect_right(points, after)
            if position < len(points) and points[position] < boundary:
                boundary = points[position]
        return boundary

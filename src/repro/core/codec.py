"""Version codec: mapping :class:`Version` objects onto store payloads.

The version store keeps the valid-time envelope itself (it needs it for
time-slice reads); everything else — transaction time, attribute values,
reference sets — lives in the opaque payload this codec produces.  One row
format exists per atom type: the transaction-time pair, then the declared
attributes, then one integer-list field per reference-set key the type can
carry.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.schema import AtomType, Schema
from repro.core.version import IN, OUT, Version, ref_key
from repro.errors import SerializationError
from repro.storage.serialization import (
    FieldSpec,
    FieldType,
    decode_row_exact,
    decode_row_partial,
    encode_row,
)
from repro.storage.strategies import StoredVersion
from repro.temporal import Interval

_TT_START = "__tt_start"
_TT_END = "__tt_end"


class VersionCodec:
    """Per-schema encoder/decoder between versions and store payloads."""

    def __init__(self, schema: Schema) -> None:
        self._schema = schema
        self._formats: Dict[str, List[FieldSpec]] = {}
        for atom_type in schema.atom_types:
            self._formats[atom_type.name] = self._build_format(atom_type)
        # (type, attrs, need_refs, with_tt) -> (fields, flags, stop index);
        # built lazily, read-only after, so plain dict ops suffice under
        # the facade's read latch.
        self._partial_plans: Dict[Tuple, Tuple[List[FieldSpec],
                                               Tuple[bool, ...], int]] = {}

    def _build_format(self, atom_type: AtomType) -> List[FieldSpec]:
        fields = [FieldSpec(_TT_START, FieldType.TIME),
                  FieldSpec(_TT_END, FieldType.TIME)]
        fields.extend(FieldSpec(attr.name, attr.data_type.field_type)
                      for attr in atom_type.attributes)
        for link in self._schema.links_touching(atom_type.name):
            if link.source == atom_type.name:
                fields.append(FieldSpec(ref_key(link.name, OUT),
                                        FieldType.INT_LIST))
            if link.target == atom_type.name:
                fields.append(FieldSpec(ref_key(link.name, IN),
                                        FieldType.INT_LIST))
        return fields

    def ref_keys(self, type_name: str) -> List[str]:
        """The reference-set keys an atom of *type_name* can carry."""
        return [spec.name for spec in self._formats[type_name]
                if spec.type is FieldType.INT_LIST]

    # -- encoding -------------------------------------------------------------

    def encode(self, type_name: str, version: Version) -> StoredVersion:
        """Serialize a version for the store."""
        try:
            fields = self._formats[type_name]
        except KeyError:
            raise SerializationError(
                f"no row format for atom type {type_name!r}") from None
        row: Dict[str, object] = {_TT_START: version.tt.start,
                                  _TT_END: version.tt.end}
        row.update(version.values)
        for key in self.ref_keys(type_name):
            targets = version.refs.get(key)
            if targets:
                row[key] = sorted(targets)
        payload = encode_row(fields, row)
        return StoredVersion(version.vt.start, version.vt.end,
                             version.live, payload)

    def decode(self, type_name: str, stored: StoredVersion) -> Version:
        """Reconstruct a version from its envelope and payload."""
        try:
            fields = self._formats[type_name]
        except KeyError:
            raise SerializationError(
                f"no row format for atom type {type_name!r}") from None
        row = decode_row_exact(fields, stored.payload)
        tt = Interval(row.pop(_TT_START), row.pop(_TT_END))
        refs = {}
        for key in self.ref_keys(type_name):
            targets = row.pop(key, None)
            if targets:
                refs[key] = frozenset(targets)
        return Version(Interval(stored.vt_start, stored.vt_end), tt,
                       row, refs)

    # -- partial decoding (predicate/projection pushdown) --------------------

    def _partial_plan(self, type_name: str, attrs: Tuple[str, ...],
                      need_refs: bool, with_tt: bool
                      ) -> Tuple[List[FieldSpec], Tuple[bool, ...], int]:
        key = (type_name, attrs, need_refs, with_tt)
        plan = self._partial_plans.get(key)
        if plan is not None:
            return plan
        try:
            fields = self._formats[type_name]
        except KeyError:
            raise SerializationError(
                f"no row format for atom type {type_name!r}") from None
        wanted = set(attrs)
        if with_tt:
            wanted.add(_TT_START)
            wanted.add(_TT_END)
        flags = tuple(
            spec.name in wanted
            or (need_refs and spec.type is FieldType.INT_LIST)
            for spec in fields)
        stop = -1
        for index in range(len(flags) - 1, -1, -1):
            if flags[index]:
                stop = index
                break
        plan = (fields, flags, stop)
        self._partial_plans[key] = plan
        return plan

    def peek(self, type_name: str, payload: bytes,
             attrs: Tuple[str, ...], offset: int = 0) -> Dict[str, object]:
        """Decode just *attrs* out of a raw payload — no Version built.

        The cheap probe under pushdown predicates: non-wanted fields
        are jumped over via their fixed widths or length prefixes, and
        nothing past the last wanted field is touched at all.
        """
        fields, flags, stop = self._partial_plan(type_name, attrs,
                                                 False, False)
        return decode_row_partial(fields, payload, offset, flags, stop)

    def decode_partial(self, type_name: str, stored: StoredVersion,
                       attrs: Tuple[str, ...], need_refs: bool) -> Version:
        """Reconstruct a *projected* version.

        Only *attrs* (plus the transaction-time pair, plus the
        reference sets when *need_refs* — the molecule builder walks
        them) are decoded; every other field is skipped.  Attributes
        outside *attrs* are simply absent from ``values``.
        """
        fields, flags, stop = self._partial_plan(type_name, attrs,
                                                 need_refs, True)
        row = decode_row_partial(fields, stored.payload, 0, flags, stop)
        tt = Interval(row.pop(_TT_START), row.pop(_TT_END))
        refs = {}
        if need_refs:
            for key in self.ref_keys(type_name):
                targets = row.pop(key, None)
                if targets:
                    refs[key] = frozenset(targets)
        return Version(Interval(stored.vt_start, stored.vt_end), tt,
                       row, refs)

"""The public facade: :class:`TemporalDatabase`.

A database lives in one directory::

    <path>/pages.db        the page file
    <path>/catalog.json    the persistent catalog (schema, segments, ...)
    <path>/wal.log         the write-ahead log
    <path>/*.ckpt          checkpoint copies of page file and catalog

Typical use::

    schema = Schema(...)
    db = TemporalDatabase.create("/tmp/cad", schema,
                                 DatabaseConfig(strategy=VersionStrategy.SEPARATED))
    with db.transaction() as txn:
        part = txn.insert("Part", {"name": "wheel"}, valid_from=0)
        hub = txn.insert("Component", {"weight": 2.5}, valid_from=0)
        txn.link("contains", part, hub, valid_from=0)
    result = db.query("SELECT ALL FROM Part.contains.Component VALID AT 5")
    db.close()

Durability discipline: operations are logged before being applied
(write-ahead), and **by default the log is fsynced before** ``commit()``
**returns** — concurrent commits share one fsync through the WAL's
group commit, so the cost is amortized across committers.  Setting
``DatabaseConfig(durability="none")`` opts out for benchmarks and bulk
loads: commits are then acknowledged without even flushing the log, and
a crash may lose them.  Checkpoints snapshot the page file and catalog
as one atomic manifest generation; after a crash,
:meth:`TemporalDatabase.open` restores the last checkpoint and replays
committed operations — see :mod:`repro.txn.recovery` and
``docs/durability.md``.

Concurrency discipline: the facade holds a shared-read /
exclusive-write latch (:class:`repro.txn.locks.ReadWriteLock`) around
the in-memory engine.  Any number of threads may run time-slice,
history, and MQL queries in parallel; each mutation, undo, checkpoint,
and DDL call briefly takes the exclusive side.  Transaction-level
conflicts are still ordered by atom-granular two-phase locking.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.access.indexes import IndexManager
from repro.core.builder import MoleculeBuilder
from repro.core.engine import DEFAULT_DECODE_CACHE_BYTES, StorageEngine
from repro.core.molecule import Molecule, MoleculeType
from repro.core.schema import Schema
from repro.core.version import Version
from repro.errors import CatalogError, StorageError, TransactionStateError
from repro.obs import MetricsRegistry, Tracer
from repro.storage.buffer import BufferManager, ReplacementPolicy
from repro.storage.catalog import Catalog
from repro.storage.constants import DEFAULT_PAGE_SIZE
from repro.storage.disk import DiskManager
from repro.storage.strategies import (
    StorageStats,
    VersionStrategy,
    open_version_store,
)
from repro.temporal import FOREVER, Interval, Timestamp, TransactionClock
from repro.txn.locks import LockManager, LockMode, ReadWriteLock
from repro.txn.manager import Transaction, TransactionManager
from repro.txn.recovery import (
    publish_checkpoint,
    replay_operations,
    restore_checkpoint,
)
from repro.txn.wal import WriteAheadLog

_PAGES_FILE = "pages.db"
_CATALOG_FILE = "catalog.json"
_WAL_FILE = "wal.log"


#: Valid values of :attr:`DatabaseConfig.durability`.
DURABILITY_MODES = ("sync", "none")


@dataclass
class DatabaseConfig:
    """Tunable knobs of a database instance.

    ``strategy``, ``page_size`` are fixed at creation; the others may
    differ between opens.

    ``durability`` selects the commit contract:

    * ``"sync"`` (default) — ``commit()`` returns only after its COMMIT
      record is fsynced; concurrent commits share one fsync via group
      commit (disable the sharing with ``group_commit=False`` to get a
      per-commit fsync).
    * ``"none"`` — commits are acknowledged without forcing (or even
      flushing) the log; a crash may silently lose them.  Benchmarks
      and recoverable bulk loads only.

    ``sync_commits`` is the deprecated boolean spelling of the same
    knob; when given it overrides ``durability``.
    """

    strategy: VersionStrategy = VersionStrategy.SEPARATED
    page_size: int = DEFAULT_PAGE_SIZE
    buffer_pages: int = 256
    replacement: ReplacementPolicy = ReplacementPolicy.LRU
    durability: str = "sync"
    group_commit: bool = True
    lock_timeout: float = 10.0
    decode_cache_bytes: int = DEFAULT_DECODE_CACHE_BYTES
    sync_commits: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.sync_commits is not None:
            self.durability = "sync" if self.sync_commits else "none"
        if self.durability not in DURABILITY_MODES:
            raise ValueError(
                f"durability must be one of {DURABILITY_MODES}, "
                f"got {self.durability!r}")

    @property
    def fsync_on_commit(self) -> bool:
        return self.durability == "sync"


class TransactionContext:
    """User-facing transaction: temporal DML plus reads.

    Mutations acquire exclusive atom locks (strict two-phase), log the
    operation, then apply it; :meth:`commit` forces the log.  Use as a
    context manager — exceptions abort, normal exit commits.
    """

    def __init__(self, db: "TemporalDatabase", txn: Transaction) -> None:
        self._db = db
        self._txn = txn

    @property
    def txn_id(self) -> int:
        return self._txn.txn_id

    @property
    def transaction_time(self) -> Timestamp:
        return self._txn.tt

    # -- mutations -----------------------------------------------------------

    def insert(self, type_name: str, values: Dict[str, Any],
               valid_from: Timestamp, valid_to: Timestamp = FOREVER,
               atom_id: Optional[int] = None) -> int:
        """Create a new atom (or assert new validity for an existing one).

        Passing an existing ``atom_id`` re-opens validity for that atom —
        the new window must not overlap its current validity.  Returns
        the atom identifier.
        """
        if atom_id is None:
            atom_id = self._db._allocate_atom_id()
        self._run({"op": "insert", "type": type_name, "atom_id": atom_id,
                   "values": values, "vf": valid_from, "vt": valid_to,
                   "tt": self._txn.tt},
                  lock_atoms=(atom_id,))
        return atom_id

    def update(self, atom_id: int, changes: Dict[str, Any],
               valid_from: Timestamp,
               valid_to: Timestamp = FOREVER) -> None:
        """Apply attribute changes over [valid_from, valid_to)."""
        self._run({"op": "update", "atom_id": atom_id, "changes": changes,
                   "vf": valid_from, "vt": valid_to, "tt": self._txn.tt},
                  lock_atoms=(atom_id,))

    def delete(self, atom_id: int, valid_from: Timestamp,
               valid_to: Timestamp = FOREVER) -> None:
        """Logically delete the atom over [valid_from, valid_to)."""
        self._run({"op": "delete", "atom_id": atom_id, "vf": valid_from,
                   "vt": valid_to, "tt": self._txn.tt},
                  lock_atoms=(atom_id,))

    def correct(self, atom_id: int, window_start: Timestamp,
                window_end: Timestamp, changes: Dict[str, Any]) -> None:
        """Bitemporal correction of a past validity window."""
        self._run({"op": "correct", "atom_id": atom_id,
                   "ws": window_start, "we": window_end,
                   "changes": changes, "tt": self._txn.tt},
                  lock_atoms=(atom_id,))

    def link(self, link_name: str, source_id: int, target_id: int,
             valid_from: Timestamp, valid_to: Timestamp = FOREVER) -> None:
        """Connect two atoms over the window (symmetric)."""
        self._run({"op": "link", "link": link_name, "src": source_id,
                   "dst": target_id, "vf": valid_from, "vt": valid_to,
                   "tt": self._txn.tt},
                  lock_atoms=(source_id, target_id))

    def unlink(self, link_name: str, source_id: int, target_id: int,
               valid_from: Timestamp,
               valid_to: Timestamp = FOREVER) -> None:
        """Disconnect two atoms over the window (symmetric)."""
        self._run({"op": "unlink", "link": link_name, "src": source_id,
                   "dst": target_id, "vf": valid_from, "vt": valid_to,
                   "tt": self._txn.tt},
                  lock_atoms=(source_id, target_id))

    def _run(self, payload: Dict[str, Any],
             lock_atoms: Tuple[int, ...]) -> None:
        self._txn.require_active()
        db = self._db
        for atom_id in sorted(set(lock_atoms)):
            db._locks.acquire(self._txn.txn_id, ("atom", atom_id),
                              LockMode.EXCLUSIVE)
        db._txn_manager.log_operation(self._txn, payload)
        with db._state_latch.write():
            undos = _apply_with_undo(db.engine, payload)
        for undo in undos:
            self._txn.add_undo(undo)

    # -- reads (see the atom's state as of now, own writes included) -----------

    def version_at(self, atom_id: int, at: Timestamp) -> Optional[Version]:
        with self._db._state_latch.read():
            return self._db.engine.version_at(atom_id, at)

    def history(self, atom_id: int) -> List[Version]:
        with self._db._state_latch.read():
            return self._db.engine.all_versions(atom_id)

    def query(self, text: str):
        """Run an MQL query inside this transaction's view."""
        return self._db.query(text)

    # -- lifecycle ---------------------------------------------------------------

    def commit(self) -> None:
        self._db._flush_indexes()
        self._txn.commit()

    def abort(self) -> None:
        # Index entries are filters, never authorities: flushing the
        # aborted transaction's buffered entries matches the unbatched
        # behaviour (entries were applied eagerly and never undone).
        self._db._flush_indexes()
        self._txn.abort()

    @property
    def is_active(self) -> bool:
        return self._txn.is_active


def _apply_with_undo(engine: StorageEngine,
                     payload: Dict[str, Any]) -> List[Any]:
    """Apply one logged operation and return its undo actions."""
    op = payload["op"]
    tt = payload["tt"]
    if op == "insert":
        return engine.insert(payload["type"], payload["values"],
                             payload["vf"], payload["vt"], tt,
                             payload["atom_id"])
    if op == "update":
        return engine.update(payload["atom_id"], payload["changes"],
                             payload["vf"], tt, payload["vt"])
    if op == "delete":
        return engine.delete(payload["atom_id"], payload["vf"], tt,
                             payload["vt"])
    if op == "correct":
        return engine.correct(payload["atom_id"], payload["ws"],
                              payload["we"], payload["changes"], tt)
    if op == "link":
        return engine.link(payload["link"], payload["src"], payload["dst"],
                           payload["vf"], tt, payload["vt"])
    if op == "unlink":
        return engine.unlink(payload["link"], payload["src"],
                             payload["dst"], payload["vf"], tt,
                             payload["vt"])
    raise TransactionStateError(f"unknown operation {op!r}")


class TemporalDatabase:
    """One temporal complex-object database in a directory."""

    def __init__(self, path: str, schema: Schema, catalog: Catalog,
                 config: DatabaseConfig, *, _fresh: bool) -> None:
        self.path = path
        self.schema = schema
        self.config = config
        self._catalog = catalog
        self._closed = False
        #: Serializes close() against itself: double- and concurrent
        #: close are no-ops after the first one wins.
        self._close_mutex = threading.Lock()
        #: Shared-read / exclusive-write latch over the in-memory engine:
        #: reader threads run queries in parallel, each mutation and
        #: checkpoint briefly excludes them.
        self._state_latch = ReadWriteLock()
        #: Summary of the last crash recovery, or None (set by open()).
        self.last_recovery: Optional[Dict[str, int]] = None
        #: Replication replay watermark.  Zero on a primary; on a replica
        #: the applier keeps it at the last quiescent primary LSN whose
        #: effects are applied, and checkpoint() records *it* as
        #: ``applied_lsn`` instead of the local WAL head — the local log
        #: may hold received-but-unapplied records of open transactions,
        #: which must be replayed (not skipped) after a restart.
        self.replication_applied_lsn = (
            int(catalog.applied_lsn)
            if catalog.extras.get("replica_of") else 0)

        #: One registry per database; every layer below routes its counters
        #: here, and the tracer snapshots it around traced spans.
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(self.metrics)

        self._disk = DiskManager(os.path.join(path, _PAGES_FILE),
                                 page_size=config.page_size,
                                 metrics=self.metrics)
        self.buffer = BufferManager(self._disk, capacity=config.buffer_pages,
                                    policy=config.replacement)
        store_state = catalog.extras.get("store_state") or None
        self.store = open_version_store(config.strategy, self.buffer,
                                        store_state)
        index_state = catalog.extras.get("index_state") or None
        self.indexes = IndexManager(self.buffer, index_state)
        self.engine = StorageEngine(schema, self.store, self.indexes,
                                    decode_cache_bytes=config.decode_cache_bytes)
        self.builder = MoleculeBuilder(self.engine)
        # Compiled-query cache (parse + analysis per normalized text);
        # local import because repro.mql imports the engine above us.
        from repro.mql.planner import PlanCache
        self._plan_cache = PlanCache(metrics=self.metrics)

        self._clock = TransactionClock(catalog.clock)
        self._next_atom_id = catalog.next_atom_id
        self._id_mutex = threading.Lock()
        self._wal = WriteAheadLog(os.path.join(path, _WAL_FILE),
                                  sync_on_commit=config.fsync_on_commit,
                                  metrics=self.metrics,
                                  group_commit=config.group_commit)
        self._locks = LockManager(timeout=config.lock_timeout)
        self._txn_manager = TransactionManager(self._wal, self._locks,
                                               self._clock,
                                               write_guard=self._state_latch)
        if _fresh:
            self.checkpoint()

    # ------------------------------------------------------------------
    # Creation and opening
    # ------------------------------------------------------------------

    @classmethod
    def create(cls, path: str, schema: Schema,
               config: Optional[DatabaseConfig] = None) -> "TemporalDatabase":
        """Create a new database directory; fails if one already exists."""
        config = config or DatabaseConfig()
        os.makedirs(path, exist_ok=True)
        catalog = Catalog(os.path.join(path, _CATALOG_FILE))
        if catalog.exists():
            raise CatalogError(f"database already exists at {path}")
        catalog.schema = schema.to_dict()
        catalog.strategy = config.strategy.value
        catalog.page_size = config.page_size
        return cls(path, schema, catalog, config, _fresh=True)

    @classmethod
    def open(cls, path: str,
             config: Optional[DatabaseConfig] = None) -> "TemporalDatabase":
        """Open an existing database, running crash recovery if needed."""
        catalog = Catalog(os.path.join(path, _CATALOG_FILE))
        catalog.load()
        schema = Schema.from_dict(catalog.schema or {})
        stored_strategy = VersionStrategy(catalog.strategy)
        config = config or DatabaseConfig()
        config.strategy = stored_strategy
        config.page_size = catalog.page_size or config.page_size

        clean = bool(catalog.extras.get("clean_shutdown"))
        wal_path = os.path.join(path, _WAL_FILE)
        needs_replay = not clean and os.path.exists(wal_path)
        if needs_replay:
            # The page image may contain effects of unfinished work: fall
            # back to the checkpoint and replay the committed tail.  Both
            # files come from one manifest generation — never a mix.
            restore_checkpoint(path, [os.path.join(path, _PAGES_FILE),
                                      os.path.join(path, _CATALOG_FILE)])
            catalog.load()
            schema = Schema.from_dict(catalog.schema or {})
        db = cls(path, schema, catalog, config, _fresh=False)
        if needs_replay:
            # A replica's local log may end with records of transactions
            # whose COMMITs are still on the primary: replay only up to
            # the last quiescent point, the applier fetches the rest.
            is_replica = bool(catalog.extras.get("replica_of"))
            summary = replay_operations(db.engine, db._wal,
                                        catalog.applied_lsn,
                                        quiescent_only=is_replica)
            db._clock.advance_to(summary["max_tt"] + 1)
            with db._id_mutex:
                db._next_atom_id = max(db._next_atom_id,
                                       summary["max_atom_id"] + 1)
            if is_replica:
                db.replication_applied_lsn = max(
                    db.replication_applied_lsn, summary["quiescent_lsn"])
            db.checkpoint()
            db.last_recovery = summary
        db._mark_dirty()
        return db

    def _mark_dirty(self) -> None:
        """Record that the database is in use (not cleanly shut down)."""
        self._catalog.extras["clean_shutdown"] = False
        self._catalog.save()

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def begin(self) -> TransactionContext:
        """Start an explicit transaction."""
        self._require_open()
        return TransactionContext(self, self._txn_manager.begin())

    @contextmanager
    def transaction(self) -> Iterator[TransactionContext]:
        """Scoped transaction: commit on success, abort on exception."""
        context = self.begin()
        try:
            yield context
        except BaseException:
            if context.is_active:
                context.abort()
            raise
        if context.is_active:
            context.commit()

    def _allocate_atom_id(self) -> int:
        with self._id_mutex:
            atom_id = self._next_atom_id
            self._next_atom_id += 1
            return atom_id

    # ------------------------------------------------------------------
    # Reads and queries
    # ------------------------------------------------------------------

    def version_at(self, atom_id: int, at: Timestamp,
                   tt: Optional[Timestamp] = None) -> Optional[Version]:
        """The atom's version valid at *at*, as believed at *tt*."""
        with self._read_view():
            return self.engine.version_at(atom_id, at, tt)

    def history(self, atom_id: int) -> List[Version]:
        """The atom's full recorded bitemporal history."""
        with self._read_view():
            return self.engine.all_versions(atom_id)

    def lifespan(self, atom_id: int, tt: Optional[Timestamp] = None):
        """The temporal element over which the atom exists, as believed
        at transaction time *tt* (default: current knowledge)."""
        with self._read_view():
            return self.engine.lifespan(atom_id, tt)

    def molecule_at(self, root_id: int, molecule_type: "str | MoleculeType",
                    at: Timestamp,
                    tt: Optional[Timestamp] = None) -> Optional[Molecule]:
        """Build the molecule rooted at *root_id* valid at instant *at*.

        Holds the shared side of the state latch for the whole build, so
        the returned molecule is a consistent snapshot — a concurrent
        writer cannot interleave between the atom fetches.
        """
        mtype = self._resolve_molecule_type(molecule_type)
        with self._read_view():
            return self.builder.build_at(root_id, mtype, at, tt)

    def molecule_history(self, root_id: int,
                         molecule_type: "str | MoleculeType",
                         window: Interval,
                         tt: Optional[Timestamp] = None
                         ) -> List[Tuple[Interval, Molecule]]:
        """The molecule's coalesced states over *window*."""
        mtype = self._resolve_molecule_type(molecule_type)
        with self._read_view():
            return self.builder.build_history(root_id, mtype, window, tt)

    def molecules_at(self, root_ids: List[int],
                     molecule_type: "str | MoleculeType",
                     at: Timestamp, tt: Optional[Timestamp] = None,
                     parallelism: int = 1) -> List[Molecule]:
        """Build molecules for many roots in one set-oriented pass.

        Duplicate root ids are built once; results come back in input
        order, with roots invalid at the instant dropped.  With
        ``parallelism > 1`` the roots are fanned across a thread pool —
        the whole call holds the shared-read latch, so every worker sees
        the same consistent snapshot, and the result is deterministic
        and identical to the single-threaded mode.
        """
        mtype = self._resolve_molecule_type(molecule_type)
        with self._read_view():
            return self.builder.build_many(root_ids, mtype, at, tt,
                                           parallelism=parallelism)

    def _resolve_molecule_type(
            self, molecule_type: "str | MoleculeType") -> MoleculeType:
        if isinstance(molecule_type, MoleculeType):
            return molecule_type
        return MoleculeType.parse(molecule_type, self.schema)

    def query(self, text: str, params: Optional[Dict[str, Any]] = None):
        """Execute a temporal MQL query; returns a
        :class:`repro.mql.result.QueryResult`.

        ``params`` binds ``$name`` placeholders in the WHERE clause::

            db.query("SELECT ALL FROM Part WHERE Part.name = $n "
                     "VALID AT 5", params={"n": "wheel"})
        """
        from repro.mql import execute_query  # local import: avoids a cycle
        with self._read_view():
            return execute_query(self, text, params)

    def query_stream(self, text: str,
                     params: Optional[Dict[str, Any]] = None,
                     chunk_entries: int = 128):
        """Execute MQL lazily, yielding entries in bounded chunks.

        Returns a :class:`repro.mql.stream.StreamingResult` whose
        ``chunks()`` iterator produces lists of at most *chunk_entries*
        result entries; peak memory is one chunk (plus one root batch),
        not the whole result.  Each chunk is built under the shared
        read latch, which is released between chunks — see the
        consistency contract in :mod:`repro.mql.stream`.
        """
        from repro.mql import execute_query_stream  # local: avoids a cycle
        self._require_open()
        return execute_query_stream(self, text, params,
                                    chunk_entries=chunk_entries)

    def explain(self, text: str, params: Optional[Dict[str, Any]] = None):
        """Execute *text* with per-operator profiling forced on.

        Equivalent to prefixing the query with ``EXPLAIN ANALYZE``; the
        returned result carries a :class:`repro.obs.QueryProfile` in its
        ``profile`` attribute.
        """
        from repro.mql import execute_query  # local import: avoids a cycle
        with self._read_view():
            return execute_query(self, text, params, profile=True)

    def atoms_of_type(self, type_name: str) -> List[int]:
        with self._read_view():
            return list(self.engine.atoms_of_type(type_name))

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------

    def create_attribute_index(self, type_name: str,
                               attribute_name: str) -> str:
        """Create an attribute index (checkpointed immediately)."""
        self._require_open()
        with self._state_latch.write():
            name = self.engine.create_attribute_index(type_name,
                                                      attribute_name)
        self._plan_cache.clear()
        self.checkpoint()
        return name

    def create_vt_index(self, type_name: str) -> str:
        """Create a valid-time change index (checkpointed immediately)."""
        self._require_open()
        with self._state_latch.write():
            name = self.engine.create_vt_index(type_name)
        self._plan_cache.clear()
        self.checkpoint()
        return name

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------

    def checkpoint(self) -> None:
        """Flush everything and snapshot the page file and catalog.

        The snapshot is published as one atomic manifest generation
        (:func:`repro.txn.recovery.publish_checkpoint`): a crash at any
        point during the checkpoint leaves the previous generation — a
        matching page-file/catalog pair — intact.  After a checkpoint,
        recovery only replays log records newer than it
        (``applied_lsn``).
        """
        self._require_open()
        with self._state_latch.write():
            # Drain buffered index entries first: the flush dirties
            # pages, which must be on disk before the manifest is cut.
            self.indexes.flush_pending()
            self.buffer.flush_all()
            self._disk.sync()
            catalog = self._catalog
            catalog.extras["store_state"] = self.store.persist_state()
            catalog.extras["index_state"] = self.indexes.persist_state()
            catalog.next_atom_id = self._next_atom_id
            catalog.clock = self._clock.now()
            if catalog.extras.get("replica_of"):
                # Replica: the image contains exactly the applied prefix,
                # not everything received into the local log.
                catalog.applied_lsn = max(catalog.applied_lsn,
                                          self.replication_applied_lsn)
            else:
                catalog.applied_lsn = max(catalog.applied_lsn,
                                          self._wal.next_lsn - 1)
            catalog.save()
            self._publish_checkpoint()

    def _publish_checkpoint(self) -> None:
        publish_checkpoint(self.path,
                           [os.path.join(self.path, _PAGES_FILE),
                            os.path.join(self.path, _CATALOG_FILE)])

    def close(self) -> None:
        """Checkpoint, truncate the log, and mark a clean shutdown.

        Idempotent and safe to call concurrently with in-flight reads:
        the first caller wins (later and concurrent calls return once it
        finished), and the closed flag flips while holding the exclusive
        side of the state latch — every read running under the shared
        side completes against open files, and reads arriving afterwards
        fail fast with :class:`StorageError` instead of hitting a closed
        file handle.
        """
        with self._close_mutex:
            if self._closed:
                return
            if self._txn_manager.active_transactions():
                raise TransactionStateError(
                    "cannot close with active transactions")
            self.checkpoint()
            # truncate() refuses while a subscribed replica still needs
            # the log; the records are kept and the LSN space survives
            # the restart, so the replica can resume where it left off.
            # On a replica, applied_lsn must keep naming the primary's
            # LSN space, so the reset only happens on an unreplicated
            # primary whose log actually emptied.
            truncated = self._wal.truncate()
            if truncated and not self._catalog.extras.get("replica_of"):
                if self._wal.next_lsn > 1:
                    # The LSN space restarts at 1 on the next open; bump
                    # the epoch so a replica resuming from an old LSN
                    # detects the reset instead of silently applying
                    # different records under reused numbers.
                    self._catalog.extras["wal_epoch"] = (
                        int(self._catalog.extras.get("wal_epoch", 0)) + 1)
                self._catalog.applied_lsn = 0
            self._catalog.extras["clean_shutdown"] = True
            self._catalog.save()
            # Republish so the checkpointed catalog also carries the reset
            # applied_lsn — a crash after close() must replay the (empty,
            # restarted) log from LSN 0, not from the pre-truncate LSN.
            self._publish_checkpoint()
            # Drain in-flight readers before invalidating the handles:
            # they hold the shared side, so taking the exclusive side is
            # a barrier, and the flag flips before any new reader can
            # pass the re-check inside _read_view().
            with self._state_latch.write():
                self._closed = True
            self._wal.close()
            self._disk.close()

    def _flush_indexes(self) -> None:
        """Batch-apply index entries buffered by the ending transaction."""
        with self._state_latch.write():
            self.indexes.flush_pending()

    def _require_open(self) -> None:
        if self._closed:
            raise StorageError("database is closed")

    @contextmanager
    def _read_view(self) -> Iterator[None]:
        """Shared-read latch plus a closed re-check under the latch.

        The early check gives a crisp error without latch traffic; the
        re-check closes the race where close() flips the flag between a
        reader's check and its latch acquisition.
        """
        self._require_open()
        with self._state_latch.read():
            self._require_open()
            yield

    def __enter__(self) -> "TemporalDatabase":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection (feeds the benchmark harness)
    # ------------------------------------------------------------------

    def storage_stats(self) -> StorageStats:
        return self.store.stats()

    def io_stats(self) -> Dict[str, Any]:
        """Physical and buffer I/O counters plus log volume.

        .. deprecated:: retained as a thin view over the metrics
           registry (``db.metrics``); prefer :meth:`metrics_snapshot`
           for the full per-layer breakdown.
        """
        metrics = self.metrics
        return {
            "disk_reads": metrics.value("disk.reads"),
            "disk_writes": metrics.value("disk.writes"),
            "buffer_hits": metrics.value("buffer.hits"),
            "buffer_misses": metrics.value("buffer.misses"),
            "buffer_evictions": metrics.value("buffer.evictions"),
            "wal_bytes": self._wal.size_bytes(),
            "file_bytes": self._disk.data_bytes_on_disk(),
        }

    def reset_io_stats(self) -> None:
        """Zero the disk and buffer counters.

        .. deprecated:: equivalent to ``db.metrics.reset("disk.")`` plus
           ``db.metrics.reset("buffer.")``; kept for the benchmark
           harness and older callers.
        """
        self.metrics.reset("disk.")
        self.metrics.reset("buffer.")

    def metrics_snapshot(self) -> Dict[str, Any]:
        """JSON-safe dump of every metric the kernel has recorded."""
        return self.metrics.snapshot()

"""Attribute data types of the model and their mappings.

Each :class:`DataType` knows how to validate a Python value, which wire
type the row codec uses for it, and how to build an order-preserving index
key for it (see :mod:`repro.access.keys`).
"""

from __future__ import annotations

import enum
from typing import Any, Tuple

from repro.access import keys
from repro.errors import TypeMismatchError
from repro.storage.serialization import FieldType


class DataType(enum.Enum):
    """Attribute types supported by atom definitions."""

    INT = "int"
    FLOAT = "float"
    STRING = "string"
    BOOL = "bool"
    TIME = "time"

    # -- validation ---------------------------------------------------------

    def validate(self, name: str, value: Any) -> Any:
        """Return *value* if it conforms to this type, else raise.

        ``int`` is accepted for FLOAT attributes (widening); ``bool`` is
        never accepted for numeric types despite being an ``int`` subclass.
        """
        if value is None:
            return None
        if self in (DataType.INT, DataType.TIME):
            if isinstance(value, bool) or not isinstance(value, int):
                raise TypeMismatchError(
                    f"attribute {name!r} expects {self.value}, "
                    f"got {type(value).__name__}")
            return value
        if self is DataType.FLOAT:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise TypeMismatchError(
                    f"attribute {name!r} expects float, "
                    f"got {type(value).__name__}")
            return float(value)
        if self is DataType.STRING:
            if not isinstance(value, str):
                raise TypeMismatchError(
                    f"attribute {name!r} expects str, "
                    f"got {type(value).__name__}")
            return value
        if self is DataType.BOOL:
            if not isinstance(value, bool):
                raise TypeMismatchError(
                    f"attribute {name!r} expects bool, "
                    f"got {type(value).__name__}")
            return value
        raise TypeMismatchError(f"unknown data type {self!r}")  # pragma: no cover

    # -- storage mapping ------------------------------------------------------

    @property
    def field_type(self) -> FieldType:
        """The row-codec wire type for this data type."""
        return _FIELD_TYPES[self]

    # -- index mapping -----------------------------------------------------------

    @property
    def key_width(self) -> int:
        """Fixed index-key width in bytes."""
        return _KEY_WIDTHS[self]

    def encode_key(self, value: Any) -> Tuple[bytes, bool]:
        """Encode *value* as an index key; returns (key, is_lossy).

        A lossy key (string prefixes) means index hits are candidates that
        must be rechecked against the stored value.
        """
        if self in (DataType.INT, DataType.TIME):
            return keys.encode_int(value), False
        if self is DataType.FLOAT:
            return keys.encode_float(value), False
        if self is DataType.BOOL:
            return keys.encode_bool(value), False
        if self is DataType.STRING:
            return (keys.encode_string(value),
                    keys.string_prefix_is_lossy(value))
        raise TypeMismatchError(f"unknown data type {self!r}")  # pragma: no cover


_FIELD_TYPES = {
    DataType.INT: FieldType.INT,
    DataType.FLOAT: FieldType.FLOAT,
    DataType.STRING: FieldType.STRING,
    DataType.BOOL: FieldType.BOOL,
    DataType.TIME: FieldType.TIME,
}

_KEY_WIDTHS = {
    DataType.INT: keys.INT_KEY_WIDTH,
    DataType.FLOAT: keys.FLOAT_KEY_WIDTH,
    DataType.STRING: keys.DEFAULT_STRING_WIDTH,
    DataType.BOOL: keys.BOOL_KEY_WIDTH,
    DataType.TIME: keys.INT_KEY_WIDTH,
}


def parse_datatype(text: str) -> DataType:
    """Parse a data type name (as stored in the catalog)."""
    try:
        return DataType(text.lower())
    except ValueError:
        raise TypeMismatchError(f"unknown data type {text!r}") from None

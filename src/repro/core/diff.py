"""Molecule diffing: what changed between two states of a complex object.

Given two molecules (typically the same root at two instants, or the
same instant ``AS OF`` two transaction times), :func:`diff_molecules`
reports which atoms joined, which left, and which changed state —
the question every design-release and audit workflow asks.

The comparison is by atom identity: an atom occurrence counts as
*changed* when it is present in both molecules (anywhere in their
structure) with different attribute values or different traversed
reference sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.core.molecule import Molecule, MoleculeAtom


@dataclass
class AttributeChange:
    """One attribute's value in the old and new state."""

    attribute: str
    old: Any
    new: Any


@dataclass
class MoleculeDiff:
    """The delta between two molecule states."""

    added: List[MoleculeAtom] = field(default_factory=list)
    removed: List[MoleculeAtom] = field(default_factory=list)
    changed: List[Tuple[MoleculeAtom, MoleculeAtom,
                        List[AttributeChange]]] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        return not (self.added or self.removed or self.changed)

    def summary(self) -> str:
        if self.is_empty:
            return "no differences"
        lines = []
        for atom in self.added:
            lines.append(f"+ {atom.type_name} {atom.atom_id}")
        for atom in self.removed:
            lines.append(f"- {atom.type_name} {atom.atom_id}")
        for old, new, changes in self.changed:
            details = ", ".join(
                f"{change.attribute}: {change.old!r} -> {change.new!r}"
                for change in changes)
            lines.append(f"~ {new.type_name} {new.atom_id} ({details})")
        return "\n".join(lines)


def _atoms_by_id(molecule: Molecule) -> Dict[int, MoleculeAtom]:
    """First occurrence per atom id (occurrences share the version)."""
    atoms: Dict[int, MoleculeAtom] = {}
    for atom in molecule.atoms():
        atoms.setdefault(atom.atom_id, atom)
    return atoms


def diff_molecules(old: Molecule, new: Molecule) -> MoleculeDiff:
    """Compare two molecule states by atom identity.

    Both molecules should share a molecule type (comparing unrelated
    structures is legal but rarely meaningful).
    """
    old_atoms = _atoms_by_id(old)
    new_atoms = _atoms_by_id(new)
    diff = MoleculeDiff()
    for atom_id, atom in sorted(new_atoms.items()):
        if atom_id not in old_atoms:
            diff.added.append(atom)
    for atom_id, atom in sorted(old_atoms.items()):
        if atom_id not in new_atoms:
            diff.removed.append(atom)
    for atom_id in sorted(set(old_atoms) & set(new_atoms)):
        before, after = old_atoms[atom_id], new_atoms[atom_id]
        changes = _attribute_changes(before, after)
        refs_changed = _traversed_refs(before) != _traversed_refs(after)
        if changes or refs_changed:
            diff.changed.append((before, after, changes))
    return diff


def _attribute_changes(before: MoleculeAtom,
                       after: MoleculeAtom) -> List[AttributeChange]:
    changes = []
    keys = set(before.version.values) | set(after.version.values)
    for key in sorted(keys):
        old_value = before.version.values.get(key)
        new_value = after.version.values.get(key)
        if old_value != new_value:
            changes.append(AttributeChange(key, old_value, new_value))
    return changes


def _traversed_refs(atom: MoleculeAtom) -> Dict[str, frozenset]:
    """Only the references the molecule actually traversed count."""
    return {str(edge): frozenset(child.atom_id for child in children)
            for edge, children in atom.children.items()}

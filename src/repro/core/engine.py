"""The logical operation layer of the temporal engine.

:class:`StorageEngine` binds the version store, the index manager, and
the version codec into the operations the data model defines: temporal
insert, update-from, logical delete, link/unlink, and bitemporal
correction.  Each mutation

1. computes its effect as a pure :class:`~repro.core.history.HistoryPlan`,
2. applies the plan to the version store,
3. maintains the affected indexes, and
4. returns compensating undo actions for transaction rollback.

Stored payloads are self-describing: a 16-bit atom type id precedes the
codec payload, so any record can be decoded without consulting a
separate atom-to-type map.

The engine is deliberately free of transactions and locks — the database
facade wraps every call in logging and locking; recovery replays logged
operations through the very same methods.

Concurrency contract: the read methods (``version_at``, ``all_versions``,
``lifespan``, ``atoms_of_type``, the candidate selectors) never mutate
engine-level state, so any number of threads may call them concurrently
*provided no mutation runs at the same time* — the facade enforces this
with its shared-read / exclusive-write latch.  The buffer pool and disk
manager below are internally locked; everything between them and this
class is read-pure on the read paths, except the decoded-version cache,
which carries its own lock (and the type-name map, whose updates are
single-dict operations, atomic under the GIL).
"""

from __future__ import annotations

import operator
import struct
import threading
from collections import OrderedDict
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.access.indexes import (
    IndexManager,
    attribute_index_name,
    vt_index_name,
)
from repro.core import history as hist
from repro.core.codec import VersionCodec
from repro.core.schema import LinkType, Schema
from repro.core.version import IN, OUT, Version, ref_key
from repro.errors import (
    CardinalityError,
    SerializationError,
    TemporalUpdateError,
    UnknownAtomError,
    UnknownTypeError,
)
from repro.storage.strategies import StoredVersion, VersionStore
from repro.temporal import FOREVER, Interval, Timestamp

_TYPE_PREFIX = struct.Struct("<H")

#: Comparison operators a pushdown predicate may carry, by the
#: :class:`~repro.mql.ast_nodes.CompareOp` member *name*.  The planner
#: ships plain ``(attr, op name, literal)`` triples rather than AST
#: nodes so this module never imports the MQL package (which imports
#: this one).
_PUSHDOWN_OPS: Dict[str, Callable[[Any, Any], bool]] = {
    "EQ": operator.eq,
    "NE": operator.ne,
    "LT": operator.lt,
    "LE": operator.le,
    "GT": operator.gt,
    "GE": operator.ge,
}

UndoAction = Callable[[], None]

#: Default budget of the decoded-version cache in bytes.  The previous
#: bound was 4096 *entries*, which for typical ~100-byte payloads sat
#: around half a megabyte but could balloon arbitrarily for wide atoms;
#: a byte budget makes the cache's footprint a real, tunable number that
#: can share one memory budget with the buffer pool.
DEFAULT_DECODE_CACHE_BYTES = 8 * 1024 * 1024

#: Atoms whose live version set is cached for the write path.  Entries
#: are a handful of decoded versions each (live sets are tiny — one per
#: disjoint valid-time fragment), so the bound is about breadth, not
#: bytes.
_LIVE_SETS_MAX_ATOMS = 65536

#: Fixed per-entry accounting overhead (key tuple, OrderedDict slot,
#: Version object headers) added to each entry's payload size.
DECODE_CACHE_ENTRY_OVERHEAD = 160


class DecodedVersionCache:
    """Byte-bounded LRU of decoded versions, keyed by
    ``(atom_id, seq, cols)``.

    ``cols`` is ``None`` for a full decode and a projection descriptor
    (the attribute tuple plus a refs flag) for a partial one, so a
    projected version can never be returned to a caller expecting the
    full version or vice versa — the two live under distinct keys.

    Each entry is charged its *encoded payload size* plus a fixed
    overhead — the encoded size is a faithful, already-known proxy for
    the decoded footprint (attribute values and reference sets dominate
    both; a partial decode is charged the same full-payload size, a
    deliberate overestimate that keeps the accounting simple and
    conservative).  Occupancy is surfaced as the
    ``engine.decode_cache.bytes`` gauge so the cache and the buffer
    pool can share one memory budget.

    A sequence number is stable for the lifetime of an atom but its
    *content* changes under ``replace_version``/``pop_version``, so the
    engine invalidates the whole atom on every mutation touch (including
    undo).  A per-atom key index makes that O(cached versions of the
    atom) instead of a full sweep.  Thread-safe: parallel molecule
    builders hit it concurrently under the facade's shared-read latch.
    """

    def __init__(self, capacity_bytes: int, metrics) -> None:
        self._capacity_bytes = capacity_bytes
        self._lock = threading.Lock()
        # key -> (type_name, version, charged cost in bytes)
        self._entries: "OrderedDict[Tuple[int, int, Any], \
            Tuple[str, Version, int]]" = OrderedDict()
        self._by_atom: Dict[int, Set[Tuple[int, Any]]] = {}
        self._bytes = 0
        self._c_hits = metrics.counter("engine.decode_cache.hits")
        self._c_misses = metrics.counter("engine.decode_cache.misses")
        self._c_invalidations = metrics.counter(
            "engine.decode_cache.invalidations")
        self._c_evictions = metrics.counter("engine.decode_cache.evictions")
        self._g_bytes = metrics.gauge("engine.decode_cache.bytes")

    @property
    def capacity_bytes(self) -> int:
        return self._capacity_bytes

    @property
    def bytes_used(self) -> int:
        with self._lock:
            return self._bytes

    def get(self, atom_id: int, seq: int,
            cols: Any = None) -> Optional[Tuple[str, Version]]:
        key = (atom_id, seq, cols)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._c_misses.inc()
                return None
            self._entries.move_to_end(key)
            self._c_hits.inc()
            return entry[0], entry[1]

    def put(self, atom_id: int, seq: int, type_name: str,
            version: Version, nbytes: int = 0, cols: Any = None) -> None:
        cost = nbytes + DECODE_CACHE_ENTRY_OVERHEAD
        if cost > self._capacity_bytes:
            return  # an oversized entry would thrash the whole cache
        key = (atom_id, seq, cols)
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                self._bytes -= existing[2]
            self._entries[key] = (type_name, version, cost)
            self._entries.move_to_end(key)
            self._bytes += cost
            self._by_atom.setdefault(atom_id, set()).add((seq, cols))
            while self._bytes > self._capacity_bytes and self._entries:
                (old_atom, old_seq, old_cols), old = \
                    self._entries.popitem(last=False)
                self._bytes -= old[2]
                self._c_evictions.inc()
                seqs = self._by_atom.get(old_atom)
                if seqs is not None:
                    seqs.discard((old_seq, old_cols))
                    if not seqs:
                        del self._by_atom[old_atom]
            self._g_bytes.set(self._bytes)

    def invalidate_atom(self, atom_id: int) -> None:
        with self._lock:
            self._c_invalidations.inc()
            seqs = self._by_atom.pop(atom_id, None)
            if not seqs:
                return
            for seq, cols in seqs:
                entry = self._entries.pop((atom_id, seq, cols), None)
                if entry is not None:
                    self._bytes -= entry[2]
            self._g_bytes.set(self._bytes)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._by_atom.clear()
            self._bytes = 0
            self._g_bytes.set(0)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class StorageEngine:
    """Logical operations over one version store."""

    #: The molecule builder probes this before passing pushdown kwargs,
    #: so test doubles implementing the bare VersionReader protocol keep
    #: working unchanged.
    supports_pushdown = True

    def __init__(self, schema: Schema, store: VersionStore,
                 indexes: IndexManager,
                 decode_cache_bytes: int = DEFAULT_DECODE_CACHE_BYTES) -> None:
        self.schema = schema
        self.store = store
        self.indexes = indexes
        self.codec = VersionCodec(schema)
        self._type_by_id = {atom_type.type_id: atom_type.name
                            for atom_type in schema.atom_types}
        self.metrics = indexes.metrics
        self._c_version_reads = self.metrics.counter("engine.version_reads")
        self._c_versions_scanned = self.metrics.counter(
            "engine.versions_scanned")
        self._c_mutations = self.metrics.counter("engine.mutations")
        self._decode_cache = DecodedVersionCache(decode_cache_bytes,
                                                 self.metrics)
        # The live-set cache: atom id -> {seq: decoded live Version}.
        # Revision planning only reads live versions, and _apply_plan
        # knows exactly how a plan changes the live set, so after one
        # cold read_live an atom's updates plan against this map with no
        # store reads at all — update cost stays O(live) no matter how
        # long the closed history grows.  Dropped (not repaired) on
        # undo and external store rewrites via invalidate_atom_caches.
        self._live_sets: Dict[int, Dict[int, Version]] = {}
        self._c_live_hits = self.metrics.counter("engine.live_set.hits")
        self._c_live_misses = self.metrics.counter("engine.live_set.misses")
        # Monotone replay watermark: recovery/replication skip logged
        # operations at or below this LSN, making re-replay of an
        # overlapping committed range a no-op (see txn.recovery).
        self.applied_replay_lsn = 0
        # Atoms never change type (insert enforces it), so this map only
        # needs invalidation to forget atoms that disappear entirely; it
        # is dropped on every mutation touch anyway for uniformity.
        self._type_names: Dict[int, str] = {}

    # ------------------------------------------------------------------
    # Encoding helpers (type-prefixed payloads)
    # ------------------------------------------------------------------

    def _encode(self, type_name: str, version: Version) -> StoredVersion:
        stored = self.codec.encode(type_name, version)
        prefix = _TYPE_PREFIX.pack(self.schema.atom_type(type_name).type_id)
        return StoredVersion(stored.vt_start, stored.vt_end, stored.live,
                             prefix + stored.payload)

    def _decode(self, stored: StoredVersion) -> Tuple[str, Version]:
        (type_id,) = _TYPE_PREFIX.unpack_from(stored.payload, 0)
        try:
            type_name = self._type_by_id[type_id]
        except KeyError:
            raise UnknownTypeError(
                f"stored record carries unknown type id {type_id}") from None
        body = StoredVersion(stored.vt_start, stored.vt_end, stored.live,
                             stored.payload[_TYPE_PREFIX.size:])
        return type_name, self.codec.decode(type_name, body)

    # ------------------------------------------------------------------
    # VersionReader protocol (used by the molecule builder)
    # ------------------------------------------------------------------

    def _decode_cached(self, atom_id: int, seq: int,
                       stored: StoredVersion,
                       projection: Optional[Dict[str, Tuple[Any,
                                                            Tuple[str, ...],
                                                            bool]]] = None
                       ) -> Tuple[str, Version]:
        """Decode *stored* through the decoded-version cache.

        With a *projection* (type name -> (cache cols key, attribute
        tuple, need-refs flag), from :meth:`compile_pushdown`), types
        named in the map are decoded partially and cached under their
        projection key; types absent from it decode fully, under the
        full key, exactly as without a projection.
        """
        entry = None
        cols: Any = None
        type_name: Optional[str] = None
        if projection is not None:
            (type_id,) = _TYPE_PREFIX.unpack_from(stored.payload, 0)
            type_name = self._type_by_id.get(type_id)
            if type_name is not None:
                entry = projection.get(type_name)
                if entry is not None:
                    cols = entry[0]
        cached = self._decode_cache.get(atom_id, seq, cols)
        if cached is not None:
            return cached
        if entry is None:
            type_name, version = self._decode(stored)
        else:
            body = StoredVersion(stored.vt_start, stored.vt_end,
                                 stored.live,
                                 stored.payload[_TYPE_PREFIX.size:])
            version = self.codec.decode_partial(type_name, body,
                                                entry[1], entry[2])
        self._decode_cache.put(atom_id, seq, type_name, version,
                               nbytes=len(stored.payload), cols=cols)
        self._type_names.setdefault(atom_id, type_name)
        return type_name, version

    def invalidate_atom_caches(self, atom_id: int) -> None:
        """Forget every cached decode for *atom_id*.

        Called on every mutation touch (forward and undo) and by
        maintenance tools that rewrite the store directly (vacuum).
        """
        self._decode_cache.invalidate_atom(atom_id)
        self._type_names.pop(atom_id, None)
        self._live_sets.pop(atom_id, None)

    def atom_type_name(self, atom_id: int) -> str:
        type_name = self._type_names.get(atom_id)
        if type_name is None:
            # Unknown atoms must keep raising exactly as before: the
            # store probe below is the authority, never the map.
            _, stored = self.store.read_current(atom_id)
            (type_id,) = _TYPE_PREFIX.unpack_from(stored.payload, 0)
            type_name = self._type_by_id[type_id]
            self._type_names[atom_id] = type_name
        return type_name

    def version_at(self, atom_id: int, at: Timestamp,
                   tt: Optional[Timestamp] = None) -> Optional[Version]:
        """The version valid at *at* as believed at *tt* (None = now)."""
        self._c_version_reads.inc()
        if not self.store.exists(atom_id):
            return None
        if tt is None:
            hits = self.store.read_at(atom_id, at)
            if not hits:
                return None
            self._c_versions_scanned.inc(len(hits))
            seq, stored = hits[0]
            return self._decode_cached(atom_id, seq, stored)[1]
        return hist.version_at(self.all_versions(atom_id), at, tt)

    def version_at_many(self, atom_ids: Iterable[int], at: Timestamp,
                        tt: Optional[Timestamp] = None,
                        pred: Optional[Callable[[bytes], bool]] = None,
                        projection: Optional[Dict[str, Tuple[Any,
                                                             Tuple[str, ...],
                                                             bool]]] = None
                        ) -> Dict[int, Optional[Version]]:
        """Batched :meth:`version_at`: one result per distinct atom id.

        Unknown atoms map to ``None``, exactly as ``version_at`` returns
        ``None`` for them.  The batch goes through the store's
        set-oriented read path, so directory and record pages shared by
        several atoms are pinned once for the whole call.

        *pred* / *projection* come from :meth:`compile_pushdown`: the
        predicate is evaluated by the store on raw payloads, so atoms
        whose version at *at* fails it come back as ``None`` without
        ever being decoded; the projection makes the survivors decode
        only the attributes the query reads.  Both apply only on the
        current-knowledge path — the planner never pushes below an
        ``AS OF`` query.
        """
        ids = list(dict.fromkeys(atom_ids))
        result: Dict[int, Optional[Version]] = {}
        if not ids:
            return result
        self._c_version_reads.inc(len(ids))
        if tt is not None:
            histories = self.all_versions_many(ids)
            for atom_id in ids:
                versions = histories.get(atom_id)
                result[atom_id] = (None if versions is None
                                   else hist.version_at(versions, at, tt))
            return result
        if pred is None:
            # Keep the two-argument call for stores implementing only
            # the original protocol (test doubles, external backends).
            hits_by_atom = self.store.read_at_many(ids, at)
        else:
            hits_by_atom = self.store.read_at_many(ids, at, pred)
        for atom_id in ids:
            hits = hits_by_atom.get(atom_id)
            if not hits:
                result[atom_id] = None
                continue
            self._c_versions_scanned.inc(len(hits))
            seq, stored = hits[0]
            result[atom_id] = self._decode_cached(atom_id, seq, stored,
                                                  projection)[1]
        return result

    def all_versions(self, atom_id: int) -> List[Version]:
        if not self.store.exists(atom_id):
            raise UnknownAtomError(f"no atom {atom_id}")
        versions = [self._decode_cached(atom_id, seq, sv)[1]
                    for seq, sv in enumerate(self.store.read_all(atom_id))]
        self._c_versions_scanned.inc(len(versions))
        return versions

    def live_pairs(self, atom_id: int) -> List[Tuple[int, Version]]:
        """The atom's live versions as (seq, version), in seq order.

        Served from the live-set cache when warm; one store
        ``read_live`` otherwise.  This is the planning read for every
        mutation — closed versions are immutable, so revision never
        needs them.
        """
        cached = self._live_sets.get(atom_id)
        if cached is not None:
            self._c_live_hits.inc()
            return sorted(cached.items())
        if not self.store.exists(atom_id):
            raise UnknownAtomError(f"no atom {atom_id}")
        self._c_live_misses.inc()
        pairs = [(seq, self._decode_cached(atom_id, seq, sv)[1])
                 for seq, sv in self.store.read_live(atom_id)]
        self._c_versions_scanned.inc(len(pairs))
        self._remember_live(atom_id, dict(pairs))
        return pairs

    def _remember_live(self, atom_id: int,
                       live: Dict[int, Version]) -> None:
        cache = self._live_sets
        if len(cache) >= _LIVE_SETS_MAX_ATOMS and atom_id not in cache:
            # FIFO eviction: the bound only guards pathological breadth
            # (bulk loads touching millions of atoms); hot write sets
            # are far smaller and re-enter on their next touch.
            cache.pop(next(iter(cache)))
        cache[atom_id] = live

    def all_versions_many(self, atom_ids: Iterable[int],
                          pred: Optional[Callable[[bytes], bool]] = None
                          ) -> Dict[int, List[Version]]:
        """Batched :meth:`all_versions`; unknown atoms are *omitted*
        rather than raising, so callers can detect and handle them.

        With *pred*, versions failing the payload predicate come back
        from the store as ``None`` placeholders (preserving sequence
        alignment) and are skipped without decoding, so the returned
        histories hold only survivors.  Callers must treat a filtered
        history as the *existential* answer it is — every absent
        version is one that could not satisfy the predicate — and never
        feed it to coalescing logic that needs the full timeline.
        """
        ids = list(dict.fromkeys(atom_ids))
        if pred is None:
            stored_histories = self.store.read_all_many(ids)
        else:
            stored_histories = self.store.read_all_many(ids, pred)
        result: Dict[int, List[Version]] = {}
        for atom_id, stored_versions in stored_histories.items():
            result[atom_id] = [
                self._decode_cached(atom_id, seq, sv)[1]
                for seq, sv in enumerate(stored_versions)
                if sv is not None]
            self._c_versions_scanned.inc(len(stored_versions))
        return result

    def current_version(self, atom_id: int) -> Version:
        """The newest recorded version (regardless of validity)."""
        if not self.store.exists(atom_id):
            raise UnknownAtomError(f"no atom {atom_id}")
        seq, stored = self.store.read_current(atom_id)
        return self._decode_cached(atom_id, seq, stored)[1]

    def atom_exists(self, atom_id: int) -> bool:
        return self.store.exists(atom_id)

    def atoms_of_type(self, type_name: str) -> Iterator[int]:
        type_id = self.schema.atom_type(type_name).type_id
        return self.indexes.atoms_of_type(type_id)

    def lifespan(self, atom_id: int,
                 tt: Optional[Timestamp] = None):
        return hist.lifespan(self.all_versions(atom_id), tt)

    # ------------------------------------------------------------------
    # Predicate / projection pushdown (compiled from planner specs)
    # ------------------------------------------------------------------

    def compile_pushdown(self, spec) -> Tuple[
            Optional[Callable[[bytes], bool]],
            Optional[Dict[str, Tuple[Any, Tuple[str, ...], bool]]]]:
        """Compile a planner ``PushdownSpec`` against this schema.

        Returns ``(pred, projection)``:

        * *pred* — a callable over raw type-prefixed payloads, or
          ``None``.  It is a **necessary condition** for the version to
          survive the query's WHERE (the evaluator still re-filters),
          tuned to say "keep" on anything it cannot cheaply judge:
          foreign type ids and undecodable payloads all pass.
        * *projection* — type name -> ``(cols key, attrs, need_refs)``
          for types worth decoding partially; types whose projection
          covers every declared field are left out so they share the
          full-decode cache entries.
        """
        pred = None
        if spec.comparisons:
            pred = self._compile_payload_predicate(spec.type_name,
                                                   spec.comparisons)
        projection: Optional[Dict[str, Tuple[Any, Tuple[str, ...],
                                             bool]]] = None
        if spec.projection is not None:
            projection = {}
            for type_name, attrs, need_refs in spec.projection:
                atom_type = self.schema.atom_type(type_name)
                declared = {attr.name for attr in atom_type.attributes}
                wanted = tuple(attr for attr in attrs if attr in declared)
                if (set(wanted) >= declared
                        and (need_refs
                             or not self.codec.ref_keys(type_name))):
                    continue  # full coverage: partial buys nothing
                cols = (wanted, need_refs)
                projection[type_name] = (cols, wanted, need_refs)
            if not projection:
                projection = None
        return pred, projection

    def _compile_payload_predicate(
            self, type_name: str,
            comparisons: Tuple[Tuple[str, str, Any], ...]
    ) -> Callable[[bytes], bool]:
        """A raw-payload evaluator for conjunctive root comparisons.

        Mirrors the single-atom semantics of the evaluator's
        ``_satisfies`` exactly (NULL literals, NULL values, TypeError
        on incomparable values), so pushing it below decode can only
        drop versions the evaluator would have dropped anyway.
        """
        type_id = self.schema.atom_type(type_name).type_id
        attrs = tuple(dict.fromkeys(attr for attr, _, _ in comparisons))
        checks = tuple((attr, _PUSHDOWN_OPS[op], literal)
                       for attr, op, literal in comparisons)
        codec = self.codec
        prefix_size = _TYPE_PREFIX.size

        def pred(payload: bytes) -> bool:
            (tid,) = _TYPE_PREFIX.unpack_from(payload, 0)
            if tid != type_id:
                return True  # not the pushdown type: never judged here
            try:
                values = codec.peek(type_name, payload, attrs,
                                    offset=prefix_size)
            except (SerializationError, struct.error,
                    KeyError, IndexError):
                return True  # undecodable: let the full path decide
            for attr, op, literal in checks:
                value = values.get(attr)
                if literal is None:
                    if op is operator.eq:
                        if value is not None:
                            return False
                    elif op is operator.ne:
                        if value is None:
                            return False
                    else:
                        return False  # ordering against NULL never holds
                    continue
                if value is None:
                    return False
                try:
                    if not op(value, literal):
                        return False
                except TypeError:
                    return False
            return True

        return pred

    def prune_roots(self, atom_ids: Iterable[int],
                    pred: Callable[[bytes], bool]) -> List[int]:
        """Root candidates with at least one stored version passing
        *pred*, in input order.

        The existential pre-filter window queries use: an atom none of
        whose versions can satisfy a pushed root comparison can never
        produce a qualifying slice, so its whole history is skipped
        before a single decode.  Atoms unknown to the store are *kept*:
        the unpruned path surfaces them as :class:`UnknownAtomError`
        during the history sweep, and pruning must not mask that.
        """
        ids = list(dict.fromkeys(atom_ids))
        if not ids:
            return []
        histories = self.store.read_all_many(ids, pred)
        return [atom_id for atom_id in ids
                if atom_id not in histories
                or any(sv is not None for sv in histories[atom_id])]

    # ------------------------------------------------------------------
    # Plan application with index maintenance and undo capture
    # ------------------------------------------------------------------

    def _undo_invalidating(self, atom_id: int,
                           action: UndoAction) -> UndoAction:
        """Wrap an undo so rollback also drops the atom's cached decodes."""
        def run() -> None:
            action()
            self.invalidate_atom_caches(atom_id)
        return run

    def _apply_plan(self, atom_id: int, type_name: str,
                    plan: hist.HistoryPlan,
                    undos: List[UndoAction]) -> None:
        self._c_mutations.inc()
        store = self.store
        # Claimed (not read) until the plan lands: any exception leaves
        # the cache empty for this atom and the next touch rebuilds it
        # from the store.
        prior_live = self._live_sets.pop(atom_id, None)
        replacements = plan.closures + plan.rewrites
        if replacements:
            originals = store.read_versions(
                atom_id, [seq for seq, _ in replacements])
        for seq, replacement in replacements:
            old = originals[seq]
            store.replace_version(atom_id, seq,
                                  self._encode(type_name, replacement))
            undos.append(self._undo_invalidating(
                atom_id,
                lambda s=seq, o=old: store.replace_version(atom_id, s, o)))
        # Closures only change timestamps, but rewrites carry transformed
        # values the indexes have not seen yet.
        for _seq, replacement in plan.rewrites:
            self._index_version(type_name, atom_id, replacement)
        first_append = not store.exists(atom_id)
        append_base = 0 if first_append else store.version_count(atom_id)
        for version in plan.appends:
            store.append_version(atom_id, self._encode(type_name, version))
            undos.append(self._undo_invalidating(
                atom_id, lambda: store.pop_version(atom_id)))
            self._index_version(type_name, atom_id, version)
        if first_append and plan.appends:
            type_id = self.schema.atom_type(type_name).type_id
            self.indexes.register_atom(type_id, atom_id)
            undos.append(lambda: self.indexes.unregister_atom(type_id,
                                                              atom_id))
        self.invalidate_atom_caches(atom_id)
        if prior_live is not None:
            # The plan states exactly how the live set changed, so the
            # cache is repaired in place instead of rebuilt: closures
            # leave the live set, rewrites stay only while still live
            # (stillborns leave), appends join at their new sequence.
            for seq, _closed in plan.closures:
                prior_live.pop(seq, None)
            for seq, replacement in plan.rewrites:
                if replacement.live:
                    prior_live[seq] = replacement
                else:
                    prior_live.pop(seq, None)
            for offset, version in enumerate(plan.appends):
                if version.live:
                    prior_live[append_base + offset] = version
            self._remember_live(atom_id, prior_live)

    def _index_version(self, type_name: str, atom_id: int,
                       version: Version) -> None:
        atom_type = self.schema.atom_type(type_name)
        for attribute in atom_type.attributes:
            index_name = attribute_index_name(type_name, attribute.name)
            if not self.indexes.has_index(index_name):
                continue
            value = version.values.get(attribute.name)
            if value is None:
                continue
            key, _lossy = attribute.data_type.encode_key(value)
            self.indexes.add_attribute_entry(index_name, key, atom_id)
        vt_name = vt_index_name(type_name)
        if self.indexes.has_index(vt_name):
            self.indexes.add_vt_entry(vt_name, version.vt.start, atom_id)

    # ------------------------------------------------------------------
    # Mutations (each takes an explicit transaction time for replay)
    # ------------------------------------------------------------------

    def insert(self, type_name: str, values: Dict[str, Any],
               valid_from: Timestamp, valid_to: Timestamp,
               tt: Timestamp, atom_id: int
               ) -> List[UndoAction]:
        """Create *atom_id* of *type_name* valid over [valid_from, valid_to)."""
        atom_type = self.schema.atom_type(type_name)
        checked = atom_type.validate_values(values)
        window = Interval(valid_from, valid_to)
        exists = self.store.exists(atom_id)
        if exists and self.atom_type_name(atom_id) != type_name:
            raise TemporalUpdateError(
                f"atom {atom_id} already exists with a different type")
        existing_live = self.live_pairs(atom_id) if exists else ()
        plan = hist.insert_plan(checked, {}, window, tt,
                                existing_live=existing_live)
        undos: List[UndoAction] = []
        self._apply_plan(atom_id, type_name, plan, undos)
        return undos

    def update(self, atom_id: int, changes: Dict[str, Any],
               valid_from: Timestamp, tt: Timestamp,
               valid_to: Timestamp = FOREVER) -> List[UndoAction]:
        """Set *changes* over [valid_from, valid_to) (default: onwards)."""
        type_name = self.atom_type_name(atom_id)
        atom_type = self.schema.atom_type(type_name)
        checked = atom_type.validate_values(changes, partial=True)
        if not checked:
            raise TemporalUpdateError("update with no changes")
        window = Interval(valid_from, valid_to)

        def transform(version: Version) -> Version:
            merged = dict(version.values)
            merged.update(checked)
            return version.with_state(merged, version.refs)

        plan = hist.revise_pairs(self.live_pairs(atom_id), window, tt,
                                 transform)
        undos: List[UndoAction] = []
        self._apply_plan(atom_id, type_name, plan, undos)
        return undos

    def delete(self, atom_id: int, valid_from: Timestamp,
               tt: Timestamp,
               valid_to: Timestamp = FOREVER) -> List[UndoAction]:
        """Logically delete: truncate validity inside the window."""
        type_name = self.atom_type_name(atom_id)
        window = Interval(valid_from, valid_to)
        plan = hist.revise_pairs(self.live_pairs(atom_id), window, tt,
                                 lambda version: None)
        undos: List[UndoAction] = []
        self._apply_plan(atom_id, type_name, plan, undos)
        return undos

    def correct(self, atom_id: int, window_start: Timestamp,
                window_end: Timestamp, changes: Dict[str, Any],
                tt: Timestamp) -> List[UndoAction]:
        """Bitemporal correction: rewrite values inside a past window."""
        type_name = self.atom_type_name(atom_id)
        atom_type = self.schema.atom_type(type_name)
        checked = atom_type.validate_values(changes, partial=True)
        window = Interval(window_start, window_end)

        def transform(version: Version) -> Version:
            merged = dict(version.values)
            merged.update(checked)
            return version.with_state(merged, version.refs)

        plan = hist.revise_pairs(self.live_pairs(atom_id), window, tt,
                                 transform)
        undos: List[UndoAction] = []
        self._apply_plan(atom_id, type_name, plan, undos)
        return undos

    # -- links --------------------------------------------------------------

    def _link_type_for(self, link_name: str, source_id: int,
                       target_id: int) -> LinkType:
        if source_id == target_id:
            # Even with a self-referencing link type, an atom cannot be
            # its own partner (and the two-plan application below would
            # not compose for one atom).
            raise CardinalityError(
                f"{link_name}: atom {source_id} cannot be linked to itself")
        link = self.schema.link_type(link_name)
        source_type = self.atom_type_name(source_id)
        target_type = self.atom_type_name(target_id)
        if (source_type, target_type) != (link.source, link.target):
            raise UnknownTypeError(
                f"link {link_name!r} connects {link.source}->{link.target}, "
                f"got {source_type}->{target_type}")
        return link

    def _check_cardinality(self, link: LinkType, source_id: int,
                           target_id: int, window: Interval) -> None:
        if not link.cardinality.source_may_have_many:
            for _, version in self.live_pairs(source_id):
                if not version.vt.overlaps(window):
                    continue
                others = version.refs.get(ref_key(link.name, OUT),
                                          frozenset()) - {target_id}
                if others:
                    raise CardinalityError(
                        f"{link.name}: source {source_id} already linked "
                        f"during {version.vt}")
        if not link.cardinality.target_may_have_many:
            for _, version in self.live_pairs(target_id):
                if not version.vt.overlaps(window):
                    continue
                others = version.refs.get(ref_key(link.name, IN),
                                          frozenset()) - {source_id}
                if others:
                    raise CardinalityError(
                        f"{link.name}: target {target_id} already linked "
                        f"during {version.vt}")

    def _ref_plan(self, atom_id: int, key: str, partner: int, add: bool,
                  window: Interval, tt: Timestamp
                  ) -> Tuple[str, hist.HistoryPlan, bool]:
        """Plan adding/removing *partner* in the atom's reference set.

        Pure: nothing is applied.  Returns (type name, plan, changed).
        """
        changed = False

        def transform(version: Version) -> Version:
            nonlocal changed
            refs = {k: set(v) for k, v in version.refs.items()}
            members = refs.setdefault(key, set())
            if add and partner not in members:
                members.add(partner)
                changed = True
            elif not add and partner in members:
                members.discard(partner)
                changed = True
            return version.with_state(
                version.values,
                {k: frozenset(v) for k, v in refs.items() if v})

        type_name = self.atom_type_name(atom_id)
        plan = hist.revise_pairs(self.live_pairs(atom_id), window, tt,
                                 transform)
        return type_name, plan, changed

    def link(self, link_name: str, source_id: int, target_id: int,
             valid_from: Timestamp, tt: Timestamp,
             valid_to: Timestamp = FOREVER) -> List[UndoAction]:
        """Connect two atoms over the window, maintaining symmetry.

        Both sides are planned before either is touched, so a validation
        failure (missing validity, cardinality) leaves no partial state.
        """
        link = self._link_type_for(link_name, source_id, target_id)
        window = Interval(valid_from, valid_to)
        self._check_cardinality(link, source_id, target_id, window)
        src = self._ref_plan(source_id, ref_key(link_name, OUT), target_id,
                             True, window, tt)
        dst = self._ref_plan(target_id, ref_key(link_name, IN), source_id,
                             True, window, tt)
        undos: List[UndoAction] = []
        self._apply_plan(source_id, src[0], src[1], undos)
        self._apply_plan(target_id, dst[0], dst[1], undos)
        return undos

    def unlink(self, link_name: str, source_id: int, target_id: int,
               valid_from: Timestamp, tt: Timestamp,
               valid_to: Timestamp = FOREVER) -> List[UndoAction]:
        """Disconnect two atoms over the window, maintaining symmetry.

        Raises :class:`TemporalUpdateError` — before mutating anything —
        when no reference exists inside the window on either side.
        """
        self._link_type_for(link_name, source_id, target_id)
        window = Interval(valid_from, valid_to)
        src = self._ref_plan(source_id, ref_key(link_name, OUT), target_id,
                             False, window, tt)
        dst = self._ref_plan(target_id, ref_key(link_name, IN), source_id,
                             False, window, tt)
        if not (src[2] or dst[2]):
            raise TemporalUpdateError(
                f"{link_name}: atoms {source_id} and {target_id} are not "
                f"linked inside {window}")
        undos: List[UndoAction] = []
        self._apply_plan(source_id, src[0], src[1], undos)
        self._apply_plan(target_id, dst[0], dst[1], undos)
        return undos

    # ------------------------------------------------------------------
    # Index creation (DDL)
    # ------------------------------------------------------------------

    def create_attribute_index(self, type_name: str,
                               attribute_name: str) -> str:
        """Create and backfill an attribute index."""
        atom_type = self.schema.atom_type(type_name)
        attribute = atom_type.attribute(attribute_name)
        name = self.indexes.create_attribute_index(
            type_name, attribute_name, attribute.data_type.key_width)
        for atom_id in self.atoms_of_type(type_name):
            for stored in self.store.read_all(atom_id):
                _, version = self._decode(stored)
                value = version.values.get(attribute_name)
                if value is None:
                    continue
                key, _ = attribute.data_type.encode_key(value)
                self.indexes.add_attribute_entry(name, key, atom_id)
        return name

    def create_vt_index(self, type_name: str) -> str:
        """Create and backfill a valid-time (change) index."""
        self.schema.atom_type(type_name)
        name = self.indexes.create_vt_index(type_name)
        for atom_id in self.atoms_of_type(type_name):
            for stored in self.store.read_all(atom_id):
                self.indexes.add_vt_entry(name, stored.vt_start, atom_id)
        return name

    # ------------------------------------------------------------------
    # Index-assisted candidate selection (used by the planner)
    # ------------------------------------------------------------------

    def candidates_for_equality(self, type_name: str, attribute_name: str,
                                value: Any) -> Optional[List[int]]:
        """Atom candidates for ``type.attr = value``, or ``None`` when no
        index exists.  Candidates must be rechecked at the queried time."""
        index_name = attribute_index_name(type_name, attribute_name)
        if not self.indexes.has_index(index_name):
            return None
        attribute = self.schema.atom_type(type_name).attribute(attribute_name)
        key, _lossy = attribute.data_type.encode_key(value)
        return self.indexes.candidate_atoms_eq(index_name, key)

    def atoms_changed_during(self, type_name: str, start: Timestamp,
                             end: Timestamp) -> Optional[List[int]]:
        """Atoms of the type with a version starting in [start, end)."""
        name = vt_index_name(type_name)
        if not self.indexes.has_index(name):
            return None
        return self.indexes.atoms_changed_during(name, start, end)

"""The pure bitemporal history algebra.

Everything here is a pure function over sequences of
:class:`~repro.core.version.Version` — no storage, no transactions.  The
engine translates the returned *plans* into version-store operations, and
the in-memory reference oracle executes the same functions directly, which
is what makes differential testing of the engine possible.

Update semantics (valid-time, at transaction time ``tt_now``):

* A change effective from ``t`` applies to every *live* version whose
  validity overlaps ``[t, ...)``.  Each affected version is transaction-
  time **closed** (never destroyed) and replaced by up to two successors:
  an unchanged prefix covering validity before the change window, and a
  changed remainder.
* Logical deletion truncates validity the same way, just without the
  changed remainder.
* Bitemporal **corrections** are the general case: rewrite a past window
  of validity as of a new transaction time; ``AS OF`` an older
  transaction time still reconstructs the superseded belief.

Invariant (checked by :func:`check_history`): at every transaction-time
instant, the versions of one atom believed at that instant have pairwise
disjoint valid-time intervals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.version import Version
from repro.errors import SerializationConflictError, TemporalUpdateError
from repro.temporal import FOREVER, Interval, TemporalElement, Timestamp

#: A transform receives a version and returns its changed successor state
#: (values, refs) — or ``None`` to delete validity inside the window.
StateTransform = Callable[[Version], Optional[Version]]


@dataclass
class HistoryPlan:
    """The delta a revision produces, ready to map onto a version store.

    ``closures`` and ``rewrites`` both replace an existing version record
    (sequence number, new version): a *closure* ends the old version's
    transaction time (history is preserved), a *rewrite* overwrites a
    version created by the very same transaction tick (there is no
    observable knowledge state in which the old content was ever
    believed, so nothing is lost).  ``appends`` add new versions.
    """

    closures: List[Tuple[int, Version]] = field(default_factory=list)
    rewrites: List[Tuple[int, Version]] = field(default_factory=list)
    appends: List[Version] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        return not self.closures and not self.rewrites and not self.appends


# ---------------------------------------------------------------------------
# Selection
# ---------------------------------------------------------------------------


def live_versions(versions: Sequence[Version],
                  tt: Optional[Timestamp] = None
                  ) -> List[Tuple[int, Version]]:
    """Versions believed at transaction time *tt* (default: now/open).

    Returns (sequence number, version) pairs in sequence order.
    """
    if tt is None:
        return [(seq, v) for seq, v in enumerate(versions) if v.live]
    return [(seq, v) for seq, v in enumerate(versions) if v.tt.contains(tt)]


def version_at(versions: Sequence[Version], at: Timestamp,
               tt: Optional[Timestamp] = None) -> Optional[Version]:
    """The version valid at instant *at*, as believed at *tt*."""
    for _, version in live_versions(versions, tt):
        if version.vt.contains(at):
            return version
    return None


def versions_during(versions: Sequence[Version], window: Interval,
                    tt: Optional[Timestamp] = None) -> List[Version]:
    """Believed versions overlapping *window*, sorted by valid time."""
    hits = [v for _, v in live_versions(versions, tt)
            if v.vt.overlaps(window)]
    hits.sort(key=lambda v: v.vt)
    return hits


def lifespan(versions: Sequence[Version],
             tt: Optional[Timestamp] = None) -> TemporalElement:
    """The temporal element over which the atom exists, as believed at *tt*."""
    return TemporalElement(v.vt for _, v in live_versions(versions, tt))


# ---------------------------------------------------------------------------
# Revision (the single general mutation)
# ---------------------------------------------------------------------------


def revise(versions: Sequence[Version], window: Interval,
           tt_now: Timestamp, transform: StateTransform,
           require_overlap: bool = True) -> HistoryPlan:
    """Rewrite the atom's state inside *window* as of *tt_now*.

    Every live version overlapping the window is closed and re-created as:
    unchanged prefix, transformed middle (omitted when *transform* returns
    ``None`` — deletion), unchanged suffix.  Versions outside the window
    are untouched.
    """
    return revise_pairs(live_versions(versions), window, tt_now, transform,
                        require_overlap)


def revise_pairs(live: Sequence[Tuple[int, Version]], window: Interval,
                 tt_now: Timestamp, transform: StateTransform,
                 require_overlap: bool = True) -> HistoryPlan:
    """:func:`revise` over pre-selected live (sequence, version) pairs.

    Revision only ever touches live versions, so callers that can
    enumerate them directly (the engine's live-set cache, a store's
    current segment) skip materialising — and decoding — the closed
    majority of a long history.  *live* must be exactly the atom's live
    versions with their store sequence numbers.
    """
    plan = HistoryPlan()
    touched = False
    for seq, version in live:
        overlap = version.vt.intersect(window)
        if overlap is None:
            continue
        if version.tt.start > tt_now:
            # A conflicting transaction with a later transaction time
            # already committed this state; closing it at tt_now would
            # invert transaction time.  (Transaction times are assigned
            # at begin, lock order at first conflict — the mismatch is
            # resolved by aborting the older-stamped transaction.)
            raise SerializationConflictError(
                f"version committed at tt={version.tt.start} is newer "
                f"than this transaction (tt={tt_now}); retry")
        touched = True
        transformed = transform(version)
        if (transformed is not None
                and dict(transformed.values) == dict(version.values)
                and {k: v for k, v in transformed.refs.items() if v}
                == {k: v for k, v in version.refs.items() if v}):
            # The transform leaves this version's state unchanged:
            # closing and re-creating it would only churn history.
            continue
        new_tt = Interval(tt_now, FOREVER)
        pieces: List[Version] = []
        prefix = version.vt.clamp_end(window.start)
        if prefix is not None:
            pieces.append(Version(prefix, new_tt, version.values,
                                  version.refs))
        if transformed is not None:
            pieces.append(Version(overlap, new_tt, transformed.values,
                                  transformed.refs))
        suffix = version.vt.clamp_start(window.end)
        if suffix is not None:
            pieces.append(Version(suffix, new_tt, version.values,
                                  version.refs))
        if version.tt.start == tt_now:
            # Created by this very transaction tick: no knowledge state
            # ever held the old content, so rewrite it in place.
            if pieces:
                plan.rewrites.append((seq, pieces[0]))
                plan.appends.extend(pieces[1:])
            else:
                # The version vanishes entirely; it remains on record as
                # a stillborn (closed within its creation chronon).
                plan.rewrites.append((seq, Version(
                    version.vt, Interval(tt_now, tt_now + 1),
                    version.values, version.refs)))
        else:
            plan.closures.append((seq, version.closed_at(tt_now)))
            plan.appends.extend(pieces)
    if require_overlap and not touched:
        raise TemporalUpdateError(
            f"atom has no valid state inside {window}")
    return plan


def insert_plan(values: dict, refs: dict, window: Interval,
                tt_now: Timestamp,
                existing: Sequence[Version] = (),
                existing_live: Optional[Sequence[Tuple[int, Version]]] = None
                ) -> HistoryPlan:
    """Plan for asserting a new state over *window*.

    Rejects overlap with currently believed validity — inserting over an
    existing state is a correction, not an insertion.  *existing_live*,
    when given, supplies the pre-selected live pairs and *existing* is
    ignored.
    """
    pairs = (live_versions(existing) if existing_live is None
             else existing_live)
    for _, version in pairs:
        if version.vt.overlaps(window):
            raise TemporalUpdateError(
                f"validity {window} overlaps existing version {version.vt}")
    version = Version(window, Interval(tt_now, FOREVER), dict(values),
                      {k: frozenset(v) for k, v in refs.items()})
    return HistoryPlan(appends=[version])


# ---------------------------------------------------------------------------
# Invariant checking
# ---------------------------------------------------------------------------


def check_history(versions: Sequence[Version]) -> None:
    """Raise :class:`TemporalUpdateError` if the bitemporal invariant fails.

    For every pair of versions whose transaction-time intervals overlap,
    valid-time intervals must be disjoint: no instant of belief ever holds
    two states for the same valid instant.  Pairs created by the *same*
    transaction tick where one side was superseded within that tick
    (intermediate states) are exempt — a transaction may observe its own
    in-progress revisions at its own transaction time.
    """
    for i, a in enumerate(versions):
        for b in versions[i + 1:]:
            if not (a.tt.overlaps(b.tt) and a.vt.overlaps(b.vt)):
                continue
            same_tick = a.tt.start == b.tt.start
            if same_tick and (not a.live or not b.live):
                continue
            raise TemporalUpdateError(
                f"versions {a.vt}@{a.tt} and {b.vt}@{b.tt} overlap "
                f"bitemporally")


def coalesce_timeline(versions: Sequence[Version],
                      tt: Optional[Timestamp] = None) -> List[Version]:
    """The believed timeline with value-identical adjacent versions merged.

    Useful for presenting histories: corrections and prefix splits leave
    adjacent versions with identical state, which readers perceive as one
    period.
    """
    timeline = versions_during(
        versions, Interval.always(), tt)
    merged: List[Version] = []
    for version in timeline:
        if (merged and merged[-1].vt.meets(version.vt)
                and merged[-1].same_state_as(version)):
            merged[-1] = merged[-1].with_vt(
                Interval(merged[-1].vt.start, version.vt.end))
        else:
            merged.append(version)
    return merged

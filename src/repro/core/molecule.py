"""Molecule types and molecule instances.

A *molecule type* is a dynamically definable complex-object type: a
connected DAG over atom types, rooted at one atom type, each edge labelled
with a link type and a traversal direction.  Molecules — the instances —
are derived at query time by following links from root atoms; they are
never stored, which is the MAD model's defining trait (the same atoms can
participate in arbitrarily many molecule types).

Textual form (used by MQL and :meth:`MoleculeType.parse`)::

    Part                                   single-type molecule
    Part.contains.Component                one edge, forward traversal
    Part.contains.Component.supplied_by.Supplier      a path
    Part(.contains.Component)(.documented_by.Document) branches

A dotted step names the link explicitly; the edge traverses the link
forward (source to target) or backward (target to source), whichever
matches the adjacent atom types — when both match (self links), forward
wins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Tuple

from repro.core.schema import Schema
from repro.core.version import IN, OUT, Version, ref_key
from repro.errors import InvalidMoleculeTypeError, ParseError


@dataclass(frozen=True, slots=True)
class MoleculeEdge:
    """One labelled edge of a molecule type.

    ``parent``/``child`` are atom type names; ``forward`` tells whether
    the traversal runs with the link's direction (parent is the link's
    source) or against it.  A *recursive* edge (``parent == child``)
    carries ``max_depth`` — how many times the builder may follow it
    along one path (spelled ``Part.part_of[3].Part`` in the textual
    form).  Non-recursive edges always have ``max_depth == 1``.
    """

    parent: str
    link: str
    child: str
    forward: bool = True
    max_depth: int = 1

    @property
    def is_recursive(self) -> bool:
        return self.parent == self.child

    @property
    def parent_ref_key(self) -> str:
        """The reference-set key followed on the parent's versions."""
        return ref_key(self.link, OUT if self.forward else IN)

    def __str__(self) -> str:
        arrow = "->" if self.forward else "<-"
        bound = f"[{self.max_depth}]" if self.is_recursive else ""
        return f"{self.parent}.{self.link}{bound}{arrow}{self.child}"


class MoleculeType:
    """A rooted, connected DAG over atom types."""

    def __init__(self, root: str, edges: List[MoleculeEdge] = ()) -> None:
        self.root = root
        self.edges: List[MoleculeEdge] = list(edges)

    # -- structure -----------------------------------------------------------

    def atom_type_names(self) -> List[str]:
        """Every atom type in the molecule, root first, no duplicates."""
        names = [self.root]
        for edge in self.edges:
            if edge.child not in names:
                names.append(edge.child)
            if edge.parent not in names:
                names.append(edge.parent)
        return names

    def edges_from(self, type_name: str) -> List[MoleculeEdge]:
        return [edge for edge in self.edges if edge.parent == type_name]

    def validate(self, schema: Schema) -> None:
        """Check the definition against the schema: known types, matching
        links, connectedness, acyclicity."""
        for name in self.atom_type_names():
            schema.atom_type(name)
        reachable = {self.root}
        pending = list(self.edges)
        progressed = True
        while pending and progressed:
            progressed = False
            for edge in list(pending):
                if edge.parent in reachable:
                    reachable.add(edge.child)
                    pending.remove(edge)
                    progressed = True
        if pending:
            raise InvalidMoleculeTypeError(
                f"molecule type is not connected from root {self.root!r}: "
                f"unreachable edges {[str(e) for e in pending]}")
        for edge in self.edges:
            link = schema.link_type(edge.link)
            expected = ((link.source, link.target) if edge.forward
                        else (link.target, link.source))
            if (edge.parent, edge.child) != expected:
                raise InvalidMoleculeTypeError(
                    f"edge {edge} does not match link "
                    f"{link.source}->{link.target}")
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        """Reject cycles in the type graph.

        Direct recursion (``parent == child``) is allowed when bounded —
        that is the MAD model's recursive molecule — so self-edges are
        exempt here; their depth bound is validated separately.
        """
        children: Dict[str, List[str]] = {}
        for edge in self.edges:
            if edge.is_recursive:
                if edge.max_depth < 1:
                    raise InvalidMoleculeTypeError(
                        f"recursive edge {edge} needs a depth bound >= 1")
                continue
            if edge.max_depth != 1:
                raise InvalidMoleculeTypeError(
                    f"edge {edge}: depth bounds apply to recursive "
                    f"(same-type) edges only")
            children.setdefault(edge.parent, []).append(edge.child)
        state: Dict[str, int] = {}  # 1 = visiting, 2 = done

        def visit(node: str, stack: Tuple[str, ...]) -> None:
            if state.get(node) == 1:
                raise InvalidMoleculeTypeError(
                    f"molecule type contains a cycle through {node!r}")
            if state.get(node) == 2:
                return
            state[node] = 1
            for child in children.get(node, ()):
                visit(child, stack + (node,))
            state[node] = 2

        visit(self.root, ())

    def max_path_length(self) -> int:
        """Upper bound on expansion depth along any one path."""
        return 1 + sum(edge.max_depth for edge in self.edges)

    # -- textual form ------------------------------------------------------------

    @classmethod
    def parse(cls, text: str, schema: Schema) -> "MoleculeType":
        """Parse the dotted molecule notation against a schema."""
        text = text.strip()
        if not text:
            raise ParseError("empty molecule type")
        root, rest = _take_identifier(text)
        mtype = cls(root)
        _parse_tail(rest, root, mtype, schema)
        mtype.validate(schema)
        return mtype

    def __str__(self) -> str:
        if not self.edges:
            return self.root
        parts = [self.root]
        for edge in self.edges_from(self.root):
            parts.append(f".{edge.link}.{edge.child}")
        return "".join(parts)

    def __repr__(self) -> str:
        return (f"MoleculeType(root={self.root!r}, "
                f"edges={[str(e) for e in self.edges]})")


def _take_identifier(text: str) -> Tuple[str, str]:
    length = 0
    while length < len(text) and (text[length].isalnum()
                                  or text[length] == "_"):
        length += 1
    if length == 0:
        raise ParseError(f"expected identifier at {text[:20]!r}")
    return text[:length], text[length:]


def _edge_for(schema: Schema, parent: str, link_name: str, child: str,
              max_depth: int = 1) -> MoleculeEdge:
    link = schema.link_type(link_name)
    if (link.source, link.target) == (parent, child):
        return MoleculeEdge(parent, link_name, child, forward=True,
                            max_depth=max_depth)
    if (link.target, link.source) == (parent, child):
        return MoleculeEdge(parent, link_name, child, forward=False,
                            max_depth=max_depth)
    raise InvalidMoleculeTypeError(
        f"link {link_name!r} does not connect {parent!r} to {child!r}")


def _take_depth_bound(text: str) -> Tuple[int, str]:
    """Parse an optional ``[n]`` depth bound; returns (bound, rest)."""
    if not text.startswith("["):
        return 1, text
    end = text.find("]")
    if end < 0:
        raise ParseError("unbalanced '[' in molecule type")
    digits = text[1:end].strip()
    if not digits.isdigit() or int(digits) < 1:
        raise ParseError(
            f"depth bound must be a positive integer, got {digits!r}")
    return int(digits), text[end + 1:]


def _parse_tail(text: str, parent: str, mtype: MoleculeType,
                schema: Schema) -> str:
    """Parse ``.link.Type...`` chains and ``(...)`` branches after *parent*."""
    while text:
        if text[0] == ".":
            link_name, rest = _take_identifier(text[1:])
            max_depth, rest = _take_depth_bound(rest)
            if not rest.startswith("."):
                raise ParseError(
                    f"expected '.AtomType' after link {link_name!r}")
            child, rest = _take_identifier(rest[1:])
            mtype.edges.append(_edge_for(schema, parent, link_name, child,
                                         max_depth))
            parent = child
            text = rest
        elif text[0] == "(":
            depth, end = 1, 1
            while end < len(text) and depth:
                if text[end] == "(":
                    depth += 1
                elif text[end] == ")":
                    depth -= 1
                end += 1
            if depth:
                raise ParseError("unbalanced '(' in molecule type")
            _parse_tail(text[1:end - 1], parent, mtype, schema)
            text = text[end:]
        else:
            raise ParseError(f"unexpected {text[:10]!r} in molecule type")
    return text


# ---------------------------------------------------------------------------
# Instances
# ---------------------------------------------------------------------------


@dataclass
class MoleculeAtom:
    """One atom occurrence inside a molecule instance."""

    atom_id: int
    type_name: str
    version: Version
    children: Dict[MoleculeEdge, List["MoleculeAtom"]] = field(
        default_factory=dict)

    def child_atoms(self, edge: MoleculeEdge) -> List["MoleculeAtom"]:
        return self.children.get(edge, [])

    def to_dict(self) -> Dict[str, Any]:
        return {
            "atom_id": self.atom_id,
            "type": self.type_name,
            "values": dict(self.version.values),
            "valid": str(self.version.vt),
            "children": {
                str(edge): [child.to_dict() for child in children]
                for edge, children in self.children.items()
            },
        }


@dataclass
class Molecule:
    """A derived complex object: the root atom plus its reachable atoms."""

    type: MoleculeType
    root: MoleculeAtom

    def atoms(self) -> Iterator[MoleculeAtom]:
        """Every atom occurrence, preorder from the root.

        An atom reached over several paths appears once per occurrence —
        molecules are DAG-shaped views, and occurrence counts matter to
        projections.
        """
        stack = [self.root]
        while stack:
            atom = stack.pop()
            yield atom
            for children in atom.children.values():
                stack.extend(reversed(children))

    def atom_count(self) -> int:
        return sum(1 for _ in self.atoms())

    def distinct_atom_ids(self) -> List[int]:
        seen: Dict[int, None] = {}
        for atom in self.atoms():
            seen.setdefault(atom.atom_id)
        return list(seen)

    def same_composition_as(self, other: "Molecule") -> bool:
        """Equal structure, atoms, and values (times ignored).

        Only the links the molecule type traverses count: a change in a
        reference set the molecule never follows does not change this
        molecule's composition.
        """
        return _composition(self.root) == _composition(other.root)

    def to_dict(self) -> Dict[str, Any]:
        return {"molecule_type": str(self.type), "root": self.root.to_dict()}


def _composition(atom: MoleculeAtom) -> Tuple[Any, ...]:
    """Structural fingerprint of a molecule subtree (times excluded)."""
    return (atom.atom_id, atom.type_name, tuple(sorted(
        atom.version.values.items(), key=lambda item: item[0])),
        tuple((str(edge), tuple(_composition(child) for child in children))
              for edge, children in sorted(atom.children.items(),
                                           key=lambda item: str(item[0]))))

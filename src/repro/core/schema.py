"""Schema: atom types, attributes, and symmetric link types.

The MAD model's schema is a network of *atom types* connected by *link
types*.  Links are symmetric: a link type ``contains`` from ``Part`` to
``Component`` is traversable in both directions, and the engine maintains
back-references automatically.  Cardinalities constrain the link from the
source's and target's point of view.

The schema is immutable once a database is created over it (schema
evolution is out of scope for the 1992 paper) and serializes to a plain
dictionary for the catalog.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, List, Sequence

from repro.core.datatypes import DataType, parse_datatype
from repro.errors import (
    DuplicateDefinitionError,
    SchemaError,
    TypeMismatchError,
    UnknownTypeError,
)

def _check_name(kind: str, name: str) -> str:
    """Attribute, type, and link names must be usable as MQL identifiers."""
    if not name or not name.replace("_", "a").isalnum() or name[0].isdigit():
        raise SchemaError(f"{kind} name {name!r} is not a valid identifier")
    return name


class Attribute:
    """A typed, optionally required attribute of an atom type."""

    __slots__ = ("name", "data_type", "required")

    def __init__(self, name: str, data_type: DataType,
                 required: bool = False) -> None:
        self.name = _check_name("attribute", name)
        if not isinstance(data_type, DataType):
            raise TypeMismatchError(
                f"attribute {name!r}: expected DataType, got {data_type!r}")
        self.data_type = data_type
        self.required = required

    def __repr__(self) -> str:
        flag = ", required" if self.required else ""
        return f"Attribute({self.name!r}, {self.data_type.value}{flag})"


class AtomType:
    """A named record type; atoms are its (versioned) instances."""

    def __init__(self, name: str, attributes: Sequence[Attribute]) -> None:
        self.name = _check_name("atom type", name)
        self.type_id: int = -1  # assigned when added to a Schema
        self._attributes: Dict[str, Attribute] = {}
        for attribute in attributes:
            if attribute.name in self._attributes:
                raise DuplicateDefinitionError(
                    f"atom type {name!r}: duplicate attribute "
                    f"{attribute.name!r}")
            self._attributes[attribute.name] = attribute

    @property
    def attributes(self) -> List[Attribute]:
        return list(self._attributes.values())

    @property
    def attribute_names(self) -> List[str]:
        return list(self._attributes)

    def attribute(self, name: str) -> Attribute:
        try:
            return self._attributes[name]
        except KeyError:
            raise UnknownTypeError(
                f"atom type {self.name!r} has no attribute {name!r}") from None

    def has_attribute(self, name: str) -> bool:
        return name in self._attributes

    def validate_values(self, values: Dict[str, Any],
                        partial: bool = False) -> Dict[str, Any]:
        """Type-check a value dict against this atom type.

        With ``partial`` (updates), required attributes may be absent but
        must not be set to ``None``.
        """
        unknown = set(values) - set(self._attributes)
        if unknown:
            raise UnknownTypeError(
                f"atom type {self.name!r} has no attributes "
                f"{sorted(unknown)}")
        checked: Dict[str, Any] = {}
        for name, attribute in self._attributes.items():
            if name in values:
                value = attribute.data_type.validate(name, values[name])
                if value is None and attribute.required:
                    raise TypeMismatchError(
                        f"attribute {name!r} of {self.name!r} is required")
                checked[name] = value
            elif not partial:
                if attribute.required:
                    raise TypeMismatchError(
                        f"attribute {name!r} of {self.name!r} is required")
                checked[name] = None
        return checked

    def __repr__(self) -> str:
        return f"AtomType({self.name!r}, {self.attribute_names})"


class Cardinality(enum.Enum):
    """Link cardinality from the source's and target's points of view."""

    ONE_TO_ONE = "1:1"
    ONE_TO_MANY = "1:n"
    MANY_TO_MANY = "n:m"

    @property
    def source_may_have_many(self) -> bool:
        """May one source atom reference several targets?"""
        return self in (Cardinality.ONE_TO_MANY, Cardinality.MANY_TO_MANY)

    @property
    def target_may_have_many(self) -> bool:
        """May one target atom be referenced by several sources?"""
        return self is Cardinality.MANY_TO_MANY


class LinkType:
    """A named, directed, symmetric association between two atom types."""

    __slots__ = ("name", "source", "target", "cardinality")

    def __init__(self, name: str, source: str, target: str,
                 cardinality: Cardinality = Cardinality.MANY_TO_MANY) -> None:
        self.name = _check_name("link type", name)
        self.source = source
        self.target = target
        if not isinstance(cardinality, Cardinality):
            raise TypeMismatchError(
                f"link {name!r}: expected Cardinality, got {cardinality!r}")
        self.cardinality = cardinality

    def other_end(self, type_name: str) -> str:
        """The partner type name, seen from *type_name*."""
        if type_name == self.source:
            return self.target
        if type_name == self.target:
            return self.source
        raise UnknownTypeError(
            f"link {self.name!r} does not touch type {type_name!r}")

    def __repr__(self) -> str:
        return (f"LinkType({self.name!r}, {self.source!r} -> "
                f"{self.target!r}, {self.cardinality.value})")


class Schema:
    """The complete type network of one database."""

    def __init__(self, name: str = "schema") -> None:
        self.name = name
        self._atom_types: Dict[str, AtomType] = {}
        self._link_types: Dict[str, LinkType] = {}

    # -- definition --------------------------------------------------------

    def add_atom_type(self, atom_type: AtomType) -> AtomType:
        if atom_type.name in self._atom_types:
            raise DuplicateDefinitionError(
                f"atom type {atom_type.name!r} already defined")
        atom_type.type_id = len(self._atom_types)
        self._atom_types[atom_type.name] = atom_type
        return atom_type

    def add_link_type(self, link_type: LinkType) -> LinkType:
        if link_type.name in self._link_types:
            raise DuplicateDefinitionError(
                f"link type {link_type.name!r} already defined")
        for end in (link_type.source, link_type.target):
            if end not in self._atom_types:
                raise UnknownTypeError(
                    f"link {link_type.name!r} references unknown atom "
                    f"type {end!r}")
        self._link_types[link_type.name] = link_type
        return link_type

    # -- lookup --------------------------------------------------------------

    @property
    def atom_types(self) -> List[AtomType]:
        return list(self._atom_types.values())

    @property
    def link_types(self) -> List[LinkType]:
        return list(self._link_types.values())

    def atom_type(self, name: str) -> AtomType:
        try:
            return self._atom_types[name]
        except KeyError:
            raise UnknownTypeError(f"unknown atom type {name!r}") from None

    def has_atom_type(self, name: str) -> bool:
        return name in self._atom_types

    def link_type(self, name: str) -> LinkType:
        try:
            return self._link_types[name]
        except KeyError:
            raise UnknownTypeError(f"unknown link type {name!r}") from None

    def has_link_type(self, name: str) -> bool:
        return name in self._link_types

    def links_touching(self, type_name: str) -> List[LinkType]:
        """Every link type with *type_name* as source or target."""
        self.atom_type(type_name)
        return [link for link in self._link_types.values()
                if type_name in (link.source, link.target)]

    def links_between(self, a: str, b: str) -> List[LinkType]:
        """Link types connecting the two atom types, either direction."""
        return [link for link in self._link_types.values()
                if {link.source, link.target} == {a, b}
                or (a == b and link.source == link.target == a)]

    # -- persistence ------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Serialize for the catalog."""
        return {
            "name": self.name,
            "atom_types": [
                {
                    "name": at.name,
                    "attributes": [
                        {"name": attr.name, "type": attr.data_type.value,
                         "required": attr.required}
                        for attr in at.attributes
                    ],
                }
                for at in self._atom_types.values()
            ],
            "link_types": [
                {"name": lt.name, "source": lt.source, "target": lt.target,
                 "cardinality": lt.cardinality.value}
                for lt in self._link_types.values()
            ],
        }

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "Schema":
        schema = cls(document.get("name", "schema"))
        for at_doc in document.get("atom_types", ()):
            attributes = [
                Attribute(a["name"], parse_datatype(a["type"]),
                          required=bool(a.get("required")))
                for a in at_doc.get("attributes", ())
            ]
            schema.add_atom_type(AtomType(at_doc["name"], attributes))
        for lt_doc in document.get("link_types", ()):
            schema.add_link_type(LinkType(
                lt_doc["name"], lt_doc["source"], lt_doc["target"],
                Cardinality(lt_doc.get("cardinality", "n:m"))))
        return schema

    def __repr__(self) -> str:
        return (f"Schema({self.name!r}, {len(self._atom_types)} atom types, "
                f"{len(self._link_types)} link types)")

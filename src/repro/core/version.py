"""Bitemporal version records.

A :class:`Version` is one immutable state of an atom: its attribute
values, its reference sets (per link and direction), a valid-time interval
(*when the state held in the modelled world*), and a transaction-time
interval (*when the database believed it*).

Reference sets are keyed by ``"<link>.out"`` (targets this atom points to
as the link's source) and ``"<link>.in"`` (sources pointing at this atom);
the split keeps self-referencing link types unambiguous and makes the
symmetric back-reference explicit.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, FrozenSet, Mapping

from repro.temporal import FOREVER, Interval

#: Direction suffixes of reference-set keys.
OUT = "out"
IN = "in"


def ref_key(link_name: str, direction: str) -> str:
    """Build the reference-set key for a link and direction."""
    if direction not in (OUT, IN):
        raise ValueError(f"direction must be 'out' or 'in', got {direction!r}")
    return f"{link_name}.{direction}"


def split_ref_key(key: str) -> tuple[str, str]:
    """Inverse of :func:`ref_key`."""
    link_name, _, direction = key.rpartition(".")
    return link_name, direction


@dataclass(frozen=True, slots=True)
class Version:
    """One immutable bitemporal state of an atom."""

    vt: Interval
    tt: Interval
    values: Mapping[str, Any] = field(default_factory=dict)
    refs: Mapping[str, FrozenSet[int]] = field(default_factory=dict)

    @property
    def live(self) -> bool:
        """Part of current knowledge (transaction time still open)?"""
        return self.tt.end == FOREVER

    def targets(self, link_name: str, direction: str = OUT) -> FrozenSet[int]:
        """Partner atom ids for a link in a direction (empty if none)."""
        return self.refs.get(ref_key(link_name, direction), frozenset())

    # -- derivation helpers (used by the history algebra) ---------------------

    def with_vt(self, vt: Interval) -> "Version":
        return replace(self, vt=vt)

    def closed_at(self, tt_now: int) -> "Version":
        """This version with its transaction time closed at *tt_now*."""
        return replace(self, tt=Interval(self.tt.start, tt_now))

    def with_state(self, values: Mapping[str, Any],
                   refs: Mapping[str, FrozenSet[int]]) -> "Version":
        return replace(self, values=dict(values),
                       refs={k: frozenset(v) for k, v in refs.items()})

    def same_state_as(self, other: "Version") -> bool:
        """Equal attribute values and reference sets (times ignored)."""
        return (dict(self.values) == dict(other.values)
                and {k: v for k, v in self.refs.items() if v}
                == {k: v for k, v in other.refs.items() if v})

"""Exception hierarchy for the temporal complex-object engine.

Every error raised by this library derives from :class:`ReproError`, so
applications can catch one base class.  Subsystems raise the most specific
subclass that applies; nothing in the library raises bare ``Exception`` or
``ValueError`` for domain failures (``ValueError``/``TypeError`` are reserved
for plain Python misuse such as passing the wrong argument type).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every error raised by the ``repro`` library."""


# ---------------------------------------------------------------------------
# Temporal algebra
# ---------------------------------------------------------------------------


class TemporalError(ReproError):
    """Base class for errors in the time algebra."""


class InvalidTimestampError(TemporalError):
    """A chronon value is outside the representable domain."""


class InvalidIntervalError(TemporalError):
    """An interval's bounds are inverted or otherwise malformed."""


# ---------------------------------------------------------------------------
# Schema and data model
# ---------------------------------------------------------------------------


class SchemaError(ReproError):
    """Base class for schema-definition errors."""


class DuplicateDefinitionError(SchemaError):
    """An atom type, attribute, or link type was defined twice."""


class UnknownTypeError(SchemaError):
    """A referenced atom type, attribute, or link type does not exist."""


class InvalidMoleculeTypeError(SchemaError):
    """A molecule type definition is not a connected, rooted DAG."""


class DataError(ReproError):
    """Base class for data-level errors (bad values, missing atoms)."""


class TypeMismatchError(DataError):
    """An attribute value does not match the declared data type."""


class UnknownAtomError(DataError):
    """An atom identifier does not denote a (live) atom."""


class CardinalityError(DataError):
    """A link operation would violate the link type's cardinality."""


class TemporalUpdateError(DataError):
    """A valid-time update is inconsistent with the existing history."""


# ---------------------------------------------------------------------------
# Storage system
# ---------------------------------------------------------------------------


class StorageError(ReproError):
    """Base class for storage-layer errors."""


class PageError(StorageError):
    """A page operation failed (bad page id, corrupt page image)."""


class PageFullError(StorageError):
    """A record does not fit into the target page."""


class RecordNotFoundError(StorageError):
    """A record id (RID) does not denote a live record."""


class BufferPoolExhaustedError(StorageError):
    """All buffer frames are pinned; no frame can be evicted."""


class CatalogError(StorageError):
    """The persistent catalog is missing or corrupt."""


class SerializationError(StorageError):
    """A value could not be encoded to or decoded from its record format."""


# ---------------------------------------------------------------------------
# Access system
# ---------------------------------------------------------------------------


class AccessError(ReproError):
    """Base class for access-layer (index) errors."""


class KeyEncodingError(AccessError):
    """A key value cannot be encoded into the fixed-width index format."""


class IndexCorruptError(AccessError):
    """A structural invariant of an index was violated."""


# ---------------------------------------------------------------------------
# Transactions
# ---------------------------------------------------------------------------


class TransactionError(ReproError):
    """Base class for transaction-system errors."""


class TransactionStateError(TransactionError):
    """Operation invalid in the transaction's current state."""


class DeadlockError(TransactionError):
    """The lock manager chose this transaction as a deadlock victim."""


class SerializationConflictError(TransactionError):
    """The transaction would revise knowledge newer than its own
    transaction time (a conflicting transaction with a later timestamp
    already committed).  The operation was not applied; abort and retry
    with a fresh transaction."""


class LockTimeoutError(TransactionError):
    """A lock could not be acquired within the configured timeout."""


class RecoveryError(TransactionError):
    """The write-ahead log could not be replayed."""


class WALError(TransactionError):
    """The write-ahead log is unreadable or corrupt."""


# ---------------------------------------------------------------------------
# Network service layer
# ---------------------------------------------------------------------------


class ServerError(ReproError):
    """Base class for client/server (remote access) errors."""


class ProtocolError(ServerError):
    """A wire frame violates the protocol (bad CRC, oversized length,
    malformed payload, out-of-order handshake)."""


class HandshakeError(ProtocolError):
    """Client and server could not agree on a protocol version."""


class ServerSaturatedError(ServerError):
    """The server shed this request: its admission limits (connections,
    in-flight requests, queue depth) are exhausted.  Transient — back
    off and retry."""


class RequestTimeoutError(ServerError):
    """The request did not obtain an execution slot within the
    per-request timeout.  Transient — back off and retry."""


class ConnectionClosedError(ServerError):
    """The peer closed the connection (or the session was reaped)."""


class ResultTooLargeError(ServerError):
    """A materialized result does not fit one wire frame.

    Not transient — retrying the same request produces the same
    oversized result.  The fix is on the caller's side: stream the
    result through a cursor (``DatabaseClient.query_stream``), which
    pulls it in bounded chunks instead of one frame.
    """


class CursorStateError(ServerError):
    """A streaming-cursor operation is invalid in the cursor's (or the
    connection's) current state: unknown cursor id, too many open
    cursors on one session, or a new request issued while a FETCH is
    still outstanding on the same connection."""


class ReadOnlyReplicaError(ServerError):
    """A write (BEGIN/MUTATE) was sent to a read-only replica.

    Not transient — retrying against the same server can never succeed.
    The message names the primary so a misconfigured client (or a human
    at a shell) can redirect the write; ``ClientPool`` never routes
    writes to replicas in the first place.
    """

    def __init__(self, message: str, primary: str = "") -> None:
        super().__init__(message)
        self.primary = primary


class ReplicationError(ServerError):
    """Log shipping between a primary and a replica broke down: a
    stream gap (the primary truncated records the replica still needs,
    requiring a fresh bootstrap copy), a malformed subscription
    request, or a replica applier fault."""


class RemoteError(ServerError):
    """An error raised server-side and reconstructed at the client.

    ``remote_type`` carries the server-side exception class name and
    ``transient`` whether a retry may succeed.
    """

    def __init__(self, remote_type: str, message: str,
                 transient: bool = False) -> None:
        super().__init__(f"{remote_type}: {message}")
        self.remote_type = remote_type
        self.remote_message = message
        self.transient = transient


#: Error classes a client may transparently retry after a backoff.
TRANSIENT_ERRORS = ("ServerSaturatedError", "RequestTimeoutError",
                    "DeadlockError", "LockTimeoutError")


# ---------------------------------------------------------------------------
# Query language
# ---------------------------------------------------------------------------


class QueryError(ReproError):
    """Base class for query-language errors."""


class LexerError(QueryError):
    """The query text contains an unrecognizable token."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class ParseError(QueryError):
    """The query text does not conform to the MQL grammar."""

    def __init__(self, message: str, position: int = -1) -> None:
        if position >= 0:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class AnalysisError(QueryError):
    """The query is grammatical but inconsistent with the schema."""


class EvaluationError(QueryError):
    """The query failed during execution."""

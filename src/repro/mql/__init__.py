"""Temporal MQL: the molecule query language.

A query names a molecule structure, optional qualifications, and a
temporal clause::

    SELECT ALL
    FROM Part.contains.Component
    WHERE Part.cost > 100 AND Component.weight <= 2.5
    VALID AT 42
    AS OF 17

Clauses:

* ``SELECT ALL`` returns whole molecules; ``SELECT Type.attr, ...``
  projects attribute values (root attributes as scalars, non-root as the
  list of values over the molecule's atoms of that type).
* ``FROM`` uses the molecule notation of
  :meth:`repro.core.molecule.MoleculeType.parse`, including branches.
* ``WHERE`` supports comparisons ``Type.attr <op> literal`` combined with
  ``AND`` / ``OR`` / ``NOT``.  A comparison on a non-root type holds when
  *some* atom of that type in the molecule satisfies it (existential
  semantics over the complex object).
* ``VALID AT t`` time-slices; ``VALID DURING [a, b)`` returns per-root
  molecule states over the window; ``VALID HISTORY`` is the full
  timeline.  Omitting the clause defaults to ``VALID AT NOW`` (the
  highest transaction time spent so far).
* ``AS OF τ`` evaluates against the knowledge state at transaction time
  τ (default: current knowledge).

Pipeline: :mod:`lexer` → :mod:`parser` (AST) → :mod:`analyzer` (schema
resolution) → :mod:`planner` (root-access selection) →
:mod:`evaluator` → :class:`~repro.mql.result.QueryResult`.
"""

from repro.mql.evaluator import execute_query
from repro.mql.lexer import tokenize
from repro.mql.parser import parse_query
from repro.mql.planner import PlanCache
from repro.mql.result import QueryResult, ResultEntry
from repro.mql.stream import StreamingResult, execute_query_stream

__all__ = ["execute_query", "execute_query_stream", "tokenize",
           "parse_query", "PlanCache", "QueryResult", "ResultEntry",
           "StreamingResult"]

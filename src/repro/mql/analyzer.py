"""MQL semantic analysis: resolving the AST against a schema.

Produces an :class:`AnalyzedQuery`: the molecule type with edge
directions resolved, the checked predicate, the checked projection, and
the normalized temporal specification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.datatypes import DataType
from repro.core.molecule import MoleculeEdge, MoleculeType
from repro.core.schema import Schema
from repro.errors import AnalysisError, InvalidMoleculeTypeError, UnknownTypeError
from repro.mql.ast_nodes import (
    Aggregate,
    And,
    AttrPath,
    Comparison,
    CompareOp,
    Not,
    Or,
    ParamRef,
    Predicate,
    Query,
    RawMolecule,
    SelectPaths,
    ValidClause,
)


@dataclass(frozen=True, slots=True)
class AnalyzedQuery:
    """A schema-checked query, ready for planning."""

    query: Query
    molecule_type: MoleculeType
    valid: ValidClause
    as_of: Optional[int]


def analyze(query: Query, schema: Schema) -> AnalyzedQuery:
    """Resolve and check *query* against *schema*."""
    molecule_type = _resolve_molecule(query.molecule, schema)
    type_names = set(molecule_type.atom_type_names())
    if isinstance(query.select, SelectPaths):
        for item in query.select.paths:
            if isinstance(item, Aggregate):
                _check_aggregate(item, type_names, schema)
            else:
                _check_path(item, type_names, schema)
    if query.where is not None:
        _check_predicate(query.where, type_names, schema)
    if query.diff is not None:
        check_diff_bounds(query.diff)
    return AnalyzedQuery(query, molecule_type, query.valid, query.as_of)


def check_diff_bounds(diff) -> None:
    """Validate DIFF's BETWEEN bounds: bound integers with start < end.

    Exposed because the bounds are *value* checks, not type checks — a
    cached analysis keyed by parameter types cannot stand in for them,
    so the evaluator re-runs this on the analysis-reuse path.
    """
    for name, value in (("start", diff.start), ("end", diff.end)):
        if isinstance(value, ParamRef):
            raise AnalysisError(
                f"unbound query parameter ${value.name} in DIFF BETWEEN "
                f"(pass params= to query())")
        if isinstance(value, bool) or not isinstance(value, int):
            raise AnalysisError(
                f"DIFF BETWEEN {name} must be an integer transaction "
                f"time, got {value!r}")
    if diff.start >= diff.end:
        raise AnalysisError(
            f"DIFF BETWEEN needs start < end, got "
            f"{diff.start} and {diff.end}")


def _resolve_molecule(raw: RawMolecule, schema: Schema) -> MoleculeType:
    if not schema.has_atom_type(raw.root):
        raise AnalysisError(f"unknown atom type {raw.root!r} in FROM")
    edges = []
    for raw_edge in raw.edges:
        for name in (raw_edge.parent, raw_edge.child):
            if not schema.has_atom_type(name):
                raise AnalysisError(f"unknown atom type {name!r} in FROM")
        if not schema.has_link_type(raw_edge.link):
            raise AnalysisError(f"unknown link type {raw_edge.link!r} in FROM")
        link = schema.link_type(raw_edge.link)
        if (link.source, link.target) == (raw_edge.parent, raw_edge.child):
            forward = True
        elif (link.target, link.source) == (raw_edge.parent, raw_edge.child):
            forward = False
        else:
            raise AnalysisError(
                f"link {raw_edge.link!r} does not connect "
                f"{raw_edge.parent!r} to {raw_edge.child!r}")
        edges.append(MoleculeEdge(raw_edge.parent, raw_edge.link,
                                  raw_edge.child, forward,
                                  max_depth=raw_edge.max_depth))
    molecule_type = MoleculeType(raw.root, edges)
    try:
        molecule_type.validate(schema)
    except (InvalidMoleculeTypeError, UnknownTypeError) as exc:
        raise AnalysisError(str(exc)) from exc
    return molecule_type


def _check_path(path: AttrPath, type_names: set, schema: Schema) -> None:
    if path.type_name not in type_names:
        raise AnalysisError(
            f"{path}: type {path.type_name!r} is not part of the FROM "
            f"molecule")
    atom_type = schema.atom_type(path.type_name)
    if not atom_type.has_attribute(path.attribute):
        raise AnalysisError(
            f"{path}: {path.type_name!r} has no attribute "
            f"{path.attribute!r}")


_NUMERIC = {DataType.INT, DataType.FLOAT, DataType.TIME}


def _check_aggregate(aggregate: Aggregate, type_names: set,
                     schema: Schema) -> None:
    if aggregate.type_name is not None:
        if aggregate.type_name not in type_names:
            raise AnalysisError(
                f"{aggregate}: type {aggregate.type_name!r} is not part "
                f"of the FROM molecule")
        return
    assert aggregate.path is not None
    _check_path(aggregate.path, type_names, schema)
    if aggregate.func == "COUNT":
        return  # COUNT works on every attribute type
    attribute = schema.atom_type(aggregate.path.type_name).attribute(
        aggregate.path.attribute)
    if aggregate.func in ("SUM", "AVG") and (attribute.data_type
                                             not in _NUMERIC):
        raise AnalysisError(
            f"{aggregate}: {aggregate.func} requires a numeric attribute")


_ORDER_OPS = {CompareOp.LT, CompareOp.LE, CompareOp.GT, CompareOp.GE}

_COMPARABLE = {
    DataType.INT: (int,),
    DataType.TIME: (int,),
    DataType.FLOAT: (int, float),
    DataType.STRING: (str,),
    DataType.BOOL: (bool,),
}


def _check_predicate(predicate: Predicate, type_names: set,
                     schema: Schema) -> None:
    if isinstance(predicate, Comparison):
        _check_path(predicate.path, type_names, schema)
        attribute = schema.atom_type(predicate.path.type_name).attribute(
            predicate.path.attribute)
        value = predicate.literal.value
        if isinstance(value, ParamRef):
            raise AnalysisError(
                f"unbound query parameter ${value.name} "
                f"(pass params= to query())")
        if value is None:
            if predicate.op in _ORDER_OPS:
                raise AnalysisError(
                    f"{predicate.path}: NULL only compares with = and !=")
            return
        allowed = _COMPARABLE[attribute.data_type]
        if isinstance(value, bool) and attribute.data_type is not DataType.BOOL:
            raise AnalysisError(
                f"{predicate.path}: boolean literal against "
                f"{attribute.data_type.value} attribute")
        if not isinstance(value, allowed):
            raise AnalysisError(
                f"{predicate.path}: literal {value!r} incompatible with "
                f"{attribute.data_type.value} attribute")
    elif isinstance(predicate, (And, Or)):
        for operand in predicate.operands:
            _check_predicate(operand, type_names, schema)
    elif isinstance(predicate, Not):
        _check_predicate(predicate.operand, type_names, schema)
    else:  # pragma: no cover - parser produces no other nodes
        raise AnalysisError(f"unknown predicate node {predicate!r}")

"""MQL abstract syntax tree.

The parser produces these nodes without consulting the schema; the
analyzer resolves names (molecule edges, attribute paths, literal types)
and rejects inconsistent queries.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple, Union


# -- FROM clause ------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class RawEdge:
    """One unresolved molecule step: parent type, link name, child type.

    ``max_depth`` is the optional ``[n]`` recursion bound of the step
    (meaningful only when parent and child types coincide).
    """

    parent: str
    link: str
    child: str
    max_depth: int = 1


@dataclass(frozen=True, slots=True)
class RawMolecule:
    """Unresolved molecule structure from the FROM clause."""

    root: str
    edges: Tuple[RawEdge, ...] = ()


# -- SELECT clause ------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class AttrPath:
    """``Type.attribute`` reference."""

    type_name: str
    attribute: str

    def __str__(self) -> str:
        return f"{self.type_name}.{self.attribute}"


@dataclass(frozen=True, slots=True)
class SelectAll:
    """``SELECT ALL`` — whole molecules."""


@dataclass(frozen=True, slots=True)
class Aggregate:
    """``FUNC(Type.attr)`` or ``COUNT(Type)`` over one molecule.

    Aggregation is per complex object: ``AVG(Component.weight)`` is the
    average over the components inside each result molecule, not across
    molecules.
    """

    func: str  # COUNT / SUM / AVG / MIN / MAX
    path: Optional[AttrPath] = None   # FUNC(Type.attr)
    type_name: Optional[str] = None   # COUNT(Type)

    def __str__(self) -> str:
        inner = str(self.path) if self.path is not None else self.type_name
        return f"{self.func}({inner})"


SelectItem = Union[AttrPath, Aggregate]


@dataclass(frozen=True, slots=True)
class SelectPaths:
    """``SELECT Type.attr, FUNC(...), ...`` — projected values."""

    paths: Tuple[SelectItem, ...]


SelectClause = Union[SelectAll, SelectPaths]


# -- WHERE clause -----------------------------------------------------------------


class CompareOp(enum.Enum):
    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="


@dataclass(frozen=True, slots=True)
class Literal:
    """A constant: int, float, str, bool, or None."""

    value: Any


@dataclass(frozen=True, slots=True)
class ParamRef:
    """A ``$name`` placeholder, replaced by a bound value before
    analysis (see :func:`repro.mql.parser.bind_parameters`)."""

    name: str


@dataclass(frozen=True, slots=True)
class Comparison:
    path: AttrPath
    op: CompareOp
    literal: Literal


@dataclass(frozen=True, slots=True)
class And:
    operands: Tuple["Predicate", ...]


@dataclass(frozen=True, slots=True)
class Or:
    operands: Tuple["Predicate", ...]


@dataclass(frozen=True, slots=True)
class Not:
    operand: "Predicate"


Predicate = Union[Comparison, And, Or, Not]


# -- temporal clauses ------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ValidAt:
    at: int


@dataclass(frozen=True, slots=True)
class ValidAtNow:
    """``VALID AT NOW`` or clause omitted: slice at the current moment."""


@dataclass(frozen=True, slots=True)
class ValidDuring:
    start: int
    end: int


@dataclass(frozen=True, slots=True)
class ValidHistory:
    """``VALID HISTORY``: the full timeline."""


ValidClause = Union[ValidAt, ValidAtNow, ValidDuring, ValidHistory]


@dataclass(frozen=True, slots=True)
class DiffClause:
    """``DIFF ... BETWEEN t1 AND t2``: net change events between two
    transaction times, at the current valid instant.  Times may be
    :class:`ParamRef` placeholders until bound."""

    start: Union[int, ParamRef]
    end: Union[int, ParamRef]


@dataclass(frozen=True, slots=True)
class WhenClause:
    """``WHEN <relation> [a, b)``: keep result states whose validity
    stands in the named (liberalized) Allen relation to the interval."""

    relation: str  # OVERLAPS / DURING / CONTAINS / MEETS / BEFORE / ...
    start: int
    end: int


# -- the query --------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Query:
    select: SelectClause
    molecule: RawMolecule
    where: Optional[Predicate] = None
    valid: ValidClause = field(default_factory=ValidAtNow)
    when: Optional[WhenClause] = None
    as_of: Optional[int] = None
    #: ``EXPLAIN ANALYZE`` prefix: execute with per-operator profiling.
    explain: bool = False
    #: ``DIFF`` form: net change events between two transaction times.
    #: Mutually exclusive with VALID/WHEN/AS OF (the grammar enforces it).
    diff: Optional[DiffClause] = None

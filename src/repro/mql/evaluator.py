"""MQL evaluator: executing a planned query against a database.

Execution shape:

1. Obtain root candidates from the plan's access path (index lookup or
   type scan).
2. For a time-slice (``VALID AT``): build each candidate's molecule at
   the instant, evaluate the predicate over the complex object, keep
   survivors.
3. For an interval (``VALID DURING`` / ``VALID HISTORY``): compute each
   candidate's molecule history over the window and keep the states
   satisfying the predicate.
4. Apply the projection.

Predicate semantics over a molecule are existential per comparison: a
comparison on type T holds when some atom of type T inside the molecule
satisfies it; ``NOT`` negates the inner predicate's truth.
"""

from __future__ import annotations

import operator
from typing import Any, Dict, Iterable, List, Optional

from repro.cdc.diff import compute_diff
from repro.core.molecule import Molecule
from repro.errors import EvaluationError
from repro.mql.analyzer import AnalyzedQuery, analyze, check_diff_bounds
from repro.mql.ast_nodes import (
    Aggregate,
    And,
    AttrPath,
    Comparison,
    CompareOp,
    Not,
    Or,
    Predicate,
    SelectPaths,
    ValidAt,
    ValidAtNow,
    ValidDuring,
    ValidHistory,
)
from repro.mql.ast_nodes import WhenClause
from repro.mql.parser import bind_parameters, has_parameters, parse_query
from repro.mql.planner import (
    MAX_PARAM_SIGNATURES,
    CompiledQuery,
    IndexLookup,
    QueryPlan,
    TypeScan,
    param_signature,
    plan,
)
from repro.mql.result import QueryResult, ResultEntry
from repro.obs import NULL_TRACER, QueryProfile
from repro.temporal import FOREVER, TMIN, AllenRelation, Interval, Timestamp, allen_relation

_OPERATORS = {
    CompareOp.EQ: operator.eq,
    CompareOp.NE: operator.ne,
    CompareOp.LT: operator.lt,
    CompareOp.LE: operator.le,
    CompareOp.GT: operator.gt,
    CompareOp.GE: operator.ge,
}


def execute_query(db, text: str,
                  params: Optional[Dict[str, Any]] = None,
                  profile: bool = False) -> QueryResult:
    """Parse, bind ``$name`` parameters, analyze, plan, and run.

    Profiling is enabled by an ``EXPLAIN ANALYZE`` prefix on the query
    text or by ``profile=True``; the result then carries a
    :class:`repro.obs.QueryProfile` in its ``profile`` attribute.
    """
    analyzed = _compile(db, text, params)
    query_plan = plan(analyzed, db.engine)
    return execute_plan(db, query_plan,
                        profile=profile or analyzed.query.explain)


def _compile(db, text: str,
             params: Optional[Dict[str, Any]]) -> AnalyzedQuery:
    """Parse + bind + analyze, through the database's plan cache.

    The cache stores the parsed query per normalized text; for texts
    without ``$name`` placeholders it also stores the analyzed form, so
    a repeated point query skips compilation entirely.  Parameterized
    texts rebind per call (parameters stay late-bound) but reuse the
    analysis of an earlier binding with the *same parameter types*: the
    analyzer's literal checks are type-directed, so a same-typed
    rebinding cannot change the analysis outcome, and the re-analyze
    walk (molecule resolution + schema checks) is skipped.  This is the
    hot path of the server's PREPARE/EXECUTE protocol.
    """
    cache = getattr(db, "_plan_cache", None)
    if cache is None:
        query = bind_parameters(parse_query(text), params)
        return analyze(query, db.schema)
    entry = cache.get(text)
    if entry is None:
        entry = CompiledQuery(parse_query(text), None)
        cache.put(text, entry)
    if not params and entry.analyzed is not None:
        return entry.analyzed
    if not params and not has_parameters(entry.query):
        analyzed = analyze(entry.query, db.schema)
        cache.put(text, CompiledQuery(entry.query, analyzed))
        return analyzed
    # bind_parameters still runs per call: it validates names and value
    # types and substitutes the fresh values into the parsed AST.
    query = bind_parameters(entry.query, params)
    signature = param_signature(params)
    reusable = entry.analyzed_by_types.get(signature)
    if reusable is not None:
        cache.c_param_analysis_hits.inc()
        if query.diff is not None:
            # Analysis reuse is keyed by parameter *types*, but DIFF's
            # bound checks are value checks (start < end): re-run them
            # so a bad rebinding fails identically warm or cold.
            check_diff_bounds(query.diff)
        return AnalyzedQuery(query, reusable.molecule_type,
                             query.valid, query.as_of)
    cache.c_param_analysis_misses.inc()
    analyzed = analyze(query, db.schema)
    if len(entry.analyzed_by_types) < MAX_PARAM_SIGNATURES:
        entry.analyzed_by_types[signature] = analyzed
    return analyzed


def execute_plan(db, query_plan: QueryPlan,
                 profile: bool = False) -> QueryResult:
    """Run an already planned query (the benchmarks reuse plans)."""
    tracer = getattr(db, "tracer", None) or NULL_TRACER
    if profile and tracer is not NULL_TRACER:
        with tracer.capture() as capture:
            result = _execute(db, query_plan, tracer)
        result.profile = QueryProfile(capture.spans,
                                      query_plan.describe())
        return result
    return _execute(db, query_plan, tracer)


def _execute(db, query_plan: QueryPlan, tracer) -> QueryResult:
    analyzed = query_plan.analyzed
    # Compile the plan's pushdown spec against the engine once per
    # execution; engines without pushdown support (oracles, test
    # doubles) silently run the legacy decode-then-filter path.
    pred = projection = None
    if (query_plan.pushdown is not None
            and getattr(db.engine, "supports_pushdown", False)):
        pred, projection = db.engine.compile_pushdown(query_plan.pushdown)
    with tracer.span("mql.execute", plan=query_plan.describe()) as top:
        with tracer.span("access",
                         path=type(query_plan.root_access).__name__) as span:
            roots = _root_candidates(db, query_plan)
            span.set("roots", len(roots))
        if analyzed.query.diff is not None:
            entries = _evaluate_diff(db, analyzed, roots, tracer)
            top.set("entries", len(entries))
            # DIFF rows are event records, not molecules: always
            # projected, never WHEN-filtered (the window *is* the tt
            # range) and never value-projected.
            return QueryResult(entries, query_plan.describe(), True)
        valid = analyzed.valid
        if isinstance(valid, (ValidAt, ValidAtNow)):
            # "NOW" in valid time means the current, open-ended state: the
            # far-future instant every until-changed version contains.
            at = valid.at if isinstance(valid, ValidAt) else FOREVER - 1
            with tracer.span("slice", at=at) as span:
                entries = _evaluate_slice(db, analyzed, roots, at,
                                          pred, projection)
                span.set("entries", len(entries))
        elif isinstance(valid, ValidDuring):
            window = Interval(valid.start, valid.end)
            with tracer.span("window", window=str(window)) as span:
                entries = _evaluate_window(db, analyzed, roots, window,
                                           pred)
                span.set("entries", len(entries))
        elif isinstance(valid, ValidHistory):
            window = Interval(TMIN, FOREVER)
            with tracer.span("window", window="history") as span:
                entries = _evaluate_window(db, analyzed, roots, window,
                                           pred)
                span.set("entries", len(entries))
        else:  # pragma: no cover - parser produces no other clause
            raise EvaluationError(f"unknown temporal clause {valid!r}")
        if analyzed.query.when is not None:
            with tracer.span("filter.when",
                             relation=analyzed.query.when.relation) as span:
                entries = _filter_when(entries, analyzed.query.when)
                span.set("entries", len(entries))
        with tracer.span("project") as span:
            entries = _project(analyzed, entries)
            span.set("entries", len(entries))
        top.set("entries", len(entries))
    return QueryResult(entries, query_plan.describe(),
                       isinstance(analyzed.query.select, SelectPaths))


#: Liberalized relation groups for the WHEN clause: each named relation
#: admits the Allen relations a user colloquially means by it.  OVERLAPS
#: means "shares at least one chronon"; DURING means "lies inside";
#: CONTAINS means "covers"; the remaining names are exact.
_WHEN_GROUPS = {
    "OVERLAPS": {AllenRelation.OVERLAPS, AllenRelation.OVERLAPPED_BY,
                 AllenRelation.STARTS, AllenRelation.STARTED_BY,
                 AllenRelation.DURING, AllenRelation.CONTAINS,
                 AllenRelation.FINISHES, AllenRelation.FINISHED_BY,
                 AllenRelation.EQUALS},
    "DURING": {AllenRelation.DURING, AllenRelation.STARTS,
               AllenRelation.FINISHES, AllenRelation.EQUALS},
    "CONTAINS": {AllenRelation.CONTAINS, AllenRelation.STARTED_BY,
                 AllenRelation.FINISHED_BY, AllenRelation.EQUALS},
    "MEETS": {AllenRelation.MEETS},
    "BEFORE": {AllenRelation.BEFORE},
    "AFTER": {AllenRelation.AFTER},
    "EQUALS": {AllenRelation.EQUALS},
    "STARTS": {AllenRelation.STARTS},
    "FINISHES": {AllenRelation.FINISHES},
}


def _filter_when(entries: List[ResultEntry],
                 when: WhenClause) -> List[ResultEntry]:
    try:
        reference = Interval(when.start, when.end)
    except Exception as exc:
        raise EvaluationError(f"bad WHEN interval: {exc}") from exc
    try:
        admitted = _WHEN_GROUPS[when.relation]
    except KeyError:  # pragma: no cover - parser whitelists relations
        raise EvaluationError(
            f"unknown WHEN relation {when.relation!r}") from None
    return [entry for entry in entries
            if allen_relation(entry.valid, reference) in admitted]


# -- root candidates -----------------------------------------------------------


def _root_candidates(db, query_plan: QueryPlan) -> List[int]:
    access = query_plan.root_access
    if isinstance(access, IndexLookup):
        candidates = db.engine.candidates_for_equality(
            access.type_name, access.attribute, access.value)
        if candidates is None:  # index dropped between plan and run
            return sorted(db.engine.atoms_of_type(access.type_name))
        return sorted(candidates)
    if isinstance(access, TypeScan):
        return sorted(db.engine.atoms_of_type(access.type_name))
    raise EvaluationError(f"unknown access path {access!r}")  # pragma: no cover


# -- evaluation ------------------------------------------------------------------


def _evaluate_slice(db, analyzed: AnalyzedQuery, roots: Iterable[int],
                    at: Timestamp, pred=None,
                    projection=None) -> List[ResultEntry]:
    tt = analyzed.as_of
    entries: List[ResultEntry] = []
    # All candidate roots grow level-at-a-time through one shared
    # version batch per depth; roots invalid at the instant drop out.
    # The pushed predicate drops non-qualifying roots *inside* the
    # store, before decode; _satisfies below still re-filters, so the
    # pushdown can only remove work, never change the answer.
    molecules = db.builder.build_many(roots, analyzed.molecule_type, at, tt,
                                      root_pred=pred, projection=projection)
    for molecule in molecules:
        if not _satisfies(analyzed.query.where, molecule):
            continue
        entries.append(ResultEntry(molecule.root.atom_id,
                                   Interval.instant(at), molecule, None))
    return entries


def _evaluate_diff(db, analyzed: AnalyzedQuery, roots: List[int],
                   tracer) -> List[ResultEntry]:
    """``DIFF m BETWEEN t1 AND t2``: net change events per molecule.

    Two bitemporal slices of every candidate molecule — the current
    valid instant as believed at t1 and at t2 — define the diff's
    *scope* (which atoms belong to each complex object at either
    endpoint); the per-atom deltas themselves come from the version
    histories via :func:`repro.cdc.diff.compute_diff`, so the rows are
    byte-identical to folding the SUBSCRIBE change stream over
    ``(t1, t2]``.  WHERE keeps a molecule when either endpoint state
    satisfies it (a predicate on vanished state still matters for "what
    changed about X").
    """
    diff = analyzed.query.diff
    t1, t2 = diff.start, diff.end
    at = FOREVER - 1
    entries: List[ResultEntry] = []
    with tracer.span("diff", t1=t1, t2=t2) as dspan:
        with tracer.span("slice", at=at, tt=t1) as span:
            before = {m.root.atom_id: m for m in db.builder.build_many(
                roots, analyzed.molecule_type, at, t1)}
            span.set("entries", len(before))
        with tracer.span("slice", at=at, tt=t2) as span:
            after = {m.root.atom_id: m for m in db.builder.build_many(
                roots, analyzed.molecule_type, at, t2)}
            span.set("entries", len(after))
        with tracer.span("compare") as span:
            where = analyzed.query.where
            scopes: Dict[int, Dict[int, Optional[str]]] = {}
            for root_id in roots:
                m1 = before.get(root_id)
                m2 = after.get(root_id)
                if m1 is None and m2 is None:
                    continue
                if where is not None and not (
                        (m1 is not None and _satisfies(where, m1))
                        or (m2 is not None and _satisfies(where, m2))):
                    continue
                scope: Dict[int, Optional[str]] = {}
                for molecule in (m1, m2):
                    if molecule is None:
                        continue
                    for atom in molecule.atoms():
                        scope[atom.atom_id] = atom.type_name
                scopes[root_id] = scope
            rows = compute_diff(db.engine, scopes, t1, t2, at=at)
            window = Interval(t1, t2)
            for root_id in sorted(scopes):
                for row in rows.get(root_id, ()):
                    entries.append(ResultEntry(root_id, window, None, row))
            span.set("entries", len(entries))
        dspan.set("entries", len(entries))
    return entries


def _evaluate_window(db, analyzed: AnalyzedQuery, roots: Iterable[int],
                     window: Interval, pred=None) -> List[ResultEntry]:
    tt = analyzed.as_of
    entries: List[ResultEntry] = []
    if pred is not None:
        # Existential prune: roots with no stored version passing the
        # pushed comparison can never yield a qualifying slice, so
        # their whole histories are skipped before a single decode.
        roots = db.engine.prune_roots(roots, pred)
    for root_id in roots:
        for span, molecule in db.builder.build_history(
                root_id, analyzed.molecule_type, window, tt):
            if not _satisfies(analyzed.query.where, molecule):
                continue
            entries.append(ResultEntry(root_id, span, molecule, None))
    return entries


def _satisfies(predicate: Optional[Predicate],
               molecule: Molecule) -> bool:
    if predicate is None:
        return True
    if isinstance(predicate, Comparison):
        compare = _OPERATORS[predicate.op]
        expected = predicate.literal.value
        for value in _path_values(molecule, predicate.path):
            if expected is None:
                if ((value is None and predicate.op is CompareOp.EQ)
                        or (value is not None
                            and predicate.op is CompareOp.NE)):
                    return True
                continue
            if value is None:
                continue
            try:
                if compare(value, expected):
                    return True
            except TypeError:
                continue
        return False
    if isinstance(predicate, And):
        return all(_satisfies(operand, molecule)
                   for operand in predicate.operands)
    if isinstance(predicate, Or):
        return any(_satisfies(operand, molecule)
                   for operand in predicate.operands)
    if isinstance(predicate, Not):
        return not _satisfies(predicate.operand, molecule)
    raise EvaluationError(f"unknown predicate {predicate!r}")  # pragma: no cover


def _path_values(molecule: Molecule, path: AttrPath) -> List[Any]:
    return [atom.version.values.get(path.attribute)
            for atom in molecule.atoms()
            if atom.type_name == path.type_name]


# -- projection ----------------------------------------------------------------------


def _project(analyzed: AnalyzedQuery,
             entries: List[ResultEntry]) -> List[ResultEntry]:
    select = analyzed.query.select
    if not isinstance(select, SelectPaths):
        return entries
    root_type = analyzed.molecule_type.root
    projected: List[ResultEntry] = []
    for entry in entries:
        molecule = entry.molecule
        assert molecule is not None
        row: Dict[str, Any] = {}
        for item in select.paths:
            if isinstance(item, Aggregate):
                row[str(item)] = _aggregate_value(molecule, item)
                continue
            values = _path_values(molecule, item)
            if item.type_name == root_type:
                row[str(item)] = values[0] if values else None
            else:
                row[str(item)] = values
        projected.append(ResultEntry(entry.root_id, entry.valid, None, row))
    return projected


def _aggregate_value(molecule: Molecule, aggregate: Aggregate) -> Any:
    """Compute one aggregate over one molecule.

    ``COUNT(Type)`` counts atom occurrences of the type; value
    aggregates skip NULLs; SUM/AVG/MIN/MAX over no values yield None
    (SQL convention), COUNT yields 0.
    """
    if aggregate.type_name is not None:
        return sum(1 for atom in molecule.atoms()
                   if atom.type_name == aggregate.type_name)
    values = [value for value in _path_values(molecule, aggregate.path)
              if value is not None]
    if aggregate.func == "COUNT":
        return len(values)
    if not values:
        return None
    if aggregate.func == "SUM":
        return sum(values)
    if aggregate.func == "AVG":
        return sum(values) / len(values)
    if aggregate.func == "MIN":
        return min(values)
    if aggregate.func == "MAX":
        return max(values)
    raise EvaluationError(  # pragma: no cover - parser whitelists
        f"unknown aggregate {aggregate.func!r}")

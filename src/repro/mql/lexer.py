"""MQL lexer: query text to a token stream.

Keywords are case-insensitive; identifiers are case-sensitive (they name
schema elements).  Strings use single or double quotes with backslash
escapes.  Numbers are integers or floats; a leading ``-`` on a numeric
literal is part of the literal (MQL has no arithmetic).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.errors import LexerError


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    INT = "int"
    FLOAT = "float"
    STRING = "string"
    SYMBOL = "symbol"
    PARAM = "param"  # $name placeholder, bound at execution
    END = "end"


KEYWORDS = {
    "SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "ALL",
    "VALID", "AT", "DURING", "HISTORY", "AS", "OF",
    "TRUE", "FALSE", "NULL", "NOW", "FOREVER", "TMIN",
    # Profiling prefix: EXPLAIN ANALYZE <query>.
    "EXPLAIN", "ANALYZE",
    # WHEN clause: Allen-style relations on result validity.
    "WHEN", "OVERLAPS", "CONTAINS", "MEETS", "BEFORE", "AFTER",
    "EQUALS", "STARTS", "FINISHES",
    # Aggregates over molecule contents.
    "COUNT", "SUM", "AVG", "MIN", "MAX",
    # Temporal diff: DIFF <molecule> BETWEEN t1 AND t2.
    "DIFF", "BETWEEN",
}

#: Multi-character symbols first so maximal munch applies.
SYMBOLS = ["!=", "<=", ">=", "=", "<", ">", ".", ",", "(", ")", "[", "]"]


#: Keywords that may still be used as identifiers (type, attribute, and
#: link names) — they only act as keywords in their clause position.
#: ``contains`` being a popular link name is the motivating case.
SOFT_KEYWORDS = {"OVERLAPS", "CONTAINS", "MEETS", "BEFORE", "AFTER",
                 "EQUALS", "STARTS", "FINISHES", "WHEN", "AT", "OF",
                 "DURING", "HISTORY", "COUNT", "SUM", "AVG", "MIN", "MAX",
                 "EXPLAIN", "ANALYZE", "DIFF", "BETWEEN"}


@dataclass(frozen=True, slots=True)
class Token:
    type: TokenType
    value: str
    position: int
    text: str = ""  # original spelling (differs from value for keywords)

    def is_keyword(self, word: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value == word

    @property
    def ident_text(self) -> str:
        """The token as an identifier, when that reading is allowed."""
        return self.text or self.value

    @property
    def may_be_identifier(self) -> bool:
        return (self.type is TokenType.IDENT
                or (self.type is TokenType.KEYWORD
                    and self.value in SOFT_KEYWORDS))

    def __str__(self) -> str:
        return self.value if self.type is not TokenType.END else "<end>"


def tokenize(text: str) -> List[Token]:
    """Lex *text* into tokens, ending with an END token."""
    tokens: List[Token] = []
    at = 0
    length = len(text)
    while at < length:
        char = text[at]
        if char.isspace():
            at += 1
            continue
        if char.isalpha() or char == "_":
            start = at
            while at < length and (text[at].isalnum() or text[at] == "_"):
                at += 1
            word = text[start:at]
            if word.upper() in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, word.upper(), start,
                                    word))
            else:
                tokens.append(Token(TokenType.IDENT, word, start))
            continue
        if char.isdigit() or (char == "-" and at + 1 < length
                              and text[at + 1].isdigit()):
            start = at
            at += 1
            is_float = False
            while at < length and (text[at].isdigit() or text[at] == "."):
                if text[at] == ".":
                    # A digit must follow for this to be a float; else the
                    # dot belongs to a path (``42.x`` is invalid anyway).
                    if is_float or at + 1 >= length or not text[at + 1].isdigit():
                        break
                    is_float = True
                at += 1
            if at < length and text[at] in "eE" and not is_float:
                pass  # no scientific notation without a decimal point
            word = text[start:at]
            tokens.append(Token(TokenType.FLOAT if is_float else TokenType.INT,
                                word, start))
            continue
        if char == "$":
            start = at
            at += 1
            name_start = at
            while at < length and (text[at].isalnum() or text[at] == "_"):
                at += 1
            if at == name_start:
                raise LexerError("expected a parameter name after '$'",
                                 start)
            tokens.append(Token(TokenType.PARAM, text[name_start:at],
                                start))
            continue
        if char in ("'", '"'):
            start = at
            at += 1
            parts: List[str] = []
            while at < length and text[at] != char:
                if text[at] == "\\" and at + 1 < length:
                    at += 1
                parts.append(text[at])
                at += 1
            if at >= length:
                raise LexerError("unterminated string literal", start)
            at += 1  # closing quote
            tokens.append(Token(TokenType.STRING, "".join(parts), start))
            continue
        for symbol in SYMBOLS:
            if text.startswith(symbol, at):
                tokens.append(Token(TokenType.SYMBOL, symbol, at))
                at += len(symbol)
                break
        else:
            raise LexerError(f"unexpected character {char!r}", at)
    tokens.append(Token(TokenType.END, "", length))
    return tokens

"""MQL recursive-descent parser."""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ParseError
from repro.mql.ast_nodes import (
    Aggregate,
    And,
    AttrPath,
    Comparison,
    CompareOp,
    DiffClause,
    Literal,
    Not,
    Or,
    ParamRef,
    Predicate,
    Query,
    RawEdge,
    RawMolecule,
    SelectAll,
    SelectClause,
    SelectPaths,
    ValidAt,
    ValidAtNow,
    ValidClause,
    ValidDuring,
    ValidHistory,
    WhenClause,
)
from repro.mql.lexer import Token, TokenType, tokenize
from repro.temporal import FOREVER, TMIN


class _Stream:
    """Cursor over the token list with expectation helpers."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._at = 0

    @property
    def current(self) -> Token:
        return self._tokens[self._at]

    def advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.END:
            self._at += 1
        return token

    def accept_keyword(self, word: str) -> bool:
        if self.current.is_keyword(word):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> Token:
        if not self.current.is_keyword(word):
            raise ParseError(f"expected {word}, got {self.current}",
                             self.current.position)
        return self.advance()

    def accept_symbol(self, symbol: str) -> bool:
        token = self.current
        if token.type is TokenType.SYMBOL and token.value == symbol:
            self.advance()
            return True
        return False

    def expect_symbol(self, symbol: str) -> Token:
        token = self.current
        if token.type is not TokenType.SYMBOL or token.value != symbol:
            raise ParseError(f"expected {symbol!r}, got {token}",
                             token.position)
        return self.advance()

    def expect_ident(self) -> str:
        token = self.current
        if not token.may_be_identifier:
            raise ParseError(f"expected identifier, got {token}",
                             token.position)
        return self.advance().ident_text


def parse_query(text: str) -> Query:
    """Parse one MQL query; raises :class:`ParseError` on bad syntax."""
    stream = _Stream(tokenize(text))
    explain = False
    if stream.accept_keyword("EXPLAIN"):
        stream.expect_keyword("ANALYZE")
        explain = True
    if stream.accept_keyword("DIFF"):
        return _parse_diff(stream, explain)
    stream.expect_keyword("SELECT")
    select = _parse_select(stream)
    stream.expect_keyword("FROM")
    molecule = _parse_molecule(stream)
    where: Optional[Predicate] = None
    if stream.accept_keyword("WHERE"):
        where = _parse_or(stream)
    valid: ValidClause = ValidAtNow()
    if stream.accept_keyword("VALID"):
        valid = _parse_valid(stream)
    when: Optional[WhenClause] = None
    if stream.accept_keyword("WHEN"):
        when = _parse_when(stream)
    as_of: Optional[int] = None
    if stream.accept_keyword("AS"):
        stream.expect_keyword("OF")
        as_of = _parse_time(stream)
    if stream.current.type is not TokenType.END:
        raise ParseError(f"unexpected trailing {stream.current}",
                         stream.current.position)
    return Query(select, molecule, where, valid, when, as_of, explain)


def _parse_diff(stream: _Stream, explain: bool) -> Query:
    """``DIFF <molecule> BETWEEN t1 AND t2 [WHERE ...]``.

    A DIFF query has no VALID/WHEN/AS OF clauses: the two BETWEEN
    times *are* its temporal specification (transaction times; the
    valid instant is the current state, as with an omitted VALID).
    """
    molecule = _parse_molecule(stream)
    stream.expect_keyword("BETWEEN")
    start = _parse_time_or_param(stream)
    stream.expect_keyword("AND")
    end = _parse_time_or_param(stream)
    where: Optional[Predicate] = None
    if stream.accept_keyword("WHERE"):
        where = _parse_or(stream)
    if stream.current.type is not TokenType.END:
        raise ParseError(f"unexpected trailing {stream.current}",
                         stream.current.position)
    return Query(SelectAll(), molecule, where, ValidAtNow(), None, None,
                 explain, DiffClause(start, end))


# -- SELECT -----------------------------------------------------------------


_AGGREGATES = ("COUNT", "SUM", "AVG", "MIN", "MAX")


def _parse_select(stream: _Stream) -> SelectClause:
    if stream.accept_keyword("ALL"):
        return SelectAll()
    items = [_parse_select_item(stream)]
    while stream.accept_symbol(","):
        items.append(_parse_select_item(stream))
    return SelectPaths(tuple(items))


def _parse_select_item(stream: _Stream):
    # An aggregate keyword only acts as one when a '(' follows — so
    # attributes named "count" etc. keep working.
    token = stream.current
    for func in _AGGREGATES:
        if token.is_keyword(func):
            after = stream._tokens[stream._at + 1]
            if after.type is TokenType.SYMBOL and after.value == "(":
                stream.advance()
                stream.expect_symbol("(")
                name = stream.expect_ident()
                if stream.accept_symbol("."):
                    attribute = stream.expect_ident()
                    item = Aggregate(func, AttrPath(name, attribute))
                elif func == "COUNT":
                    item = Aggregate(func, type_name=name)
                else:
                    raise ParseError(
                        f"{func} needs Type.attribute (only COUNT "
                        f"accepts a bare type)", token.position)
                stream.expect_symbol(")")
                return item
    return _parse_attr_path(stream)


def _parse_attr_path(stream: _Stream) -> AttrPath:
    type_name = stream.expect_ident()
    stream.expect_symbol(".")
    attribute = stream.expect_ident()
    return AttrPath(type_name, attribute)


# -- FROM ------------------------------------------------------------------------


def _parse_molecule(stream: _Stream) -> RawMolecule:
    root = stream.expect_ident()
    edges: List[RawEdge] = []
    _parse_molecule_tail(stream, root, edges)
    return RawMolecule(root, tuple(edges))


def _parse_molecule_tail(stream: _Stream, parent: str,
                         edges: List[RawEdge]) -> None:
    while True:
        if stream.accept_symbol("."):
            link = stream.expect_ident()
            max_depth = 1
            if stream.accept_symbol("["):
                token = stream.current
                if token.type is not TokenType.INT or int(token.value) < 1:
                    raise ParseError(
                        f"depth bound must be a positive integer, "
                        f"got {token}", token.position)
                max_depth = int(stream.advance().value)
                stream.expect_symbol("]")
            stream.expect_symbol(".")
            child = stream.expect_ident()
            edges.append(RawEdge(parent, link, child, max_depth))
            parent = child
        elif stream.accept_symbol("("):
            _parse_molecule_tail(stream, parent, edges)
            stream.expect_symbol(")")
        else:
            return


# -- WHERE ----------------------------------------------------------------------------


def _parse_or(stream: _Stream) -> Predicate:
    operands = [_parse_and(stream)]
    while stream.accept_keyword("OR"):
        operands.append(_parse_and(stream))
    return operands[0] if len(operands) == 1 else Or(tuple(operands))


def _parse_and(stream: _Stream) -> Predicate:
    operands = [_parse_not(stream)]
    while stream.accept_keyword("AND"):
        operands.append(_parse_not(stream))
    return operands[0] if len(operands) == 1 else And(tuple(operands))


def _parse_not(stream: _Stream) -> Predicate:
    if stream.accept_keyword("NOT"):
        return Not(_parse_not(stream))
    if stream.accept_symbol("("):
        inner = _parse_or(stream)
        stream.expect_symbol(")")
        return inner
    return _parse_comparison(stream)


_OPS = {op.value: op for op in CompareOp}


def _parse_comparison(stream: _Stream) -> Comparison:
    path = _parse_attr_path(stream)
    token = stream.current
    if token.type is not TokenType.SYMBOL or token.value not in _OPS:
        raise ParseError(f"expected comparison operator, got {token}",
                         token.position)
    op = _OPS[stream.advance().value]
    return Comparison(path, op, _parse_literal(stream))


def _parse_literal(stream: _Stream) -> Literal:
    token = stream.current
    if token.type is TokenType.PARAM:
        stream.advance()
        return Literal(ParamRef(token.value))
    if token.type is TokenType.INT:
        stream.advance()
        return Literal(int(token.value))
    if token.type is TokenType.FLOAT:
        stream.advance()
        return Literal(float(token.value))
    if token.type is TokenType.STRING:
        stream.advance()
        return Literal(token.value)
    if token.is_keyword("TRUE"):
        stream.advance()
        return Literal(True)
    if token.is_keyword("FALSE"):
        stream.advance()
        return Literal(False)
    if token.is_keyword("NULL"):
        stream.advance()
        return Literal(None)
    raise ParseError(f"expected literal, got {token}", token.position)


# -- temporal clauses ----------------------------------------------------------------------


def _parse_time(stream: _Stream) -> int:
    token = stream.current
    if token.type is TokenType.INT:
        stream.advance()
        return int(token.value)
    if token.is_keyword("FOREVER"):
        stream.advance()
        return FOREVER
    if token.is_keyword("TMIN"):
        stream.advance()
        return TMIN
    raise ParseError(f"expected a time, got {token}", token.position)


def _parse_time_or_param(stream: _Stream):
    """A time, or a ``$name`` placeholder (DIFF bounds are bindable)."""
    token = stream.current
    if token.type is TokenType.PARAM:
        stream.advance()
        return ParamRef(token.value)
    return _parse_time(stream)


def _parse_valid(stream: _Stream) -> ValidClause:
    if stream.accept_keyword("AT"):
        if stream.accept_keyword("NOW"):
            return ValidAtNow()
        return ValidAt(_parse_time(stream))
    if stream.accept_keyword("DURING"):
        stream.expect_symbol("[")
        start = _parse_time(stream)
        stream.expect_symbol(",")
        end = _parse_time(stream)
        if not stream.accept_symbol(")"):
            stream.expect_symbol("]")  # tolerate a closed-bracket spelling
        return ValidDuring(start, end)
    if stream.accept_keyword("HISTORY"):
        return ValidHistory()
    raise ParseError(f"expected AT, DURING, or HISTORY after VALID, "
                     f"got {stream.current}", stream.current.position)


# -- parameter binding ---------------------------------------------------------


def has_parameters(query: Query) -> bool:
    """Whether any ``$name`` placeholder remains unbound (in the WHERE
    clause or in DIFF's BETWEEN bounds)."""
    def walk(predicate) -> bool:
        if isinstance(predicate, Comparison):
            return isinstance(predicate.literal.value, ParamRef)
        if isinstance(predicate, (And, Or)):
            return any(walk(operand) for operand in predicate.operands)
        if isinstance(predicate, Not):
            return walk(predicate.operand)
        return False
    if query.diff is not None and (
            isinstance(query.diff.start, ParamRef)
            or isinstance(query.diff.end, ParamRef)):
        return True
    return query.where is not None and walk(query.where)


def bind_parameters(query: Query, params: Optional[dict]) -> Query:
    """Replace ``$name`` placeholders with bound values.

    Every placeholder must be bound and every binding used; values must
    be int, float, str, bool, or None.  Returns a new query (the AST is
    immutable).
    """
    params = params or {}
    used: set = set()

    def bind_predicate(predicate):
        if isinstance(predicate, Comparison):
            literal = predicate.literal
            if isinstance(literal.value, ParamRef):
                name = literal.value.name
                if name not in params:
                    raise ParseError(f"unbound query parameter ${name}")
                value = params[name]
                if value is not None and not isinstance(
                        value, (int, float, str, bool)):
                    raise ParseError(
                        f"parameter ${name} has unsupported type "
                        f"{type(value).__name__}")
                used.add(name)
                return Comparison(predicate.path, predicate.op,
                                  Literal(value))
            return predicate
        if isinstance(predicate, And):
            return And(tuple(bind_predicate(op)
                             for op in predicate.operands))
        if isinstance(predicate, Or):
            return Or(tuple(bind_predicate(op)
                            for op in predicate.operands))
        if isinstance(predicate, Not):
            return Not(bind_predicate(predicate.operand))
        return predicate

    def bind_time(value):
        if not isinstance(value, ParamRef):
            return value
        if value.name not in params:
            raise ParseError(f"unbound query parameter ${value.name}")
        bound = params[value.name]
        if isinstance(bound, bool) or not isinstance(bound, int):
            raise ParseError(
                f"parameter ${value.name} must be an integer time, "
                f"got {type(bound).__name__}")
        used.add(value.name)
        return bound

    where = bind_predicate(query.where) if query.where is not None else None
    diff = query.diff
    if diff is not None:
        diff = DiffClause(bind_time(diff.start), bind_time(diff.end))
    unused = set(params) - used
    if unused:
        raise ParseError(
            f"unused query parameters: "
            f"{', '.join('$' + name for name in sorted(unused))}")
    return Query(query.select, query.molecule, where, query.valid,
                 query.when, query.as_of, query.explain, diff)


_WHEN_RELATIONS = ("OVERLAPS", "DURING", "CONTAINS", "MEETS", "BEFORE",
                   "AFTER", "EQUALS", "STARTS", "FINISHES")


def _parse_when(stream: _Stream) -> WhenClause:
    for relation in _WHEN_RELATIONS:
        if stream.accept_keyword(relation):
            break
    else:
        raise ParseError(
            f"expected an interval relation after WHEN "
            f"(one of {', '.join(_WHEN_RELATIONS)}), got {stream.current}",
            stream.current.position)
    stream.expect_symbol("[")
    start = _parse_time(stream)
    stream.expect_symbol(",")
    end = _parse_time(stream)
    if not stream.accept_symbol(")"):
        stream.expect_symbol("]")
    return WhenClause(relation, start, end)

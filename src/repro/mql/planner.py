"""MQL planner: choosing how root atoms are found.

The only planning decision a molecule query needs (molecule construction
itself is fixed by the molecule type) is *root selection*:

* ``IndexLookup`` — a top-level conjunctive equality predicate on a root
  attribute with an existing attribute index supplies candidate atoms
  (which the evaluator still rechecks, since the index covers values of
  every version ever written).
* ``TypeScan`` — otherwise, enumerate all atoms of the root type.

This is exactly the choice experiment R-T4 measures.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.core.engine import StorageEngine
from repro.mql.analyzer import AnalyzedQuery
from repro.mql.ast_nodes import (
    Aggregate,
    And,
    Comparison,
    CompareOp,
    Not,
    Or,
    Predicate,
    Query,
    SelectPaths,
    ValidAt,
    ValidAtNow,
)


@dataclass(frozen=True, slots=True)
class TypeScan:
    """Enumerate every atom of the root type."""

    type_name: str

    def describe(self) -> str:
        return f"scan({self.type_name})"


@dataclass(frozen=True, slots=True)
class IndexLookup:
    """Fetch candidates from an attribute index (recheck required)."""

    type_name: str
    attribute: str
    value: Any

    def describe(self) -> str:
        return f"index({self.type_name}.{self.attribute} = {self.value!r})"


RootAccess = Union[TypeScan, IndexLookup]


@dataclass(frozen=True, slots=True)
class PushdownSpec:
    """What the read stack may evaluate *below* full version decode.

    ``comparisons`` are root-type conjunct comparisons carried as plain
    ``(attribute, operator name, literal)`` triples — deliberately not
    AST nodes, so the storage engine can compile them without importing
    the MQL layer.  Each is a *necessary* condition on the root atom:
    the store may drop a version failing one before decode, and the
    evaluator still re-checks survivors, so results are byte-identical
    to the post-filter path.

    ``projection`` lists, per molecule atom type, the attribute subset a
    slice query actually reads (SELECT paths, aggregates, and every
    WHERE attribute) plus whether reference sets are needed for edge
    expansion.  ``None`` means decode everything.
    """

    type_name: str
    comparisons: Tuple[Tuple[str, str, Any], ...] = ()
    projection: Optional[Tuple[Tuple[str, Tuple[str, ...], bool], ...]] = None

    def describe(self) -> str:
        parts = []
        if self.comparisons:
            parts.append("pred(" + " and ".join(
                f"{attr} {op} {value!r}"
                for attr, op, value in self.comparisons) + ")")
        if self.projection is not None:
            parts.append("project(" + ", ".join(
                f"{name}[{','.join(attrs)}{'+refs' if refs else ''}]"
                for name, attrs, refs in self.projection) + ")")
        return " ".join(parts)


@dataclass(frozen=True, slots=True)
class QueryPlan:
    """An analyzed query plus its chosen root access path."""

    analyzed: AnalyzedQuery
    root_access: RootAccess
    pushdown: Optional[PushdownSpec] = None

    def describe(self) -> str:
        text = (f"molecule {self.analyzed.molecule_type} "
                f"via {self.root_access.describe()}")
        diff = self.analyzed.query.diff
        if diff is not None:
            text += f" diff[tt {diff.start} -> {diff.end}]"
        if self.pushdown is not None:
            text += f" pushdown[{self.pushdown.describe()}]"
        return text


#: Default maximum number of cached compiled queries.
DEFAULT_PLAN_CACHE_SIZE = 256

#: Cap on distinct parameter-type signatures cached per compiled query.
#: A well-behaved client binds each ``$name`` with one stable type, so
#: one or two signatures cover it; the cap only guards against a caller
#: cycling through types adversarially.
MAX_PARAM_SIGNATURES = 16

#: A parameter-type signature: ``((name, type), ...)`` sorted by name.
ParamSignature = Tuple[Tuple[str, type], ...]


def param_signature(params: Optional[Dict[str, Any]]) -> ParamSignature:
    """The type signature of a parameter binding.

    Two bindings with the same signature are interchangeable for
    analysis: every check the analyzer performs on a bound literal
    (comparability with the attribute's data type, the bool/int split,
    NULL-only-with-equality) depends on the value's *type*, never the
    value itself.
    """
    return tuple((name, type(value))
                 for name, value in sorted((params or {}).items()))


@dataclass(frozen=True, slots=True)
class CompiledQuery:
    """A cache entry: the parsed (unbound) query, plus analyzed forms.

    ``analyzed`` is the fully analyzed query for parameter-free texts —
    a repeated point query skips compilation entirely.  For
    parameterized texts, ``analyzed_by_types`` maps a
    :func:`param_signature` to the analyzed form of *some* earlier
    binding with those types: rebinding fresh values into the parsed AST
    is cheap, and because the analyzer's literal checks are purely
    type-directed, the expensive parts of analysis (molecule-type
    resolution and validation, predicate/projection schema walks) carry
    over unchanged — a repeated EXECUTE with same-typed parameters skips
    the re-analyze walk.  A binding with a new signature takes the full
    path once and caches its outcome.

    Root-access planning always reruns (it consults live index state),
    so a cached entry can never go stale across DDL — the cache is still
    cleared on DDL as a matter of hygiene.
    """

    query: Query
    analyzed: Optional[AnalyzedQuery]
    analyzed_by_types: Dict[ParamSignature, AnalyzedQuery] = field(
        default_factory=dict)


class PlanCache:
    """Bounded LRU of compiled MQL queries keyed by normalized text.

    R-A3 measured compile (lex + parse + analyze) at ~0.2 ms, which
    dominates small point queries; the cache removes it for repeated
    texts.  Keys are whitespace-normalized only — MQL string literals
    are case-sensitive, so no case folding.  Thread-safe: parallel
    readers share one instance per database.
    """

    def __init__(self, capacity: int = DEFAULT_PLAN_CACHE_SIZE,
                 metrics=None) -> None:
        if capacity < 1:
            raise ValueError(f"plan cache capacity must be >= 1, "
                             f"got {capacity}")
        self._capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, CompiledQuery]" = OrderedDict()
        if metrics is None:
            from repro.obs import MetricsRegistry
            metrics = MetricsRegistry()
        self._c_hits = metrics.counter("mql.plan_cache.hits")
        self._c_misses = metrics.counter("mql.plan_cache.misses")
        self._c_evictions = metrics.counter("mql.plan_cache.evictions")
        #: Parameterized analysis reuse (incremented by the evaluator).
        self.c_param_analysis_hits = metrics.counter(
            "mql.plan_cache.param_analysis_hits")
        self.c_param_analysis_misses = metrics.counter(
            "mql.plan_cache.param_analysis_misses")

    @staticmethod
    def normalize(text: str) -> str:
        """Collapse whitespace runs *outside* string literals.

        Quoted spans (single or double quotes, with backslash escaping
        the next character, exactly as the lexer tokenizes strings) are
        preserved byte-for-byte — otherwise two queries whose literals
        differ only in internal whitespace would alias to one cache key
        and return each other's plans.
        """
        out: List[str] = []
        length = len(text)
        at = 0
        pending_space = False
        while at < length:
            char = text[at]
            if char in ("'", '"'):
                if pending_space and out:
                    out.append(" ")
                pending_space = False
                start = at
                at += 1
                while at < length:
                    if text[at] == "\\" and at + 1 < length:
                        at += 2
                        continue
                    if text[at] == char:
                        at += 1
                        break
                    at += 1
                out.append(text[start:at])
                continue
            if char.isspace():
                pending_space = True
                at += 1
                continue
            if pending_space and out:
                out.append(" ")
            pending_space = False
            out.append(char)
            at += 1
        return "".join(out)

    def get(self, text: str) -> Optional[CompiledQuery]:
        key = self.normalize(text)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._c_misses.inc()
                return None
            self._entries.move_to_end(key)
            self._c_hits.inc()
            return entry

    def put(self, text: str, entry: CompiledQuery) -> None:
        key = self.normalize(text)
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._c_evictions.inc()

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


def _conjunctive_comparisons(predicate: Optional[Predicate]
                             ) -> List[Comparison]:
    """Top-level conjuncts that are plain comparisons.

    Only conjuncts are safe to push into root selection: an ``OR`` branch
    or a ``NOT`` could admit roots the index lookup would miss.
    """
    if predicate is None:
        return []
    if isinstance(predicate, Comparison):
        return [predicate]
    if isinstance(predicate, And):
        result: List[Comparison] = []
        for operand in predicate.operands:
            if isinstance(operand, Comparison):
                result.append(operand)
        return result
    return []


def _predicate_attrs(predicate: Optional[Predicate],
                     into: Dict[str, set]) -> None:
    """Collect every ``Type.attr`` the predicate tree touches.

    The *whole* tree, not just conjuncts: a projected version must carry
    every attribute ``_satisfies`` may read, or an OR/NOT branch would
    see a missing attribute as NULL.
    """
    if predicate is None:
        return
    if isinstance(predicate, Comparison):
        into.setdefault(predicate.path.type_name,
                        set()).add(predicate.path.attribute)
        return
    if isinstance(predicate, (And, Or)):
        for operand in predicate.operands:
            _predicate_attrs(operand, into)
        return
    if isinstance(predicate, Not):
        _predicate_attrs(predicate.operand, into)


def _pushdown_comparisons(analyzed: AnalyzedQuery
                          ) -> Tuple[Tuple[str, str, Any], ...]:
    """Root comparisons safe to evaluate on raw payloads in the store.

    Pushable only when the root type never reappears as an edge child —
    then the root atom is the sole atom of its type in the molecule, so
    the existential comparison semantics collapse onto the root atom and
    each top-level conjunct is a necessary condition.  Bitemporal
    ``AS OF`` queries never push (stores filter current knowledge only).
    """
    mtype = analyzed.molecule_type
    root = mtype.root
    if analyzed.as_of is not None or analyzed.query.diff is not None:
        return ()
    if any(edge.child == root for edge in mtype.edges):
        return ()
    return tuple(
        (c.path.attribute, c.op.name, c.literal.value)
        for c in _conjunctive_comparisons(analyzed.query.where)
        if c.path.type_name == root)


def _pushdown_projection(analyzed: AnalyzedQuery
                         ) -> Optional[Tuple[Tuple[str, Tuple[str, ...],
                                                   bool], ...]]:
    """The per-type attribute subset a slice query reads, or ``None``.

    Only ``SELECT path`` time-slice queries project: ``SELECT ALL``
    returns whole molecules, and window queries coalesce adjacent slices
    by full-state comparison (``same_composition_as``), which needs every
    value.
    """
    query = analyzed.query
    if analyzed.as_of is not None or query.diff is not None:
        return None
    if not isinstance(query.valid, (ValidAt, ValidAtNow)):
        return None
    select = query.select
    if not isinstance(select, SelectPaths):
        return None
    mtype = analyzed.molecule_type
    needed: Dict[str, set] = {}
    for item in select.paths:
        if isinstance(item, Aggregate):
            if item.type_name is None:
                needed.setdefault(item.path.type_name,
                                  set()).add(item.path.attribute)
            continue
        needed.setdefault(item.type_name, set()).add(item.attribute)
    _predicate_attrs(query.where, needed)
    type_names = {mtype.root}
    for edge in mtype.edges:
        type_names.add(edge.parent)
        type_names.add(edge.child)
    return tuple(
        (type_name,
         tuple(sorted(needed.get(type_name, ()))),
         bool(mtype.edges_from(type_name)))
        for type_name in sorted(type_names))


def plan(analyzed: AnalyzedQuery, engine: StorageEngine) -> QueryPlan:
    """Choose the root access path for an analyzed query."""
    root = analyzed.molecule_type.root
    comparisons = _pushdown_comparisons(analyzed)
    projection = _pushdown_projection(analyzed)
    pushdown = (PushdownSpec(root, comparisons, projection)
                if comparisons or projection is not None else None)
    for comparison in _conjunctive_comparisons(analyzed.query.where):
        if comparison.path.type_name != root:
            continue
        if comparison.op is not CompareOp.EQ:
            continue
        if comparison.literal.value is None:
            continue
        candidates = engine.candidates_for_equality(
            root, comparison.path.attribute, comparison.literal.value)
        if candidates is not None:
            return QueryPlan(analyzed, IndexLookup(
                root, comparison.path.attribute, comparison.literal.value),
                pushdown)
    return QueryPlan(analyzed, TypeScan(root), pushdown)

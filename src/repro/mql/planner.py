"""MQL planner: choosing how root atoms are found.

The only planning decision a molecule query needs (molecule construction
itself is fixed by the molecule type) is *root selection*:

* ``IndexLookup`` — a top-level conjunctive equality predicate on a root
  attribute with an existing attribute index supplies candidate atoms
  (which the evaluator still rechecks, since the index covers values of
  every version ever written).
* ``TypeScan`` — otherwise, enumerate all atoms of the root type.

This is exactly the choice experiment R-T4 measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Union

from repro.core.engine import StorageEngine
from repro.mql.analyzer import AnalyzedQuery
from repro.mql.ast_nodes import And, Comparison, CompareOp, Predicate


@dataclass(frozen=True, slots=True)
class TypeScan:
    """Enumerate every atom of the root type."""

    type_name: str

    def describe(self) -> str:
        return f"scan({self.type_name})"


@dataclass(frozen=True, slots=True)
class IndexLookup:
    """Fetch candidates from an attribute index (recheck required)."""

    type_name: str
    attribute: str
    value: Any

    def describe(self) -> str:
        return f"index({self.type_name}.{self.attribute} = {self.value!r})"


RootAccess = Union[TypeScan, IndexLookup]


@dataclass(frozen=True, slots=True)
class QueryPlan:
    """An analyzed query plus its chosen root access path."""

    analyzed: AnalyzedQuery
    root_access: RootAccess

    def describe(self) -> str:
        return (f"molecule {self.analyzed.molecule_type} "
                f"via {self.root_access.describe()}")


def _conjunctive_comparisons(predicate: Optional[Predicate]
                             ) -> List[Comparison]:
    """Top-level conjuncts that are plain comparisons.

    Only conjuncts are safe to push into root selection: an ``OR`` branch
    or a ``NOT`` could admit roots the index lookup would miss.
    """
    if predicate is None:
        return []
    if isinstance(predicate, Comparison):
        return [predicate]
    if isinstance(predicate, And):
        result: List[Comparison] = []
        for operand in predicate.operands:
            if isinstance(operand, Comparison):
                result.append(operand)
        return result
    return []


def plan(analyzed: AnalyzedQuery, engine: StorageEngine) -> QueryPlan:
    """Choose the root access path for an analyzed query."""
    root = analyzed.molecule_type.root
    for comparison in _conjunctive_comparisons(analyzed.query.where):
        if comparison.path.type_name != root:
            continue
        if comparison.op is not CompareOp.EQ:
            continue
        if comparison.literal.value is None:
            continue
        candidates = engine.candidates_for_equality(
            root, comparison.path.attribute, comparison.literal.value)
        if candidates is not None:
            return QueryPlan(analyzed, IndexLookup(
                root, comparison.path.attribute, comparison.literal.value))
    return QueryPlan(analyzed, TypeScan(root))

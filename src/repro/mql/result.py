"""Query results.

A result is a list of :class:`ResultEntry` items — one per qualifying
(root, time span) pair.  ``SELECT ALL`` entries carry the molecule;
projected queries carry a row dictionary keyed by ``Type.attribute``
(root attributes map to scalars, non-root attributes to the list of
values over the molecule's atoms of that type, in traversal order).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

from repro.core.molecule import Molecule
from repro.temporal import Interval


@dataclass(frozen=True, slots=True)
class ResultEntry:
    """One qualifying molecule state."""

    root_id: int
    valid: Interval
    molecule: Optional[Molecule]
    row: Optional[Dict[str, Any]]


class QueryResult:
    """The ordered entries a query produced, plus its plan description."""

    def __init__(self, entries: List[ResultEntry], plan: str,
                 projected: bool) -> None:
        self._entries = entries
        self.plan = plan
        self.projected = projected
        #: A :class:`repro.obs.QueryProfile` when the query ran under
        #: ``EXPLAIN ANALYZE`` (or ``profile=True``); None otherwise.
        self.profile: Optional[Any] = None

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[ResultEntry]:
        return iter(self._entries)

    def __getitem__(self, index: int) -> ResultEntry:
        return self._entries[index]

    @property
    def entries(self) -> List[ResultEntry]:
        return list(self._entries)

    def molecules(self) -> List[Molecule]:
        """The molecules of a ``SELECT ALL`` result."""
        return [entry.molecule for entry in self._entries
                if entry.molecule is not None]

    def rows(self) -> List[Dict[str, Any]]:
        """The row dictionaries of a projected result."""
        return [entry.row for entry in self._entries
                if entry.row is not None]

    def root_ids(self) -> List[int]:
        return [entry.root_id for entry in self._entries]

    def to_table(self) -> str:
        """Human-readable rendering (used by the examples)."""
        if not self._entries:
            return "(empty result)"
        lines = []
        for entry in self._entries:
            span = str(entry.valid)
            if self.projected:
                cells = ", ".join(f"{key}={value!r}"
                                  for key, value in (entry.row or {}).items())
                lines.append(f"root {entry.root_id} {span}: {cells}")
            else:
                count = (entry.molecule.atom_count()
                         if entry.molecule is not None else 0)
                lines.append(f"root {entry.root_id} {span}: "
                             f"molecule of {count} atoms")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"QueryResult({len(self._entries)} entries, plan={self.plan})"

"""Chunked MQL execution: a query as a stream of bounded entry batches.

The eager evaluator materializes every qualifying molecule state before
returning — fine for point queries, fatal for a full ``VALID HISTORY``
over a large type, whose result must otherwise fit in memory (and, over
the wire, in one 8 MiB frame).  This module runs the *same* pipeline —
same root candidates, same pushdown, same predicate/WHEN/projection
semantics, same entry order — but yields the entries in chunks of at
most ``chunk_entries``, so the peak footprint is one chunk plus one
root batch regardless of result size.

Consistency contract: each chunk is built under the database's shared
read latch and is internally consistent, but the latch is **released
between chunks** — a slow consumer never blocks writers, and a write
committed mid-stream may be visible to later chunks (non-repeatable
reads across chunks).  The root candidate set is fixed when the stream
is created, so atoms inserted afterwards never appear.  Callers that
need a stable view should pin it with ``AS OF`` (transaction time is
immutable) or hold their own transaction.

Execution shape per temporal clause:

* ``VALID AT`` — roots are processed in batches of ``root_batch``
  through the same set-oriented ``build_many`` path the eager
  evaluator uses, so streaming keeps the R-F6 batched-I/O win.
* ``VALID DURING`` / ``VALID HISTORY`` — per-root ``build_history``
  (one root's history is the natural unit; the existential
  ``prune_roots`` pushdown still drops non-qualifying roots first).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional

from repro.errors import EvaluationError
from repro.mql.ast_nodes import (
    SelectPaths,
    ValidAt,
    ValidAtNow,
    ValidDuring,
    ValidHistory,
)
from repro.mql.evaluator import (
    _compile,
    _evaluate_slice,
    _filter_when,
    _project,
    _root_candidates,
    _satisfies,
)
from repro.mql.planner import plan
from repro.mql.result import ResultEntry
from repro.temporal import FOREVER, TMIN, Interval

#: Default entries per chunk.  Chosen so a chunk of typical molecules
#: serializes well under the 8 MiB frame cap; callers with huge rows
#: pass something smaller.
DEFAULT_CHUNK_ENTRIES = 128

#: Roots built per ``build_many`` batch on the time-slice path — large
#: enough to amortize the shared version-batch reads, small enough that
#: a batch never dwarfs a chunk.
ROOT_BATCH = 64


class StreamingResult:
    """A query's plan metadata plus an iterator of entry chunks.

    ``chunks()`` yields ``List[ResultEntry]`` batches of at most the
    requested ``chunk_entries``; ``entries()`` flattens them (the eager
    shape, for callers that only want the lazy evaluation).  Closing
    mid-stream releases the underlying generator immediately.
    """

    def __init__(self, plan_text: str, projected: bool,
                 chunk_entries: int,
                 chunks: Iterator[List[ResultEntry]]) -> None:
        self.plan = plan_text
        self.projected = projected
        self.chunk_entries = chunk_entries
        self._chunks = chunks

    def chunks(self) -> Iterator[List[ResultEntry]]:
        return self._chunks

    def entries(self) -> Iterator[ResultEntry]:
        for chunk in self._chunks:
            yield from chunk

    def __iter__(self) -> Iterator[ResultEntry]:
        return self.entries()

    def close(self) -> None:
        self._chunks.close()

    def __enter__(self) -> "StreamingResult":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def execute_query_stream(db, text: str,
                         params: Optional[Dict[str, Any]] = None,
                         chunk_entries: int = DEFAULT_CHUNK_ENTRIES,
                         root_batch: int = ROOT_BATCH) -> StreamingResult:
    """Compile *text* and return a :class:`StreamingResult` over it.

    Compilation, planning, and the root-candidate scan happen eagerly
    (so a bad query fails here, not mid-iteration); evaluation is lazy,
    driven by the returned stream's chunk iterator.  An ``EXPLAIN``
    prefix is accepted but ignored — profiles describe one complete
    execution, which a stream by design never holds at once.
    """
    if chunk_entries < 1:
        raise EvaluationError("chunk_entries must be >= 1")
    with db._read_view():
        analyzed = _compile(db, text, params)
        query_plan = plan(analyzed, db.engine)
        roots = _root_candidates(db, query_plan)
    projected = isinstance(analyzed.query.select, SelectPaths)
    chunks = _produce(db, query_plan, roots, chunk_entries, root_batch)
    return StreamingResult(query_plan.describe(), projected,
                           chunk_entries, chunks)


def _produce(db, query_plan, roots: List[int], chunk_entries: int,
             root_batch: int) -> Iterator[List[ResultEntry]]:
    analyzed = query_plan.analyzed
    valid = analyzed.valid
    buffer: List[ResultEntry] = []

    def finish_batch(entries: List[ResultEntry]) -> List[ResultEntry]:
        if analyzed.query.when is not None:
            entries = _filter_when(entries, analyzed.query.when)
        return _project(analyzed, entries)

    def compiled_pushdown():
        if (query_plan.pushdown is not None
                and getattr(db.engine, "supports_pushdown", False)):
            return db.engine.compile_pushdown(query_plan.pushdown)
        return None, None

    if isinstance(valid, (ValidAt, ValidAtNow)):
        at = valid.at if isinstance(valid, ValidAt) else FOREVER - 1
        for start in range(0, len(roots), root_batch):
            batch = roots[start:start + root_batch]
            with db._read_view():
                pred, projection = compiled_pushdown()
                entries = finish_batch(_evaluate_slice(
                    db, analyzed, batch, at, pred, projection))
            buffer.extend(entries)
            while len(buffer) >= chunk_entries:
                yield buffer[:chunk_entries]
                del buffer[:chunk_entries]
    elif isinstance(valid, (ValidDuring, ValidHistory)):
        window = (Interval(valid.start, valid.end)
                  if isinstance(valid, ValidDuring)
                  else Interval(TMIN, FOREVER))
        tt = analyzed.as_of
        with db._read_view():
            pred, _ = compiled_pushdown()
            if pred is not None:
                roots = db.engine.prune_roots(roots, pred)
        for root_id in roots:
            with db._read_view():
                entries = []
                for span, molecule in db.builder.build_history(
                        root_id, analyzed.molecule_type, window, tt):
                    if _satisfies(analyzed.query.where, molecule):
                        entries.append(
                            ResultEntry(root_id, span, molecule, None))
                entries = finish_batch(entries)
            buffer.extend(entries)
            while len(buffer) >= chunk_entries:
                yield buffer[:chunk_entries]
                del buffer[:chunk_entries]
    else:  # pragma: no cover - parser produces no other clause
        raise EvaluationError(f"unknown temporal clause {valid!r}")
    while buffer:
        yield buffer[:chunk_entries]
        del buffer[:chunk_entries]

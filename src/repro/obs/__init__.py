"""Kernel-wide observability: metrics registry, trace spans, profiles.

Every layer of the kernel (disk, buffer, heap, B+-tree, indexes, engine,
builder, WAL, evaluator) routes its cost counters through one
:class:`~repro.obs.registry.MetricsRegistry` owned by the database
facade.  On top of the registry, :class:`~repro.obs.trace.Tracer`
records hierarchical spans — wall time plus the metric deltas observed
inside each span — and the MQL evaluator attaches the resulting
:class:`~repro.obs.profile.QueryProfile` to a query result when
profiling is requested (``EXPLAIN ANALYZE`` or
``python -m repro profile``).

Beyond the in-process core, the package carries the wire-level pieces
the network service layer builds on: distributed trace context
(``new_trace_id``/``new_span_id`` plus span ``trace_id`` stamping, so
client and server span trees stitch into one),
:class:`~repro.obs.events.EventLog` (a ring-buffered JSON-lines stream
of operational events), and
:func:`~repro.obs.exposition.render_prometheus` (the ``/metrics`` text
format standard scrapers consume).

Design constraint: with no capture active, instrumentation must be
near-zero-cost.  Counters are plain slotted objects incremented by
attribute (the same machine work as the ad-hoc dataclass counters they
replaced), and :meth:`Tracer.span` returns a shared no-op context
manager unless a capture is active on the calling thread.
"""

from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import (
    NULL_TRACER,
    Span,
    TraceCapture,
    Tracer,
    new_span_id,
    new_trace_id,
)
from repro.obs.events import EventLog
from repro.obs.exposition import render_prometheus
from repro.obs.profile import QueryProfile, render_profile_dict

__all__ = [
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "QueryProfile",
    "Span",
    "TraceCapture",
    "Tracer",
    "new_span_id",
    "new_trace_id",
    "render_profile_dict",
    "render_prometheus",
]

"""Structured event log: a ring-buffered JSON-lines event stream.

Operational events (session open/close, load shed, queue timeout, slow
query, checkpoint, reaper kill, ...) are recorded as flat JSON-safe
dictionaries instead of free-text log lines, so the questions operators
actually ask — "what ran at 3am, on which session, under which trace?"
— are answerable by filtering fields rather than parsing prose.  This
is the paper's own temporal-event discipline applied to the service
itself: the server's history is data.

The log is a bounded ring (oldest events fall off) with a ``tail``
accessor; the server exposes it through the ``STATS`` opcode and the
``monitor`` CLI.  An optional *sink* tees every event to a writable
text stream as one JSON line per event (``serve --event-log FILE``),
for durable logs beyond the ring.

Every event carries:

* ``seq``  — a monotonically increasing sequence number (gap-free, so a
  consumer polling ``tail`` can detect events it missed);
* ``ts``   — wall-clock seconds since the epoch;
* ``event``— a dotted event name (``session.open``, ``slow_query``);
* any further keyword fields the emitter attached (``session``,
  ``request_id``, ``trace_id``, ``opcode``, ...).
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, TextIO

from repro.obs.registry import MetricsRegistry

#: Default ring capacity — enough for post-hoc forensics, small enough
#: that a STATS snapshot carrying a tail stays far below the frame cap.
DEFAULT_CAPACITY = 512


class EventLog:
    """Thread-safe bounded ring of structured events."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 sink: Optional[TextIO] = None,
                 clock=time.time,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0
        self._sink = sink
        self._clock = clock
        if metrics is None:
            metrics = MetricsRegistry()
        self._c_sink_disabled = metrics.counter("events.sink_disabled")

    def emit(self, event: str, **fields: Any) -> Dict[str, Any]:
        """Record one event; returns the stored entry (do not mutate)."""
        entry: Dict[str, Any] = {"seq": 0, "ts": round(self._clock(), 6),
                                 "event": event}
        entry.update(fields)
        with self._lock:
            self._seq += 1
            entry["seq"] = self._seq
            self._entries.append(entry)
            sink = self._sink
            if sink is not None:
                try:
                    sink.write(json.dumps(entry, sort_keys=True,
                                          default=str) + "\n")
                    sink.flush()
                except (OSError, ValueError) as exc:
                    # A dead sink (disk full, closed file) must never
                    # take the serving path down; the ring still holds
                    # the event.  Going quiet is itself an operational
                    # fact, so record the disablement in the ring and a
                    # counter — the append is inlined because the lock
                    # is held and not reentrant.
                    self._sink = None
                    self._c_sink_disabled.inc()
                    self._seq += 1
                    self._entries.append({
                        "seq": self._seq,
                        "ts": round(self._clock(), 6),
                        "event": "sink_disabled",
                        "error": f"{type(exc).__name__}: {exc}",
                    })
        return entry

    # -- reading -------------------------------------------------------------

    def tail(self, count: Optional[int] = None,
             event: Optional[str] = None) -> List[Dict[str, Any]]:
        """The most recent *count* events, oldest first.

        *event* filters by event name (exact match, or a dotted prefix
        such as ``"session."``).  Entries are copies — callers may
        mutate them freely.
        """
        with self._lock:
            entries = list(self._entries)
        if event is not None:
            entries = [e for e in entries
                       if e["event"] == event
                       or e["event"].startswith(event)
                       and event.endswith(".")]
        if count is not None:
            entries = entries[-count:]
        return [dict(e) for e in entries]

    def to_jsonl(self, count: Optional[int] = None) -> str:
        """The tail rendered as JSON lines (one event per line)."""
        return "\n".join(json.dumps(entry, sort_keys=True, default=str)
                         for entry in self.tail(count))

    @property
    def last_seq(self) -> int:
        with self._lock:
            return self._seq

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

"""Prometheus text exposition for the metrics registry.

Renders a :class:`~repro.obs.registry.MetricsRegistry` in the text
format standard scrapers consume (version 0.0.4), so a plain
``curl http://host:port/metrics`` against the server's HTTP sidecar
needs zero client code:

* counters — dotted names become underscore names with a ``_total``
  suffix (``server.requests`` → ``server_requests_total``);
* gauges — plain sanitized name;
* histograms — rendered as Prometheus *summaries*: one
  ``{quantile="0.5"|"0.95"|"0.99"}`` series per instrument (estimated
  from the bucket counts, see :meth:`Histogram.quantile`) plus the
  exact ``_sum`` and ``_count`` series.

Label values are escaped per the exposition spec (backslash, double
quote, newline).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.obs.registry import MetricsRegistry

_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")

#: The quantiles every histogram is exposed at.
SUMMARY_QUANTILES = (0.5, 0.95, 0.99)


def metric_name(name: str) -> str:
    """A registry name as Prometheus accepts it (dots to underscores)."""
    sanitized = _NAME_SANITIZE.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _format_labels(labels: Dict[str, str],
                   extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = [(metric_name(k), str(v)) for k, v in sorted(labels.items())]
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + inner + "}"


def _format_value(value) -> str:
    if value is None:
        return "NaN"
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def render_prometheus(registry: MetricsRegistry,
                      extra_gauges: Optional[Dict[str, float]] = None
                      ) -> str:
    """The whole registry in Prometheus text exposition format.

    *extra_gauges* lets a caller append computed series that live
    outside the registry (uptime, boolean state flags); each is
    rendered as a gauge under its (sanitized) name.
    """
    lines: List[str] = []
    snapshot = registry.snapshot()

    grouped_counters: Dict[str, List] = {}
    for counter in snapshot["counters"]:
        grouped_counters.setdefault(counter["name"], []).append(counter)
    for name in sorted(grouped_counters):
        exposed = metric_name(name) + "_total"
        lines.append(f"# TYPE {exposed} counter")
        for counter in grouped_counters[name]:
            labels = _format_labels(counter["labels"])
            lines.append(f"{exposed}{labels} "
                         f"{_format_value(counter['value'])}")

    grouped_gauges: Dict[str, List] = {}
    for gauge in snapshot["gauges"]:
        grouped_gauges.setdefault(gauge["name"], []).append(gauge)
    for name in sorted(grouped_gauges):
        exposed = metric_name(name)
        lines.append(f"# TYPE {exposed} gauge")
        for gauge in grouped_gauges[name]:
            labels = _format_labels(gauge["labels"])
            lines.append(f"{exposed}{labels} "
                         f"{_format_value(gauge['value'])}")

    grouped_histograms: Dict[str, List] = {}
    for histogram in snapshot["histograms"]:
        grouped_histograms.setdefault(histogram["name"],
                                      []).append(histogram)
    for name in sorted(grouped_histograms):
        exposed = metric_name(name)
        lines.append(f"# TYPE {exposed} summary")
        for histogram in grouped_histograms[name]:
            percentiles = histogram["percentiles"]
            for quantile in SUMMARY_QUANTILES:
                key = f"p{int(quantile * 100)}"
                labels = _format_labels(histogram["labels"],
                                        extra=("quantile", str(quantile)))
                lines.append(f"{exposed}{labels} "
                             f"{_format_value(percentiles.get(key))}")
            labels = _format_labels(histogram["labels"])
            lines.append(f"{exposed}_sum{labels} "
                         f"{_format_value(histogram['sum'])}")
            lines.append(f"{exposed}_count{labels} "
                         f"{_format_value(histogram['count'])}")

    if extra_gauges:
        for name in sorted(extra_gauges):
            exposed = metric_name(name)
            lines.append(f"# TYPE {exposed} gauge")
            lines.append(f"{exposed} {_format_value(extra_gauges[name])}")

    return "\n".join(lines) + "\n"

"""Per-query profiles: the span tree behind ``EXPLAIN ANALYZE``.

The MQL evaluator opens one span per plan operator (root access,
molecule construction, WHEN filtering, projection).  A
:class:`QueryProfile` wraps the captured tree with the plan description
and renders it as the operator table the CLI prints, or exports it as a
JSON-safe dict.

The rendered metric columns are the machine-independent costs the
reconstructed evaluation reports: page touches (buffer pins split into
hits/misses), physical disk I/O, index probes, B+-tree node reads,
versions scanned, and molecules built.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.obs.trace import Span

#: (counter name, short column label) pairs rendered per span, in order.
_COLUMNS = (
    ("buffer.hits", "hit"),
    ("buffer.misses", "miss"),
    ("disk.reads", "read"),
    ("disk.writes", "write"),
    ("index.probes", "probes"),
    ("btree.node_reads", "nodes"),
    ("engine.versions_scanned", "versions"),
    ("builder.molecules", "molecules"),
)


def _metric_cells(span: Span) -> List[str]:
    cells: List[str] = []
    hits = span.metric("buffer.hits")
    misses = span.metric("buffer.misses")
    if hits or misses:
        cells.append(f"pages={hits + misses} ({hits} hit/{misses} miss)")
    for name, label in _COLUMNS[2:]:
        value = span.metric(name)
        if value:
            cells.append(f"{label}={value}")
    return cells


def _dict_metric(metrics: Dict[str, int], name: str) -> int:
    return sum(value for key, value in metrics.items()
               if key == name or key.startswith(name + "{"))


def _dict_metric_cells(span: Dict[str, Any]) -> List[str]:
    metrics = span.get("metrics") or {}
    cells: List[str] = []
    hits = _dict_metric(metrics, "buffer.hits")
    misses = _dict_metric(metrics, "buffer.misses")
    if hits or misses:
        cells.append(f"pages={hits + misses} ({hits} hit/{misses} miss)")
    for name, label in _COLUMNS[2:]:
        value = _dict_metric(metrics, name)
        if value:
            cells.append(f"{label}={value}")
    return cells


def _render_span_dict(span: Dict[str, Any], lines: List[str], prefix: str,
                      last: bool, top: bool = False) -> None:
    connector = "" if top else ("└─ " if last else "├─ ")
    attrs = " ".join(f"{key}={value}"
                     for key, value in (span.get("attrs") or {}).items())
    head = span.get("name", "?") + (f" [{attrs}]" if attrs else "")
    cells = "  ".join(_dict_metric_cells(span))
    duration_ms = float(span.get("duration_ms") or 0.0)
    line = f"{prefix}{connector}{head:<44} {duration_ms:8.3f} ms"
    if cells:
        line += f"  {cells}"
    lines.append(line)
    child_prefix = prefix + ("" if top else ("   " if last else "│  "))
    children = span.get("children") or []
    for index, child in enumerate(children):
        _render_span_dict(child, lines, child_prefix,
                          last=index == len(children) - 1)


def render_profile_dict(profile: Dict[str, Any]) -> str:
    """The operator table for a JSON-safe profile dict.

    Accepts the shape :meth:`QueryProfile.to_dict` exports — which is
    also what ``EXPLAIN`` returns over the wire, where the client holds
    a stitched span-tree dict (``client.request`` wrapping the server's
    spans) but no live :class:`~repro.obs.trace.Span` objects to build
    a :class:`QueryProfile` from.  Renders the same tree the local CLI
    prints, with the shared ``trace_id`` on the header line when the
    profile carries one.
    """
    header = f"plan: {profile.get('plan', '?')}"
    trace_id = profile.get("trace_id")
    if trace_id:
        header += f"  trace={trace_id}"
    lines = [header]
    for span in profile.get("spans") or []:
        _render_span_dict(span, lines, prefix="", last=True, top=True)
    return "\n".join(lines)


class QueryProfile:
    """The profiled execution of one MQL query."""

    def __init__(self, spans: List[Span], plan: str) -> None:
        self.spans = spans
        self.plan = plan

    @property
    def root(self) -> Span:
        if not self.spans:
            raise ValueError("empty profile")
        return self.spans[0]

    def find(self, name: str) -> List[Span]:
        """Every span with *name*, pre-order across the whole tree."""
        return [span for top in self.spans for span in top.walk()
                if span.name == name]

    # -- export -----------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {"plan": self.plan,
                "spans": [span.to_dict() for span in self.spans]}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    # -- rendering ----------------------------------------------------------------

    def render(self) -> str:
        """The operator tree as the CLI prints it."""
        lines = [f"plan: {self.plan}"]
        for span in self.spans:
            self._render_span(span, lines, prefix="", last=True, top=True)
        return "\n".join(lines)

    def _render_span(self, span: Span, lines: List[str], prefix: str,
                     last: bool, top: bool = False) -> None:
        connector = "" if top else ("└─ " if last else "├─ ")
        attrs = " ".join(f"{key}={value}" for key, value in span.attrs.items())
        head = span.name + (f" [{attrs}]" if attrs else "")
        cells = "  ".join(_metric_cells(span))
        line = f"{prefix}{connector}{head:<44} {span.duration * 1e3:8.3f} ms"
        if cells:
            line += f"  {cells}"
        lines.append(line)
        child_prefix = prefix + ("" if top else ("   " if last else "│  "))
        for index, child in enumerate(span.children):
            self._render_span(child, lines, child_prefix,
                              last=index == len(span.children) - 1)

    def __repr__(self) -> str:
        names = ", ".join(span.name for span in self.spans)
        return f"QueryProfile([{names}], plan={self.plan})"

"""Per-query profiles: the span tree behind ``EXPLAIN ANALYZE``.

The MQL evaluator opens one span per plan operator (root access,
molecule construction, WHEN filtering, projection).  A
:class:`QueryProfile` wraps the captured tree with the plan description
and renders it as the operator table the CLI prints, or exports it as a
JSON-safe dict.

The rendered metric columns are the machine-independent costs the
reconstructed evaluation reports: page touches (buffer pins split into
hits/misses), physical disk I/O, index probes, B+-tree node reads,
versions scanned, and molecules built.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.obs.trace import Span

#: (counter name, short column label) pairs rendered per span, in order.
_COLUMNS = (
    ("buffer.hits", "hit"),
    ("buffer.misses", "miss"),
    ("disk.reads", "read"),
    ("disk.writes", "write"),
    ("index.probes", "probes"),
    ("btree.node_reads", "nodes"),
    ("engine.versions_scanned", "versions"),
    ("builder.molecules", "molecules"),
)


def _metric_cells(span: Span) -> List[str]:
    cells: List[str] = []
    hits = span.metric("buffer.hits")
    misses = span.metric("buffer.misses")
    if hits or misses:
        cells.append(f"pages={hits + misses} ({hits} hit/{misses} miss)")
    for name, label in _COLUMNS[2:]:
        value = span.metric(name)
        if value:
            cells.append(f"{label}={value}")
    return cells


class QueryProfile:
    """The profiled execution of one MQL query."""

    def __init__(self, spans: List[Span], plan: str) -> None:
        self.spans = spans
        self.plan = plan

    @property
    def root(self) -> Span:
        if not self.spans:
            raise ValueError("empty profile")
        return self.spans[0]

    def find(self, name: str) -> List[Span]:
        """Every span with *name*, pre-order across the whole tree."""
        return [span for top in self.spans for span in top.walk()
                if span.name == name]

    # -- export -----------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {"plan": self.plan,
                "spans": [span.to_dict() for span in self.spans]}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    # -- rendering ----------------------------------------------------------------

    def render(self) -> str:
        """The operator tree as the CLI prints it."""
        lines = [f"plan: {self.plan}"]
        for span in self.spans:
            self._render_span(span, lines, prefix="", last=True, top=True)
        return "\n".join(lines)

    def _render_span(self, span: Span, lines: List[str], prefix: str,
                     last: bool, top: bool = False) -> None:
        connector = "" if top else ("└─ " if last else "├─ ")
        attrs = " ".join(f"{key}={value}" for key, value in span.attrs.items())
        head = span.name + (f" [{attrs}]" if attrs else "")
        cells = "  ".join(_metric_cells(span))
        line = f"{prefix}{connector}{head:<44} {span.duration * 1e3:8.3f} ms"
        if cells:
            line += f"  {cells}"
        lines.append(line)
        child_prefix = prefix + ("" if top else ("   " if last else "│  "))
        for index, child in enumerate(span.children):
            self._render_span(child, lines, child_prefix,
                              last=index == len(span.children) - 1)

    def __repr__(self) -> str:
        names = ", ".join(span.name for span in self.spans)
        return f"QueryProfile([{names}], plan={self.plan})"

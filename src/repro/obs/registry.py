"""The metrics registry: named counters, gauges, and histograms.

Instruments are created once (memoized by name + labels) and then
incremented by plain attribute arithmetic — the hot-path cost is one
``+=`` on a slotted object, the same work as the ad-hoc dataclass
counters the registry replaced.  Reading happens out of band: spans
diff :meth:`MetricsRegistry.totals`, benchmarks and the CLI export
:meth:`MetricsRegistry.snapshot` as JSON.

Naming convention: dotted ``layer.metric`` names (``disk.reads``,
``buffer.hits``, ``wal.appends``); optional labels qualify an instrument
(``btree.node_reads{index="attr:Part.name"}``).  Label sets are expected
to stay small (layer names, index names, segment names) — the registry
stores one instrument per distinct (name, labels) pair.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, Iterator, List, Optional, Tuple

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _display(name: str, labels: _LabelKey) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count (reset only between experiments)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: _LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    @property
    def key(self) -> str:
        return _display(self.name, self.labels)

    def __repr__(self) -> str:
        return f"Counter({self.key}={self.value})"


class Gauge:
    """A value that goes up and down (pool residency, active txns)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: _LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def reset(self) -> None:
        self.value = 0

    @property
    def key(self) -> str:
        return _display(self.name, self.labels)

    def __repr__(self) -> str:
        return f"Gauge({self.key}={self.value})"


#: Default histogram bucket upper bounds — powers of two suit the page
#: and record-count distributions the kernel observes.
DEFAULT_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 1024)


class Histogram:
    """Bucketed distribution with count/sum/min/max summary."""

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "count",
                 "total", "minimum", "maximum")

    def __init__(self, name: str, labels: _LabelKey = (),
                 bounds: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.labels = labels
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)  # +inf overflow
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the *q*-quantile (0..1) from the bucket counts.

        Classic ``histogram_quantile`` estimation: find the bucket the
        target rank falls into and interpolate linearly inside it (the
        first bucket interpolates up from zero).  An infinite bucket —
        the implicit overflow bucket, or an explicit ``inf`` bound —
        has no upper edge to interpolate toward, so the estimate is the
        largest finite bucket edge below it; interpolating would
        produce ``inf`` (or ``nan`` at fraction zero) and leak it
        through the clamp.  The result is clamped to the observed
        [min, max] so tiny samples never report impossible values.
        Returns ``None`` while the histogram is empty.
        """
        if not self.count:
            return None
        if q <= 0.0:
            return self.minimum
        if q >= 1.0:
            return self.maximum
        rank = q * self.count
        cumulative = 0
        lower = 0.0
        value: Optional[float] = None
        for bound, bucket in zip(self.bounds, self.bucket_counts):
            if bucket and cumulative + bucket >= rank:
                if math.isinf(bound):
                    break
                fraction = (rank - cumulative) / bucket
                value = lower + (bound - lower) * fraction
                break
            cumulative += bucket
            if not math.isinf(bound):
                lower = bound
        if value is None:
            # The rank fell in an infinite bucket: report the largest
            # finite edge and let the clamp pull it into observed range.
            value = lower
        if self.minimum is not None:
            value = max(value, self.minimum)
        if self.maximum is not None:
            value = min(value, self.maximum)
        return value

    #: The quantiles reported by :meth:`percentiles` and every snapshot.
    REPORTED_QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))

    def percentiles(self) -> Dict[str, Optional[float]]:
        """The standard latency summary: p50/p95/p99 (``None`` if empty)."""
        return {label: self.quantile(q)
                for label, q in self.REPORTED_QUANTILES}

    def reset(self) -> None:
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum = None
        self.maximum = None

    @property
    def key(self) -> str:
        return _display(self.name, self.labels)

    def __repr__(self) -> str:
        return f"Histogram({self.key} n={self.count} mean={self.mean:.2f})"


class MetricsRegistry:
    """One registry per database: the single home of all cost counters."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, _LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, _LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, _LabelKey], Histogram] = {}

    # -- instrument creation (memoized) ---------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _label_key(labels))
        counter = self._counters.get(key)
        if counter is None:
            with self._lock:
                counter = self._counters.setdefault(key, Counter(*key))
        return counter

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (name, _label_key(labels))
        gauge = self._gauges.get(key)
        if gauge is None:
            with self._lock:
                gauge = self._gauges.setdefault(key, Gauge(*key))
        return gauge

    def histogram(self, name: str,
                  bounds: Tuple[float, ...] = DEFAULT_BUCKETS,
                  **labels: Any) -> Histogram:
        key = (name, _label_key(labels))
        histogram = self._histograms.get(key)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.setdefault(
                    key, Histogram(key[0], key[1], bounds))
        return histogram

    # -- reading ----------------------------------------------------------------

    def counters(self) -> Iterator[Counter]:
        return iter(list(self._counters.values()))

    def value(self, name: str, **labels: Any) -> int:
        """Current value of one counter (0 when never created)."""
        counter = self._counters.get((name, _label_key(labels)))
        return counter.value if counter is not None else 0

    def total(self, name: str) -> int:
        """Sum of one counter name across all its label sets."""
        return sum(c.value for (n, _), c in self._counters.items()
                   if n == name)

    def totals(self) -> Dict[str, int]:
        """Counter values keyed by display name — the span-delta feed."""
        return {counter.key: counter.value
                for counter in self._counters.values()}

    def totals_by_name(self) -> Dict[str, int]:
        """Counter values aggregated over labels, keyed by bare name."""
        out: Dict[str, int] = {}
        for (name, _), counter in self._counters.items():
            out[name] = out.get(name, 0) + counter.value
        return out

    def layer_breakdown(self) -> Dict[str, Dict[str, int]]:
        """Counters grouped by layer (the prefix before the first dot)."""
        layers: Dict[str, Dict[str, int]] = {}
        for (name, _), counter in self._counters.items():
            layer, _, metric = name.partition(".")
            bucket = layers.setdefault(layer, {})
            bucket[metric] = bucket.get(metric, 0) + counter.value
        return layers

    # -- export -------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-safe snapshot of every instrument."""
        counters: List[Dict[str, Any]] = []
        for counter in self._counters.values():
            counters.append({"name": counter.name,
                             "labels": dict(counter.labels),
                             "value": counter.value})
        gauges: List[Dict[str, Any]] = []
        for gauge in self._gauges.values():
            gauges.append({"name": gauge.name,
                           "labels": dict(gauge.labels),
                           "value": gauge.value})
        histograms: List[Dict[str, Any]] = []
        for histogram in self._histograms.values():
            histograms.append({
                "name": histogram.name,
                "labels": dict(histogram.labels),
                "count": histogram.count,
                "sum": histogram.total,
                "min": histogram.minimum,
                "max": histogram.maximum,
                "percentiles": histogram.percentiles(),
                "buckets": [{"le": bound, "count": count}
                            for bound, count in zip(histogram.bounds,
                                                    histogram.bucket_counts)]
                           + [{"le": "inf",
                               "count": histogram.bucket_counts[-1]}],
            })
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    # -- maintenance -----------------------------------------------------------------

    def reset(self, prefix: Optional[str] = None) -> None:
        """Zero every instrument, or only those whose name has *prefix*."""
        for registry in (self._counters, self._gauges, self._histograms):
            for (name, _), instrument in registry.items():
                if prefix is None or name.startswith(prefix):
                    instrument.reset()

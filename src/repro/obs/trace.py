"""Hierarchical trace spans over the metrics registry.

A :class:`Tracer` owns a thread-local capture state.  While a capture is
active (``with tracer.capture() as spans:``), every ``tracer.span(...)``
opens a :class:`Span` that records wall time and — by diffing the
registry's counter totals at entry and exit — the metric deltas observed
inside it, children included (inclusive accounting, as in SQL
``EXPLAIN ANALYZE``).

With no capture active, :meth:`Tracer.span` hands back a shared no-op
context manager without allocating a span, so instrumented code paths
pay only the thread-local lookup.  Hot per-page paths (buffer pin,
disk read) never open spans at all — they only bump counters; spans live
at operator granularity (root access, molecule construction,
projection).

**Distributed traces.**  A capture may carry a *trace context*
(``tracer.capture(trace_id=..., parent_span_id=...)``): every span
recorded under it is then stamped with the shared ``trace_id``, a fresh
``span_id``, and its parent's ``span_id`` (the capture's
``parent_span_id`` for top-level spans — typically the id of a span
open in *another process*, e.g. the client span that stamped the
request frame).  Two processes that share a ``trace_id`` can stitch
their span trees into one, which is how ``EXPLAIN`` over the wire
renders client, transport, and kernel as a single tree.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.registry import MetricsRegistry


def new_trace_id() -> str:
    """A fresh 128-bit-ish trace id (16 hex chars — unique per request)."""
    return os.urandom(8).hex()


def new_span_id() -> str:
    """A fresh span id (8 hex chars — unique within a trace)."""
    return os.urandom(4).hex()


class Span:
    """One traced region: name, attributes, wall time, metric deltas."""

    __slots__ = ("name", "attrs", "duration", "metrics", "children",
                 "trace_id", "span_id", "parent_span_id",
                 "_start_totals", "_start_time")

    def __init__(self, name: str, attrs: Dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self.duration = 0.0               # seconds, set at exit
        self.metrics: Dict[str, int] = {}  # nonzero counter deltas
        self.children: List["Span"] = []
        self.trace_id: Optional[str] = None
        self.span_id: Optional[str] = None
        self.parent_span_id: Optional[str] = None
        self._start_totals: Dict[str, int] = {}
        self._start_time = 0.0

    def set(self, key: str, value: Any) -> None:
        """Attach an attribute (root count, molecule count, ...)."""
        self.attrs[key] = value

    def metric(self, name: str) -> int:
        """The span's delta for one counter (aggregated over labels)."""
        total = 0
        for key, value in self.metrics.items():
            if key == name or key.startswith(name + "{"):
                total += value
        return total

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "attrs": dict(self.attrs),
            "duration_ms": round(self.duration * 1000.0, 3),
            "metrics": dict(self.metrics),
            "children": [child.to_dict() for child in self.children],
        }
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
            out["span_id"] = self.span_id
            out["parent_span_id"] = self.parent_span_id
        return out

    def __repr__(self) -> str:
        return (f"Span({self.name}, {self.duration * 1000.0:.2f}ms, "
                f"{len(self.children)} children)")


class _NullSpan:
    """The shared do-nothing span handed out when no capture is active."""

    __slots__ = ()

    def set(self, key: str, value: Any) -> None:
        pass

    def metric(self, name: str) -> int:
        return 0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager driving one live span (only built while capturing)."""

    __slots__ = ("_tracer", "_span", "_sink")

    def __init__(self, tracer: "Tracer", span: Span,
                 sink: List[Span]) -> None:
        self._tracer = tracer
        self._span = span
        self._sink = sink

    def __enter__(self) -> Span:
        span = self._span
        tracer = self._tracer
        capture = getattr(tracer._local, "capture", None)
        stack = tracer._stack()
        if capture is not None and capture.trace_id is not None:
            span.trace_id = capture.trace_id
            span.span_id = new_span_id()
            span.parent_span_id = (stack[-1].span_id if stack
                                   else capture.parent_span_id)
        span._start_totals = tracer._registry.totals()
        stack.append(span)
        span._start_time = time.perf_counter()
        return span

    def __exit__(self, *exc: object) -> bool:
        span = self._span
        span.duration = time.perf_counter() - span._start_time
        start = span._start_totals
        deltas: Dict[str, int] = {}
        for key, value in self._tracer._registry.totals().items():
            delta = value - start.get(key, 0)
            if delta:
                deltas[key] = delta
        span.metrics = deltas
        span._start_totals = {}
        stack = self._tracer._stack()
        stack.pop()
        (stack[-1].children if stack else self._sink).append(span)
        return False


class TraceCapture:
    """The spans collected by one ``tracer.capture()`` region."""

    def __init__(self, trace_id: Optional[str] = None,
                 parent_span_id: Optional[str] = None) -> None:
        self.spans: List[Span] = []
        self.trace_id = trace_id
        self.parent_span_id = parent_span_id

    @property
    def root(self) -> Optional[Span]:
        return self.spans[0] if self.spans else None

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "spans": [span.to_dict() for span in self.spans]}
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        return out


class Tracer:
    """Thread-local span capture bound to one metrics registry."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self._registry = registry
        self._local = threading.local()

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry

    @property
    def capturing(self) -> bool:
        return getattr(self._local, "capture", None) is not None

    def _stack(self) -> List[Span]:
        return self._local.stack

    def capture(self, trace_id: Optional[str] = None,
                parent_span_id: Optional[str] = None) -> "_CaptureContext":
        """Activate span collection on this thread (re-entrant: an inner
        capture stacks over — and hides — the outer one until it exits).

        Pass *trace_id* (and optionally *parent_span_id*, the id of a
        span open elsewhere — e.g. in the client process) to record a
        distributed trace: every span collected gets that ``trace_id``,
        a fresh ``span_id``, and a parent link.
        """
        return _CaptureContext(self, trace_id, parent_span_id)

    def span(self, name: str, **attrs: Any):
        """Open a traced region; a no-op unless a capture is active."""
        capture = getattr(self._local, "capture", None)
        if capture is None:
            return NULL_SPAN
        return _SpanContext(self, Span(name, attrs), capture.spans)


class _CaptureContext:
    __slots__ = ("_tracer", "_capture", "_outer")

    def __init__(self, tracer: Tracer, trace_id: Optional[str] = None,
                 parent_span_id: Optional[str] = None) -> None:
        self._tracer = tracer
        self._capture = TraceCapture(trace_id, parent_span_id)
        self._outer: Any = None

    def __enter__(self) -> TraceCapture:
        local = self._tracer._local
        self._outer = (getattr(local, "capture", None),
                       getattr(local, "stack", None))
        local.capture = self._capture
        local.stack = []
        return self._capture

    def __exit__(self, *exc: object) -> bool:
        local = self._tracer._local
        local.capture, local.stack = self._outer
        return False


class _NullTracer:
    """Stand-in for readers without a tracer (oracle, bare engines)."""

    __slots__ = ()

    @property
    def capturing(self) -> bool:
        return False

    def capture(self):  # pragma: no cover - never sensible, but safe
        raise RuntimeError("the null tracer cannot capture")

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return NULL_SPAN


NULL_TRACER = _NullTracer()

"""Log-shipping replication: WAL streaming, replica replay, routing.

The primary side (:class:`ReplicationSource`) serves ``WAL_STREAM``
requests by reading batches of durable WAL records; the replica side
(:class:`ReplicaApplier`) long-polls those batches, appends them
verbatim into its own local WAL (the two LSN spaces stay aligned, so
the standard crash-recovery path works on a replica unchanged), and
replays quiescent-bounded slices through the ordinary
``replay_operations`` machinery.  :func:`routing_bound` is the
client-side predicate that decides whether a query is time-bounded
tightly enough to route to a replica.  See ``docs/replication.md``.
"""

from repro.replication.replica import ReplicaApplier
from repro.replication.router import routing_bound
from repro.replication.source import (
    MAX_STREAM_WAIT_MS,
    ReplicationSource,
)

__all__ = [
    "MAX_STREAM_WAIT_MS",
    "ReplicaApplier",
    "ReplicationSource",
    "routing_bound",
]

"""Replica-side log shipping: fetch, persist, replay, expose watermarks.

One :class:`ReplicaApplier` drives a read-only replica database.  Its
loop long-polls ``WAL_STREAM`` batches from the primary, appends each
record verbatim into the replica's *own* WAL (the LSN spaces stay
aligned, so a crashed replica recovers through the ordinary
``TemporalDatabase.open`` path), and replays **quiescent-bounded**
slices — ranges whose endpoints no transaction's records straddle —
through the standard :func:`~repro.txn.recovery.replay_operations`.
Quiescent endpoints are what make the engine's monotone
``applied_replay_lsn`` idempotence guard sound: within such a slice
every committed transaction is complete, so re-replaying an overlapping
range after a reconnect applies nothing twice.

Watermarks:

* ``applied_lsn`` — last quiescent primary LSN whose effects are
  applied; everything at or below it is queryable.
* ``replayed_tt`` — the transaction-time watermark: ``AS OF T`` queries
  with ``T <= replayed_tt`` answer exactly as the primary did when it
  stood at ``applied_lsn``.  (Like the primary itself, a long-running
  transaction with an older assigned time can later make data visible
  "in the past" — retroactive visibility is a property of the
  bitemporal model, not of replication.)
* durable watermark — ``catalog.applied_lsn``, advanced by periodic
  checkpoints; this is what the replica *acks* to the primary, because
  it is the point a crashed replica actually resumes from.  Acking the
  volatile watermark could let the primary truncate records a restarted
  replica still needs.
"""

from __future__ import annotations

import threading
import time
import uuid
from typing import Any, Dict, Optional, Set

from repro.errors import (
    ConnectionClosedError,
    ProtocolError,
    RecoveryError,
    RemoteError,
    ReplicationError,
    WALError,
)
from repro.txn.recovery import replay_operations
from repro.txn.wal import LogRecord, LogRecordType

#: Reconnect backoff bounds (seconds).
_BACKOFF_BASE = 0.2
_BACKOFF_CAP = 5.0

#: Backoff after a fatal stream error (e.g. the primary truncated our
#: resume point) — retried slowly so an operator sees it in STATS
#: without the loop hammering the primary.
_FATAL_RETRY = 10.0

#: Cap on the in-memory pending-record buffer (records received but not
#: yet applied, kept decoded so replay never re-reads the log file).  A
#: pathologically long-open primary transaction could grow it without
#: bound; past the cap the applier falls back to file-based replay.
_MAX_PENDING_RECORDS = 65536


class ReplicaApplier:
    """Continuously replays a primary's WAL into a local database."""

    def __init__(self, db: Any, primary_host: str, primary_port: int,
                 replica_id: Optional[str] = None,
                 batch_records: int = 512,
                 wait_ms: int = 250,
                 checkpoint_interval: float = 5.0,
                 apply_interval: float = 0.05,
                 client_factory: Any = None) -> None:
        self.db = db
        self.primary_host = primary_host
        self.primary_port = primary_port
        self.batch_records = batch_records
        self.wait_ms = wait_ms
        self.checkpoint_interval = checkpoint_interval
        # Replay pacing: applying every tiny batch takes the exclusive
        # latch in back-to-back holds that convoy read queries (the
        # latch is writer-preferring).  Deferring up to apply_interval
        # seconds coalesces the stream into one larger hold with clear
        # air between holds; an idle stream applies immediately, so the
        # added lag is bounded by the interval under load and ~zero at
        # the tail of a burst.
        self.apply_interval = apply_interval
        self._client_factory = client_factory
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._client: Any = None

        extras = db._catalog.extras
        if replica_id:
            self.replica_id = replica_id
        else:
            # Persist a generated identity so a restarted replica keeps
            # its subscription (and retention hold) on the primary.
            self.replica_id = (extras.get("replica_id")
                               or f"replica-{uuid.uuid4().hex[:8]}")
        extras["replica_id"] = self.replica_id
        extras["replica_of"] = f"{primary_host}:{primary_port}"
        # The expected primary WAL epoch: seeded from the bootstrap
        # copy's own catalog (the copy *is* the primary's state), then
        # pinned.  A mismatch on the stream means the primary's LSN
        # space restarted — resuming would apply different records
        # under reused numbers, so the applier faults instead.
        if "primary_epoch" not in extras:
            extras["primary_epoch"] = int(extras.get("wal_epoch", 0))
        self._expected_epoch = int(extras["primary_epoch"])
        db._catalog.save()

        # Resume points.  catalog.applied_lsn is the durable watermark;
        # replication_applied_lsn was seeded from it when the replica
        # marker was already present at open().  The local WAL may hold
        # records beyond it (received before a crash, not yet applied).
        self.applied_lsn = max(int(db.replication_applied_lsn),
                               int(db._catalog.applied_lsn),
                               int(db.engine.applied_replay_lsn))
        db.replication_applied_lsn = self.applied_lsn
        self.received_lsn = max(self.applied_lsn, db._wal.next_lsn - 1)
        self.replayed_tt = db._clock.now() - 1
        self.connected = False
        self.caught_up = False
        self.reconnects = 0
        self.last_error: Optional[str] = None
        self._last_caught_up = time.monotonic()
        self._last_checkpoint = time.monotonic()
        self._last_apply = 0.0
        self._deferred_quiescent = 0
        self._checkpointed_lsn = int(db._catalog.applied_lsn)

        # Decoded records covering (applied_lsn, received_lsn], kept
        # strictly contiguous from applied_lsn + 1 so replay can run
        # from memory instead of re-reading the log file under the
        # exclusive latch.  Emptied (file fallback) whenever contiguity
        # cannot be proven — e.g. right after a restart.
        self._pending: list[LogRecord] = []
        # Open-transaction set over (applied_lsn, received_lsn]; rebuilt
        # from the local log so the first quiescent point after a
        # restart is computed correctly.
        self._open_txns: Set[int] = set()
        self._startup_quiescent = self.applied_lsn
        for record in db._wal.read_all(after_lsn=self.applied_lsn):
            self._track(record.type.value, record.txn_id)
            if not self._open_txns:
                self._startup_quiescent = record.lsn

        metrics = db.metrics
        self._g_applied = metrics.gauge("replication.replayed_lsn")
        self._g_received = metrics.gauge("replication.received_lsn")
        self._g_tt = metrics.gauge("replication.replayed_tt")
        self._g_lag = metrics.gauge("replication.lag_seconds")
        self._c_batches = metrics.counter("replication.batches")
        self._c_records = metrics.counter("replication.records_received")
        self._c_reconnects = metrics.counter("replication.reconnects")
        self._g_applied.set(self.applied_lsn)
        self._g_received.set(self.received_lsn)
        self._g_tt.set(self.replayed_tt)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(target=self._run,
                                        name="replica-applier",
                                        daemon=True)
        self._thread.start()

    def stop(self, timeout: float = 10.0) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
        self._close_client()

    # -- the loop ------------------------------------------------------------

    def _run(self) -> None:
        if self._startup_quiescent > self.applied_lsn:
            # Records already in the local log (received before the last
            # shutdown) that form a complete slice: apply them before
            # asking the primary for more.
            self._apply_upto(self._startup_quiescent)
        backoff = _BACKOFF_BASE
        while not self._stop.is_set():
            try:
                if self._client is None:
                    self._client = self._connect()
                    self.connected = True
                    self.last_error = None
                    backoff = _BACKOFF_BASE
                body = self._client.wal_stream(
                    from_lsn=self.received_lsn + 1,
                    max_records=self.batch_records,
                    wait_ms=self.wait_ms,
                    replica=self.replica_id,
                    ack_lsn=int(self.db._catalog.applied_lsn))
                self._ingest(body)
                self._maybe_checkpoint()
            except (ConnectionClosedError, ProtocolError, OSError) as exc:
                self._on_disconnect(exc)
                if self._stop.wait(backoff):
                    break
                backoff = min(_BACKOFF_CAP, backoff * 2)
            except RemoteError as exc:
                if exc.transient:
                    self._on_disconnect(exc)
                    if self._stop.wait(backoff):
                        break
                    backoff = min(_BACKOFF_CAP, backoff * 2)
                    continue
                # Non-transient server answer: most likely our resume
                # point was truncated (fresh bootstrap needed).  Keep
                # the loop alive but slow, so STATS shows the fault.
                self._on_disconnect(exc)
                if self._stop.wait(_FATAL_RETRY):
                    break
            except (ReplicationError, WALError, RecoveryError) as exc:
                self._on_disconnect(exc)
                if self._stop.wait(_FATAL_RETRY):
                    break
        self.connected = False

    def _connect(self) -> Any:
        if self._client_factory is not None:
            return self._client_factory()
        from repro.server.client import DatabaseClient
        return DatabaseClient(self.primary_host, self.primary_port,
                              max_retries=0)

    def _close_client(self) -> None:
        client, self._client = self._client, None
        if client is not None:
            try:
                client.close()
            except (OSError, ProtocolError, ConnectionClosedError):
                pass

    def _on_disconnect(self, exc: Exception) -> None:
        self.connected = False
        self.caught_up = False
        self.last_error = f"{type(exc).__name__}: {exc}"
        self.reconnects += 1
        self._c_reconnects.inc()
        self._close_client()

    # -- ingestion -----------------------------------------------------------

    def _track(self, type_value: int, txn_id: int) -> None:
        if type_value == LogRecordType.BEGIN.value:
            self._open_txns.add(txn_id)
        elif type_value in (LogRecordType.COMMIT.value,
                            LogRecordType.ABORT.value):
            self._open_txns.discard(txn_id)

    def _ingest(self, body: Dict[str, Any]) -> None:
        epoch = body.get("epoch", self._expected_epoch)
        if int(epoch) != self._expected_epoch:
            raise ReplicationError(
                f"primary WAL epoch changed ({self._expected_epoch} -> "
                f"{epoch}): the log was reset and LSNs are reused; "
                f"re-bootstrap this replica from a fresh copy")
        records = body.get("records") or []
        quiescent = None
        wal = self.db._wal
        for lsn, type_value, txn_id, payload in records:
            lsn = int(lsn)
            type_value = int(type_value)
            txn_id = int(txn_id)
            wal.append_shipped(lsn, type_value, txn_id, payload)
            self._buffer_record(lsn, type_value, txn_id, payload)
            self._track(type_value, txn_id)
            self.received_lsn = max(self.received_lsn, lsn)
            if not self._open_txns:
                quiescent = lsn
        if records:
            wal.flush(sync=False)
            self._c_batches.inc()
            self._c_records.inc(len(records))
            self._g_received.set(self.received_lsn)
        if quiescent is not None:
            self._deferred_quiescent = max(self._deferred_quiescent,
                                           quiescent)
        if self._deferred_quiescent > self.applied_lsn:
            now = time.monotonic()
            if (not records
                    or now - self._last_apply >= self.apply_interval
                    or len(self._pending) >= self.batch_records):
                self._apply_upto(self._deferred_quiescent)
                self._last_apply = now
        head = int(body.get("head", self.received_lsn))
        self.caught_up = (self.received_lsn >= head
                          and self.applied_lsn == self.received_lsn)
        now = time.monotonic()
        if self.caught_up:
            self._last_caught_up = now
            self._g_lag.set(0.0)
        else:
            self._g_lag.set(round(now - self._last_caught_up, 3))

    def _buffer_record(self, lsn: int, type_value: int, txn_id: int,
                       payload: Dict[str, Any]) -> None:
        """Keep the decoded record for in-memory replay, preserving the
        invariant that ``_pending`` is contiguous from applied_lsn + 1."""
        if lsn <= self.applied_lsn:
            return
        if self._pending:
            if lsn <= self._pending[-1].lsn:
                return  # duplicate from an overlapping re-request
            if (lsn != self._pending[-1].lsn + 1
                    or len(self._pending) >= _MAX_PENDING_RECORDS):
                self._pending.clear()  # gap or cap: fall back to file
        if self._pending or lsn == self.applied_lsn + 1:
            self._pending.append(LogRecord(lsn, LogRecordType(type_value),
                                           txn_id, payload))

    def _apply_upto(self, quiescent: int) -> None:
        db = self.db
        records = None
        if (self._pending
                and self._pending[0].lsn == self.applied_lsn + 1
                and self._pending[-1].lsn >= quiescent):
            records = self._pending
        with db._state_latch.write():
            summary = replay_operations(db.engine, db._wal,
                                        self.applied_lsn,
                                        upto_lsn=quiescent,
                                        records=records)
            db._clock.advance_to(summary["max_tt"] + 1)
            with db._id_mutex:
                db._next_atom_id = max(db._next_atom_id,
                                       summary["max_atom_id"] + 1)
            # A replica never commits local transactions, so nothing
            # else drains the index managers' write-behind buffers;
            # without this flush every query-side probe merges an
            # ever-growing pending set.
            db.indexes.flush_pending()
        self.applied_lsn = quiescent
        db.replication_applied_lsn = quiescent
        self._pending = [record for record in self._pending
                         if record.lsn > quiescent]
        if summary["max_tt"] >= 0:
            self.replayed_tt = max(self.replayed_tt, summary["max_tt"])
        self._g_applied.set(self.applied_lsn)
        self._g_tt.set(self.replayed_tt)

    def _maybe_checkpoint(self) -> None:
        """Advance the durable watermark (and ack) every
        ``checkpoint_interval`` seconds of applied progress."""
        now = time.monotonic()
        if now - self._last_checkpoint < self.checkpoint_interval:
            return
        if self.applied_lsn <= self._checkpointed_lsn:
            self._last_checkpoint = now
            return
        self.db.checkpoint()
        self._checkpointed_lsn = int(self.db._catalog.applied_lsn)
        # Only drop the local log when nothing received is unapplied:
        # truncation discards the file, and re-requesting the tail would
        # collide with the in-memory LSN cursor.
        if self.received_lsn == self.applied_lsn:
            self.db._wal.truncate()
        self._last_checkpoint = now

    # -- observability -------------------------------------------------------

    def status(self) -> Dict[str, Any]:
        """Replication block for HELLO/PING/STATS on the replica."""
        lag = (0.0 if self.caught_up
               else round(time.monotonic() - self._last_caught_up, 3))
        return {
            "role": "replica",
            "primary": f"{self.primary_host}:{self.primary_port}",
            "replica_id": self.replica_id,
            "replayed_lsn": self.applied_lsn,
            "received_lsn": self.received_lsn,
            "durable_lsn": int(self.db._catalog.applied_lsn),
            "replayed_tt": self.replayed_tt,
            "lag_seconds": lag,
            "connected": self.connected,
            "caught_up": self.caught_up,
            "reconnects": self.reconnects,
            "last_error": self.last_error,
        }

"""Client-side routing predicate: which queries may a replica answer?

A replica at transaction-time watermark ``W`` answers any query whose
*belief time* is pinned at or below ``W`` exactly as the primary does —
never stale — because committed bitemporal history is immutable: records
with transaction time ``<= W`` are fully replayed and later commits
cannot rewrite them.  In MQL the belief time is pinned by ``AS OF T``;
everything else (current-knowledge reads, writes, transactions,
EXPLAIN) must see the primary.

The parse is cached: routing runs on every pooled query, and the same
query texts recur.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional

from repro.errors import QueryError
from repro.temporal import FOREVER


@lru_cache(maxsize=512)
def routing_bound(text: str) -> Optional[int]:
    """The query's transaction-time upper bound, or ``None``.

    ``None`` means "not provably time-bounded — route to the primary":
    no ``AS OF`` clause, an unparseable text (the server will produce
    the real error), ``AS OF FOREVER`` (current knowledge by another
    name), or an ``EXPLAIN`` (profiles must describe the primary).
    """
    from repro.mql.parser import parse_query
    try:
        query = parse_query(text)
    except (QueryError, RecursionError):
        return None
    if query.explain or query.as_of is None:
        return None
    if query.as_of >= FOREVER:
        return None
    return int(query.as_of)

"""Primary-side WAL streaming: the server half of log shipping.

One :class:`ReplicationSource` lives inside a
:class:`~repro.server.server.DatabaseServer` and answers ``WAL_STREAM``
frames.  A request names the first LSN wanted, an optional long-poll
window, and (for subscribed replicas) the replica's identity plus its
durable replay watermark; the response carries a bounded batch of
records and the current shippable head.

Only *shippable* records leave the primary
(:attr:`~repro.txn.wal.WriteAheadLog.shippable_lsn`): with synchronous
durability that is the durable head, because a crash can cut the
non-durable tail and reassign its LSNs to different records — a replica
that applied the originals would silently diverge.

Subscribed replicas ack their durable watermark on every request, and
the WAL's retention guard refuses to truncate while the slowest ack
trails the head (``wal.retention_held_bytes``).
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.errors import ReplicationError

#: Long-poll ceiling per WAL_STREAM request (milliseconds).  Kept well
#: under a second so a parked stream never pins an ungated worker for
#: long — a caught-up replica simply re-polls.
MAX_STREAM_WAIT_MS = 500

#: Batch ceilings: records per response and approximate payload bytes
#: (well under the 8 MiB frame cap, leaving room for JSON framing).
MAX_BATCH_RECORDS = 4096
DEFAULT_BATCH_RECORDS = 512
MAX_BATCH_BYTES = 2 * 1024 * 1024


class ReplicationSource:
    """Serves WAL record batches to replicas over ``WAL_STREAM``."""

    def __init__(self, db: Any) -> None:
        self._db = db
        self._wal = db._wal
        metrics = db.metrics
        self._c_requests = metrics.counter("replication.stream_requests")
        self._c_shipped = metrics.counter("replication.records_shipped")
        self._c_waits = metrics.counter("replication.stream_waits")

    def handle(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Answer one WAL_STREAM request; see ``docs/replication.md``
        for the payload shape."""
        self._c_requests.inc()
        try:
            from_lsn = int(payload.get("from_lsn", 1))
            max_records = int(payload.get("max_records",
                                          DEFAULT_BATCH_RECORDS))
            wait_ms = int(payload.get("wait_ms", 0))
        except (TypeError, ValueError) as exc:
            raise ReplicationError(
                f"malformed WAL_STREAM request: {exc}") from exc
        if from_lsn < 1:
            raise ReplicationError(
                f"from_lsn must be >= 1, got {from_lsn}")
        max_records = max(1, min(max_records, MAX_BATCH_RECORDS))
        wait_ms = max(0, min(wait_ms, MAX_STREAM_WAIT_MS))

        replica = payload.get("replica")
        if replica is not None:
            ack = payload.get("ack_lsn")
            acked = int(ack) if ack is not None else from_lsn - 1
            self._wal.ack(str(replica), acked)

        head = self._wal.shippable_lsn
        if head < from_lsn and wait_ms:
            self._c_waits.inc()
            head = self._wal.wait_for_shippable(from_lsn, wait_ms / 1000.0)

        records = []
        if head >= from_lsn:
            budget = MAX_BATCH_BYTES
            for record in self._wal.read_records_from(from_lsn,
                                                      upto_lsn=head):
                records.append([record.lsn, record.type.value,
                                record.txn_id, record.payload])
                budget -= len(json.dumps(record.payload,
                                         separators=(",", ":"))) + 32
                if len(records) >= max_records or budget <= 0:
                    break
            self._c_shipped.inc(len(records))
        last = records[-1][0] if records else from_lsn - 1
        return {
            "records": records,
            "head": head,
            "caught_up": last >= head,
            "next_from": last + 1,
            "epoch": self._epoch(),
        }

    def _epoch(self) -> int:
        """The primary's WAL epoch: bumped whenever a clean shutdown
        restarts the LSN space, so replicas detect number reuse."""
        return int(self._db._catalog.extras.get("wal_epoch", 0))

    def status(self) -> Dict[str, Any]:
        """Primary-side replication block for STATS/state_snapshot."""
        head = self._wal.shippable_lsn
        subscribers: Dict[str, Any] = {}
        for name, entry in self._wal.subscribers().items():
            acked = int(entry["acked"])
            subscribers[name] = dict(entry)
            subscribers[name]["lag"] = max(0, head - acked)
            subscribers[name]["held_bytes"] = self._wal.held_bytes(acked)
        return {
            "role": "primary",
            "head": head,
            "epoch": self._epoch(),
            "subscribers": subscribers,
            "retained_bytes": self._db.metrics.gauge(
                "wal.retention_held_bytes").value,
        }

"""Network service layer: wire protocol, server, client, admission.

The database kernel is embedded (one process owns the files); this
package puts a socket in front of it so many client processes share one
kernel.  The pieces:

* :mod:`repro.server.protocol` — length-prefixed, CRC-checked binary
  frames with canonical JSON payloads; the byte-level contract both
  sides (and the tests' differential oracle) share.
* :mod:`repro.server.admission` — load shedding: bounded in-flight
  requests, a bounded wait queue, per-request queue timeouts, and a
  slow-query log.
* :mod:`repro.server.server` — a threaded TCP server, one worker per
  connection, per-session transaction state, idle reaping, and graceful
  drain-then-checkpoint shutdown.
* :mod:`repro.server.client` — a blocking client with prepared
  statements, context-manager transactions, transient-error retry, and
  a thread-safe connection pool.
"""

from repro.server.admission import AdmissionController, SlowQueryLog
from repro.server.client import ClientPool, DatabaseClient
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    Frame,
    Opcode,
    decode_payload,
    encode_frame,
    encode_payload,
    error_payload,
    read_frame,
    result_to_payload,
)
from repro.server.server import DatabaseServer

__all__ = [
    "AdmissionController",
    "ClientPool",
    "DatabaseClient",
    "DatabaseServer",
    "Frame",
    "MAX_FRAME_BYTES",
    "Opcode",
    "PROTOCOL_VERSION",
    "SlowQueryLog",
    "decode_payload",
    "encode_frame",
    "encode_payload",
    "error_payload",
    "read_frame",
    "result_to_payload",
]

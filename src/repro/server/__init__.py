"""Network service layer: wire protocol, server, client, admission.

The database kernel is embedded (one process owns the files); this
package puts a socket in front of it so many client processes share one
kernel.  The pieces:

* :mod:`repro.server.protocol` — length-prefixed, CRC-checked binary
  frames with canonical JSON payloads; the byte-level contract both
  sides (and the tests' differential oracle) share.  Version 2 adds
  per-request trace context and the STATS opcode; version 3 adds
  streaming result cursors (FETCH / CLOSE_CURSOR) and incremental
  frame reassembly for the event-loop server.
* :mod:`repro.server.admission` — load shedding: bounded in-flight
  requests, a bounded wait queue, per-request queue timeouts, and a
  structured slow-query log backed by the shared event log.
* :mod:`repro.server.server` — an event-loop TCP server: one selector
  thread multiplexes every socket, a small worker pool executes
  requests, queued requests park as data on the loop.  Per-session
  transaction state, streaming cursors, idle reaping, graceful
  drain-then-checkpoint shutdown, and full introspection (STATS,
  structured events, cross-process trace stitching).
* :mod:`repro.server.http_sidecar` — an optional plain-HTTP listener
  serving ``/metrics`` (Prometheus text format), ``/health``
  (drain-aware), and ``/stats`` for fleet tooling.
* :mod:`repro.server.client` — a blocking client with prepared
  statements, context-manager transactions, transient-error retry,
  trace-context stamping, streaming result cursors, and a thread-safe
  connection pool with idle health checks and replica-aware routing of
  time-bounded reads (``replicas=`` — see ``docs/replication.md``).

Log-shipping replication (the ``WAL_STREAM`` opcode, the primary-side
record source, and the replica-side applier) lives in
:mod:`repro.replication`; the server grows a ``replication=`` handle
that turns it into a read-only replica.
"""

from repro.server.admission import AdmissionController, SlowQueryLog
from repro.server.client import ClientPool, DatabaseClient, ResultCursor
from repro.server.http_sidecar import MetricsSidecar
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    SUPPORTED_PROTOCOL_VERSIONS,
    Frame,
    FrameAssembler,
    Opcode,
    decode_payload,
    encode_frame,
    encode_payload,
    entries_to_payload,
    error_payload,
    extract_trace_context,
    read_frame,
    result_to_payload,
)
from repro.server.server import DatabaseServer

__all__ = [
    "AdmissionController",
    "ClientPool",
    "DatabaseClient",
    "DatabaseServer",
    "Frame",
    "FrameAssembler",
    "MAX_FRAME_BYTES",
    "MetricsSidecar",
    "Opcode",
    "PROTOCOL_VERSION",
    "ResultCursor",
    "SUPPORTED_PROTOCOL_VERSIONS",
    "SlowQueryLog",
    "decode_payload",
    "encode_frame",
    "encode_payload",
    "entries_to_payload",
    "error_payload",
    "extract_trace_context",
    "read_frame",
    "result_to_payload",
]

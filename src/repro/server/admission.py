"""Admission control: bounded concurrency with explicit shedding.

A saturated server must refuse work *visibly* — a structured ERROR
frame the client can retry on — never by letting requests pile up until
the process dies or clients time out blind.  The controller bounds two
things:

* **in-flight requests** — at most ``max_inflight`` requests execute at
  once (they still contend on the kernel's own latches; this bound
  keeps the thread pile and memory footprint flat under overload);
* **the wait queue** — at most ``max_queued`` requests wait for a slot.
  A request arriving past that is shed immediately with
  :class:`~repro.errors.ServerSaturatedError`.

A queued request that waits longer than ``request_timeout`` seconds is
rejected with :class:`~repro.errors.RequestTimeoutError`.  The timeout
governs *queue wait*, not execution — a request that has started runs
to completion (the kernel has no preemption points), which is the same
cooperative contract as a classic ``statement_timeout``; see
``docs/server.md``.

Every admission outcome is also a **structured event** in the shared
:class:`~repro.obs.events.EventLog`: shed and timed-out requests emit
``request.shed`` / ``request.queue_timeout``, and requests whose total
latency crosses the slow-query threshold emit ``slow_query`` carrying
the request id, session id, opcode name, trace id, query text, and
latency — correlatable with client-side traces and ERROR frames, unlike
the free-text log it replaced.  :attr:`slow_queries` remains as a typed
view over those events.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

from contextlib import contextmanager

from repro.errors import RequestTimeoutError, ServerSaturatedError
from repro.obs.events import EventLog

#: Latency histogram bounds (seconds): sub-millisecond to tens of them.
LATENCY_BOUNDS = (0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)


@dataclass(frozen=True, slots=True)
class SlowQueryEntry:
    """One over-threshold request, fully correlatable: the request id
    matches the wire frame, the trace id matches the client's span."""

    session_id: int
    opcode: str
    text: str
    seconds: float
    request_id: int = 0
    trace_id: Optional[str] = None


class SlowQueryLog:
    """Typed view over the event log's ``slow_query`` events.

    Kept for API continuity with the free-text log it replaced; the
    entries now live in the shared :class:`EventLog` ring (so they are
    also visible through ``STATS`` and the ``monitor`` CLI), and each
    carries the request id, session id, opcode name, and trace id.
    """

    def __init__(self, events: EventLog,
                 threshold_ms: float = 250.0) -> None:
        self.threshold_ms = threshold_ms
        self._events = events

    def record(self, session_id: int, opcode: str, text: str,
               seconds: float, request_id: int = 0,
               trace_id: Optional[str] = None) -> None:
        if seconds * 1000.0 < self.threshold_ms:
            return
        self._events.emit("slow_query", session=session_id,
                          opcode=opcode, text=text,
                          seconds=round(seconds, 6),
                          request_id=request_id, trace_id=trace_id)

    def entries(self) -> List[SlowQueryEntry]:
        return [SlowQueryEntry(session_id=event.get("session", 0),
                               opcode=event.get("opcode", ""),
                               text=event.get("text", ""),
                               seconds=event.get("seconds", 0.0),
                               request_id=event.get("request_id", 0),
                               trace_id=event.get("trace_id"))
                for event in self._events.tail(event="slow_query")]

    def __len__(self) -> int:
        return len(self._events.tail(event="slow_query"))


class AdmissionController:
    """Gate requests through a bounded in-flight set and wait queue.

    Two call styles share the same counters and limits:

    * the **blocking** style (``admit`` / ``admit_ungated``) the
      thread-per-request paths and tests use — a caller without a slot
      parks its *thread* on a condition variable;
    * the **non-blocking** style the event-loop server uses
      (:meth:`try_acquire`, :meth:`park`, :meth:`unpark`,
      :meth:`release`, :meth:`observe`) — a request without a slot
      parks as *data* (the loop keeps the frame and a deadline), and
      :attr:`on_slot_freed` lets the loop wake up the instant a slot
      frees instead of polling.
    """

    def __init__(self, max_inflight: int = 8, max_queued: int = 32,
                 request_timeout: Optional[float] = 10.0,
                 slow_query_ms: float = 250.0,
                 metrics=None,
                 events: Optional[EventLog] = None) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if max_queued < 0:
            raise ValueError("max_queued must be >= 0")
        self.max_inflight = max_inflight
        self.max_queued = max_queued
        self.request_timeout = request_timeout
        self.events = events if events is not None else EventLog()
        self.slow_queries = SlowQueryLog(self.events,
                                         threshold_ms=slow_query_ms)
        self._lock = threading.Lock()
        self._slot_freed = threading.Condition(self._lock)
        self._inflight = 0
        self._queued = 0
        #: Callback invoked (outside the lock, from the releasing
        #: thread) every time an in-flight slot frees — the event-loop
        #: server points it at its wakeup pipe so parked requests
        #: dispatch immediately.
        self.on_slot_freed: Optional[Any] = None
        if metrics is None:
            from repro.obs import MetricsRegistry
            metrics = MetricsRegistry()
        self._c_requests = metrics.counter("server.requests")
        self._c_shed = metrics.counter("server.load_shed")
        self._c_timeouts = metrics.counter("server.queue_timeouts")
        self._g_inflight = metrics.gauge("server.requests.inflight")
        self._g_queued = metrics.gauge("server.requests.queued")
        self._h_latency = metrics.histogram("server.request_seconds",
                                            LATENCY_BOUNDS)

    # -- introspection -------------------------------------------------------

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    @property
    def queued(self) -> int:
        with self._lock:
            return self._queued

    # -- admission -----------------------------------------------------------

    def _acquire(self, session_id: int = 0, opcode: str = "",
                 request_id: int = 0,
                 trace_id: Optional[str] = None) -> None:
        deadline = (None if self.request_timeout is None
                    else time.monotonic() + self.request_timeout)
        with self._slot_freed:
            if self._inflight < self.max_inflight:
                self._inflight += 1
                self._g_inflight.set(self._inflight)
                return
            if self._queued >= self.max_queued:
                self._c_shed.inc()
                self.events.emit("request.shed", session=session_id,
                                 opcode=opcode, request_id=request_id,
                                 trace_id=trace_id,
                                 inflight=self._inflight,
                                 queued=self._queued)
                raise ServerSaturatedError(
                    f"server saturated: {self._inflight} in flight, "
                    f"{self._queued} queued (max {self.max_queued})")
            self._queued += 1
            self._g_queued.set(self._queued)
            try:
                while self._inflight >= self.max_inflight:
                    if deadline is None:
                        self._slot_freed.wait()
                        continue
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._slot_freed.wait(remaining):
                        if self._inflight < self.max_inflight:
                            break
                        self._c_timeouts.inc()
                        self.events.emit("request.queue_timeout",
                                         session=session_id,
                                         opcode=opcode,
                                         request_id=request_id,
                                         trace_id=trace_id)
                        raise RequestTimeoutError(
                            f"request waited over "
                            f"{self.request_timeout:.3g}s for a slot")
                self._inflight += 1
                self._g_inflight.set(self._inflight)
            finally:
                self._queued -= 1
                self._g_queued.set(self._queued)

    def _release(self) -> None:
        with self._slot_freed:
            self._inflight -= 1
            self._g_inflight.set(self._inflight)
            self._slot_freed.notify()
        hook = self.on_slot_freed
        if hook is not None:
            hook()

    # -- non-blocking admission (event-loop server) --------------------------

    def begin_request(self) -> None:
        """Count one arriving request (the loop-side twin of the
        ``admit*`` context managers' entry)."""
        self._c_requests.inc()

    def try_acquire(self) -> bool:
        """Take an in-flight slot if one is free; never blocks."""
        with self._lock:
            if self._inflight < self.max_inflight:
                self._inflight += 1
                self._g_inflight.set(self._inflight)
                return True
            return False

    def park(self, session_id: int = 0, opcode: str = "",
             request_id: int = 0,
             trace_id: Optional[str] = None) -> None:
        """Count a request into the wait queue, or shed it.

        The caller (the event loop) keeps the parked frame itself; this
        only maintains the queue bound and gauge.  Raises
        :class:`ServerSaturatedError` — after emitting the
        ``request.shed`` event — when the queue is full.
        """
        with self._lock:
            if self._queued >= self.max_queued:
                self._c_shed.inc()
                self.events.emit("request.shed", session=session_id,
                                 opcode=opcode, request_id=request_id,
                                 trace_id=trace_id,
                                 inflight=self._inflight,
                                 queued=self._queued)
                raise ServerSaturatedError(
                    f"server saturated: {self._inflight} in flight, "
                    f"{self._queued} queued (max {self.max_queued})")
            self._queued += 1
            self._g_queued.set(self._queued)

    def unpark(self) -> None:
        """Take one request out of the wait queue (dispatched, timed
        out, or dropped with its session)."""
        with self._lock:
            self._queued -= 1
            self._g_queued.set(self._queued)

    def timeout_parked(self, session_id: int = 0, opcode: str = "",
                       request_id: int = 0,
                       trace_id: Optional[str] = None
                       ) -> RequestTimeoutError:
        """Record a queue timeout; returns the error to answer with.
        The caller still owns the queue slot — call :meth:`unpark`."""
        self._c_timeouts.inc()
        self.events.emit("request.queue_timeout", session=session_id,
                         opcode=opcode, request_id=request_id,
                         trace_id=trace_id)
        return RequestTimeoutError(
            f"request waited over {self.request_timeout:.3g}s for a slot")

    def release(self) -> None:
        """Free a slot taken by :meth:`try_acquire` (fires
        :attr:`on_slot_freed`)."""
        self._release()

    def observe(self, session_id: int, opcode: str, text: str,
                seconds: float, request_id: int = 0,
                trace_id: Optional[str] = None) -> None:
        """Record one finished request's latency (histogram + slow-query
        log) — the loop-side twin of the ``admit*`` exit path."""
        self._h_latency.observe(seconds)
        self.slow_queries.record(session_id, opcode, text, seconds,
                                 request_id=request_id, trace_id=trace_id)

    @contextmanager
    def admit(self, session_id: int, opcode: str, text: str = "",
              request_id: int = 0,
              trace_id: Optional[str] = None) -> Iterator[None]:
        """Hold an execution slot for the duration of one request.

        Raises :class:`ServerSaturatedError` (queue full) or
        :class:`RequestTimeoutError` (queue wait exceeded) *before*
        yielding — the caller converts either into a transient ERROR
        frame.  On exit the request's latency lands in the histogram
        and, when over threshold, the slow-query event log.
        """
        self._c_requests.inc()
        self._acquire(session_id, opcode, request_id, trace_id)
        started = time.monotonic()
        try:
            yield
        finally:
            elapsed = time.monotonic() - started
            self._release()
            self._h_latency.observe(elapsed)
            self.slow_queries.record(session_id, opcode, text, elapsed,
                                     request_id=request_id,
                                     trace_id=trace_id)

    @contextmanager
    def admit_ungated(self, session_id: int, opcode: str, text: str = "",
                      request_id: int = 0,
                      trace_id: Optional[str] = None) -> Iterator[None]:
        """Metrics-only admission for frames that must never be shed.

        COMMIT/ROLLBACK/CLOSE free locks, undo state, and sessions —
        shedding one under load would strand a server-side transaction
        the client believes finished.  STATS is the monitoring plane:
        an operator diagnosing an overloaded server needs it to answer
        precisely when gated requests are being refused.  All are
        counted and timed like any request but never queued or shed.
        """
        self._c_requests.inc()
        started = time.monotonic()
        try:
            yield
        finally:
            elapsed = time.monotonic() - started
            self._h_latency.observe(elapsed)
            self.slow_queries.record(session_id, opcode, text, elapsed,
                                     request_id=request_id,
                                     trace_id=trace_id)

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "max_inflight": self.max_inflight,
                "max_queued": self.max_queued,
                "inflight": self._inflight,
                "queued": self._queued,
                "request_timeout": self.request_timeout,
            }

"""Blocking client: handshake, requests, transactions, retry, pooling.

:class:`DatabaseClient` is one TCP connection.  The protocol is strict
request/response, so a connection-level mutex serializes callers — for
parallel clients use one connection per thread or a
:class:`ClientPool`.

Retry policy: only errors the server flags ``transient`` (saturation,
queue timeout, deadlock, lock timeout) are retried, with capped
exponential backoff, and *never* while this client holds an open
transaction — a retried frame inside a transaction could double-apply a
mutation; the right unit of retry there is the whole transaction, which
belongs to the caller.

Trace propagation (protocol v2): unless ``trace_context=False``, every
request frame carries a fresh ``trace`` object (``trace_id`` plus the
client span's ``span_id``), so the server's spans, slow-query events,
and ERROR frames correlate with this client's requests.
:meth:`DatabaseClient.explain` goes further and *stitches*: the profile
it returns is rooted at a ``client.request`` span whose children are
the server's spans — one tree spanning both processes, linked by the
shared trace id.
"""

from __future__ import annotations

import socket
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import (
    ConnectionClosedError,
    CursorStateError,
    HandshakeError,
    ProtocolError,
    RemoteError,
)
from repro.obs import new_span_id, new_trace_id
from repro.server.protocol import (
    PROTOCOL_MAGIC,
    PROTOCOL_VERSION,
    Opcode,
    decode_payload,
    encode_payload,
    read_frame,
    write_frame,
)

#: Retry schedule defaults: attempts beyond the first, base and cap of
#: the exponential backoff (seconds).
DEFAULT_MAX_RETRIES = 3
DEFAULT_BACKOFF_BASE = 0.05
DEFAULT_BACKOFF_CAP = 1.0


class DatabaseClient:
    """One connection to a :class:`~repro.server.server.DatabaseServer`."""

    def __init__(self, host: str, port: int,
                 connect_timeout: float = 5.0,
                 request_timeout: Optional[float] = 30.0,
                 max_retries: int = DEFAULT_MAX_RETRIES,
                 backoff_base: float = DEFAULT_BACKOFF_BASE,
                 backoff_cap: float = DEFAULT_BACKOFF_CAP,
                 trace_context: bool = True) -> None:
        self.host = host
        self.port = port
        self.trace_context = trace_context
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._lock = threading.Lock()
        self._request_id = 0
        self._in_transaction = False
        self._closed = False
        #: Request id of a sent-but-unread FETCH (cursor prefetch).
        #: While set, any other request would desynchronize the strict
        #: request/response stream, so _roundtrip refuses it.
        self._pending_fetch: Optional[int] = None
        self._sock = socket.create_connection((host, port),
                                              timeout=connect_timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock.settimeout(request_timeout)
        self.session = self._handshake()

    # -- lifecycle -----------------------------------------------------------

    def _handshake(self) -> Dict[str, Any]:
        hello = {"magic": PROTOCOL_MAGIC, "protocol": PROTOCOL_VERSION,
                 "client": "repro-client"}
        try:
            return self._roundtrip(Opcode.HELLO, hello)
        except RemoteError as exc:
            self.close()
            raise HandshakeError(exc.remote_message) from exc

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                # Skip the graceful goodbye when a cursor prefetch is
                # still on the wire — the stream position is unknown,
                # and the server cleans up on disconnect regardless.
                if self._pending_fetch is None:
                    write_frame(self._sock, Opcode.CLOSE,
                                self._next_request_id(), b"{}")
                    read_frame(self._sock)
            except (OSError, ProtocolError, ConnectionClosedError):
                pass
            try:
                self._sock.close()
            except OSError:
                pass

    def __enter__(self) -> "DatabaseClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- request plumbing ----------------------------------------------------

    def _next_request_id(self) -> int:
        self._request_id = (self._request_id + 1) & 0xFFFFFFFF
        return self._request_id

    def _roundtrip(self, opcode: Opcode, payload: Dict[str, Any]) -> Any:
        """One request frame out, one response frame in.  Not retried."""
        if (self.trace_context and opcode != Opcode.HELLO
                and "trace" not in payload):
            # Copy before stamping: callers (and the retry loop) reuse
            # their payload dicts, and each attempt is its own span.
            payload = dict(payload)
            payload["trace"] = {"trace_id": new_trace_id(),
                                "span_id": new_span_id()}
        with self._lock:
            if self._closed:
                raise ConnectionClosedError("client is closed")
            if self._pending_fetch is not None:
                raise CursorStateError(
                    "a streaming fetch is outstanding on this "
                    "connection; exhaust or close the cursor before "
                    "issuing other requests")
            request_id = self._next_request_id()
            try:
                write_frame(self._sock, opcode, request_id,
                            encode_payload(payload))
                frame = read_frame(self._sock)
            except socket.timeout as exc:
                # The response is lost; the stream position is unknown.
                self._abandon()
                raise ConnectionClosedError(
                    "timed out waiting for a response") from exc
            except ConnectionClosedError:
                self._abandon()
                raise
            except ProtocolError:
                # Bad length prefix or CRC: the byte stream is
                # desynchronized and can never be trusted again.
                self._abandon()
                raise
            except OSError as exc:
                self._abandon()
                raise ConnectionClosedError(str(exc)) from exc
            if frame.request_id != request_id:
                self._abandon()
                if frame.opcode == Opcode.ERROR and frame.request_id == 0:
                    # Server-initiated error (connection refusal,
                    # framing failure): it answers no specific request,
                    # so it carries request id 0.  Surface the error
                    # itself; the server hangs up after sending it.
                    body = decode_payload(frame.payload)
                    error = RemoteError(body.get("error", "ReproError"),
                                        body.get("message", ""),
                                        transient=bool(
                                            body.get("transient")))
                    error.trace_id = body.get("trace_id")
                    raise error
                raise ProtocolError(
                    f"response for request {frame.request_id}, "
                    f"expected {request_id}")
        body = decode_payload(frame.payload)
        if frame.opcode == Opcode.ERROR:
            error = RemoteError(body.get("error", "ReproError"),
                                body.get("message", ""),
                                transient=bool(body.get("transient")))
            # The server echoes the request's trace id into the ERROR
            # frame (protocol v2) so a failure is greppable in the
            # server's slow-query/event logs.
            error.trace_id = body.get("trace_id")
            raise error
        if frame.opcode != Opcode.RESULT:
            raise ProtocolError(f"unexpected response opcode "
                                f"{frame.opcode}")
        return body

    def _abandon(self) -> None:
        """Mark the connection unusable after a stream-level failure."""
        self._closed = True
        self._pending_fetch = None
        try:
            self._sock.close()
        except OSError:
            pass

    def _send_fetch(self, cursor_id: int) -> int:
        """Write one FETCH frame without reading the response.

        The returned request id must be redeemed with
        :meth:`_recv_fetch` before anything else uses the connection;
        until then ``_pending_fetch`` makes every other request fail
        fast instead of desynchronizing the stream.
        """
        payload: Dict[str, Any] = {"cursor_id": cursor_id}
        if self.trace_context:
            payload["trace"] = {"trace_id": new_trace_id(),
                                "span_id": new_span_id()}
        with self._lock:
            if self._closed:
                raise ConnectionClosedError("client is closed")
            if self._pending_fetch is not None:
                raise CursorStateError(
                    "a streaming fetch is already outstanding on this "
                    "connection")
            request_id = self._next_request_id()
            try:
                write_frame(self._sock, Opcode.FETCH, request_id,
                            encode_payload(payload))
            except OSError as exc:
                self._abandon()
                raise ConnectionClosedError(str(exc)) from exc
            self._pending_fetch = request_id
            return request_id

    def _recv_fetch(self, request_id: int) -> Dict[str, Any]:
        """Read the response to a previously sent FETCH."""
        with self._lock:
            if self._closed:
                raise ConnectionClosedError("client is closed")
            if self._pending_fetch != request_id:
                raise CursorStateError(
                    f"fetch {request_id} is not outstanding")
            try:
                frame = read_frame(self._sock)
            except socket.timeout as exc:
                self._abandon()
                raise ConnectionClosedError(
                    "timed out waiting for a response") from exc
            except ConnectionClosedError:
                self._abandon()
                raise
            except ProtocolError:
                self._abandon()
                raise
            except OSError as exc:
                self._abandon()
                raise ConnectionClosedError(str(exc)) from exc
            self._pending_fetch = None
            if frame.request_id != request_id:
                self._abandon()
                raise ProtocolError(
                    f"response for request {frame.request_id}, "
                    f"expected {request_id}")
        body = decode_payload(frame.payload)
        if frame.opcode == Opcode.ERROR:
            error = RemoteError(body.get("error", "ReproError"),
                                body.get("message", ""),
                                transient=bool(body.get("transient")))
            error.trace_id = body.get("trace_id")
            raise error
        if frame.opcode != Opcode.RESULT:
            raise ProtocolError(f"unexpected response opcode "
                                f"{frame.opcode}")
        return body

    def _reset_transaction_state(self) -> None:
        """Ensure no server-side transaction survives on this connection.

        Called after a failed COMMIT and when a pooled connection comes
        back with a transaction still open.  If the server cannot
        confirm the transaction is gone, the connection is abandoned —
        the server rolls a session's transaction back on disconnect, so
        dropping the link is always a safe (if blunt) resolution.
        """
        if not self._in_transaction:
            return
        self._in_transaction = False
        if self._closed:
            return  # disconnect already rolls the transaction back
        try:
            self._roundtrip(Opcode.ROLLBACK, {})
        except RemoteError as exc:
            if exc.transient:
                # The server did not process the ROLLBACK; only
                # dropping the connection guarantees the txn dies.
                self._abandon()
            # Non-transient (e.g. "no open transaction") means the
            # server definitively has nothing left open.
        except (ConnectionClosedError, ProtocolError):
            pass  # _roundtrip already abandoned the connection
        except OSError:
            self._abandon()

    def _request(self, opcode: Opcode, payload: Dict[str, Any]) -> Any:
        """A round-trip with transient-error retry (outside txns only)."""
        attempt = 0
        while True:
            try:
                return self._roundtrip(opcode, payload)
            except RemoteError as exc:
                if not exc.transient or self._in_transaction:
                    raise
                if attempt >= self.max_retries:
                    raise
                delay = min(self.backoff_cap,
                            self.backoff_base * (2 ** attempt))
                attempt += 1
                time.sleep(delay)

    # -- public API ----------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self._request(Opcode.PING, {})

    def stats(self, events: int = 0) -> Dict[str, Any]:
        """Server state + metrics snapshot (``STATS`` opcode, ungated —
        it answers even while the server sheds gated work).  *events*
        > 0 appends the last that-many structured event-log entries."""
        payload: Dict[str, Any] = {}
        if events:
            payload["events"] = events
        return self._request(Opcode.STATS, payload)

    def query(self, text: str,
              params: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """Run MQL; returns the decoded result payload (see
        ``docs/server.md`` for its shape)."""
        payload: Dict[str, Any] = {"text": text}
        if params:
            payload["params"] = params
        return self._request(Opcode.QUERY, payload)

    def query_stream(self, text: str,
                     params: Optional[Dict[str, Any]] = None,
                     chunk_entries: int = 128) -> "ResultCursor":
        """Run MQL through a server-side streaming cursor.

        Returns a :class:`ResultCursor` that pulls the result in chunks
        of at most *chunk_entries* entries, so neither side ever
        materializes the whole result (or needs it to fit one wire
        frame).  Requires protocol v3; iterate the cursor for entry
        dicts, or use ``chunks()`` for whole batches.
        """
        payload: Dict[str, Any] = {"text": text,
                                   "stream": {"chunk_entries":
                                              chunk_entries}}
        if params:
            payload["params"] = params
        body = self._request(Opcode.QUERY, payload)
        return ResultCursor(self, body["cursor"])

    def wal_stream(self, from_lsn: int, max_records: int = 512,
                   wait_ms: int = 0, replica: Optional[str] = None,
                   ack_lsn: Optional[int] = None) -> Dict[str, Any]:
        """Fetch one batch of WAL records (``WAL_STREAM`` opcode).

        The replication plane: replicas long-poll this in a loop (see
        ``repro.replication.ReplicaApplier``).  *replica* subscribes the
        named replica for log retention and *ack_lsn* acks its durable
        replay watermark.  Not retried — the applier owns reconnects.
        """
        payload: Dict[str, Any] = {"from_lsn": int(from_lsn),
                                   "max_records": int(max_records),
                                   "wait_ms": int(wait_ms)}
        if replica is not None:
            payload["replica"] = replica
        if ack_lsn is not None:
            payload["ack_lsn"] = int(ack_lsn)
        return self._roundtrip(Opcode.WAL_STREAM, payload)

    def change_stream(self, subscriber: str,
                      from_lsn: Optional[int] = None,
                      max_records: int = 512, wait_ms: int = 0,
                      types: Optional[List[str]] = None,
                      kinds: Optional[List[str]] = None,
                      roots: Optional[List[int]] = None,
                      ack_lsn: Optional[int] = None,
                      unsubscribe: bool = False) -> Dict[str, Any]:
        """Fetch one batch of decoded change events (``SUBSCRIBE``).

        The change-data-capture plane (see ``docs/cdc.md``): a named
        subscriber long-polls committed, typed change events; its ack
        watermark is persisted server-side, so a reconnect without
        *from_lsn* resumes exactly after the last acked event.  Not
        retried — :meth:`subscribe` owns the polling loop.
        """
        payload: Dict[str, Any] = {"subscriber": subscriber}
        if unsubscribe:
            payload["unsubscribe"] = True
            return self._roundtrip(Opcode.SUBSCRIBE, payload)
        payload["max_records"] = int(max_records)
        payload["wait_ms"] = int(wait_ms)
        if from_lsn is not None:
            payload["from_lsn"] = int(from_lsn)
        if types:
            payload["types"] = list(types)
        if kinds:
            payload["kinds"] = list(kinds)
        if roots:
            payload["roots"] = [int(root) for root in roots]
        if ack_lsn is not None:
            payload["ack_lsn"] = int(ack_lsn)
        return self._roundtrip(Opcode.SUBSCRIBE, payload)

    def subscribe(self, subscriber: str,
                  types: Optional[List[str]] = None,
                  kinds: Optional[List[str]] = None,
                  roots: Optional[List[int]] = None,
                  from_lsn: Optional[int] = None,
                  batch_size: int = 512,
                  poll_ms: int = 500) -> "ChangeFeed":
        """A long-polling iterator over this server's change stream.

        Events are acked as they are *consumed*: each poll acks the last
        event the previous iteration step yielded, so a consumer that
        dies mid-batch resumes (from the server's persisted ack) at the
        first unconsumed event — no gaps, no duplicates.
        """
        return ChangeFeed(self, subscriber, types=types, kinds=kinds,
                          roots=roots, from_lsn=from_lsn,
                          batch_size=batch_size, poll_ms=poll_ms)

    def prepare(self, text: str) -> "PreparedStatement":
        body = self._request(Opcode.PREPARE, {"text": text})
        return PreparedStatement(self, text,
                                 parameterized=body.get("parameterized",
                                                        False))

    def execute(self, text: str,
                params: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"text": text}
        if params:
            payload["params"] = params
        return self._request(Opcode.EXECUTE, payload)

    def explain(self, text: str,
                params: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """EXPLAIN ANALYZE over the wire, stitched into one span tree.

        With trace context enabled, the returned profile is rooted at a
        ``client.request`` span (wall time as *this process* saw it —
        wire latency included) whose children are the server's spans;
        client and server spans share one ``trace_id``, and the
        server-side root parents onto the client span's id.  The gap
        between the client span's duration and the server root's is the
        protocol tax: serialization, the TCP hop, and scheduling.
        """
        payload: Dict[str, Any] = {"text": text}
        if params:
            payload["params"] = params
        if not self.trace_context:
            return self._request(Opcode.EXPLAIN, payload)
        trace_id, span_id = new_trace_id(), new_span_id()
        payload["trace"] = {"trace_id": trace_id, "span_id": span_id}
        started = time.perf_counter()
        body = self._request(Opcode.EXPLAIN, payload)
        duration_ms = (time.perf_counter() - started) * 1000.0
        profile = body.get("profile") if isinstance(body, dict) else None
        if isinstance(profile, dict):
            profile["spans"] = [{
                "name": "client.request",
                "attrs": {"opcode": "EXPLAIN",
                          "server": f"{self.host}:{self.port}"},
                "duration_ms": round(duration_ms, 3),
                "metrics": {},
                "children": profile.get("spans", []),
                "trace_id": trace_id,
                "span_id": span_id,
                "parent_span_id": None,
            }]
            profile["trace_id"] = trace_id
        return body

    def mutate(self, op: str, **args: Any) -> Dict[str, Any]:
        """Send one mutation (autocommitted unless a txn is open)."""
        return self._request(Opcode.MUTATE, {"op": op, "args": args})

    # -- transactions --------------------------------------------------------

    def begin(self) -> "ClientTransaction":
        body = self._roundtrip(Opcode.BEGIN, {})
        self._in_transaction = True
        return ClientTransaction(self, body["txn_id"])

    @contextmanager
    def transaction(self) -> Iterator["ClientTransaction"]:
        """Context-managed transaction: commit on exit, rollback on
        exception (mirroring ``TemporalDatabase.transaction``)."""
        txn = self.begin()
        try:
            yield txn
        except BaseException:
            txn.rollback()
            raise
        else:
            txn.commit()


class ClientTransaction:
    """Handle for one server-side transaction on one connection."""

    def __init__(self, client: DatabaseClient, txn_id: int) -> None:
        self._client = client
        self.txn_id = txn_id
        self.active = True

    def _mutate(self, op: str, **args: Any) -> Dict[str, Any]:
        if not self.active:
            raise ConnectionClosedError("transaction already finished")
        return self._client._roundtrip(Opcode.MUTATE,
                                       {"op": op, "args": args})

    def insert(self, type_name: str, values: Dict[str, Any],
               valid_from: int, valid_to: Optional[int] = None,
               atom_id: Optional[int] = None) -> int:
        args: Dict[str, Any] = {"type": type_name, "values": values,
                                "valid_from": valid_from}
        if valid_to is not None:
            args["valid_to"] = valid_to
        if atom_id is not None:
            args["atom_id"] = atom_id
        return self._mutate("insert", **args)["atom_id"]

    def update(self, atom_id: int, changes: Dict[str, Any],
               valid_from: int, valid_to: Optional[int] = None) -> None:
        args: Dict[str, Any] = {"atom_id": atom_id, "changes": changes,
                                "valid_from": valid_from}
        if valid_to is not None:
            args["valid_to"] = valid_to
        self._mutate("update", **args)

    def delete(self, atom_id: int, valid_from: int,
               valid_to: Optional[int] = None) -> None:
        args: Dict[str, Any] = {"atom_id": atom_id,
                                "valid_from": valid_from}
        if valid_to is not None:
            args["valid_to"] = valid_to
        self._mutate("delete", **args)

    def correct(self, atom_id: int, window_start: int, window_end: int,
                changes: Dict[str, Any]) -> None:
        self._mutate("correct", atom_id=atom_id,
                     window_start=window_start, window_end=window_end,
                     changes=changes)

    def link(self, link_name: str, source_id: int, target_id: int,
             valid_from: int, valid_to: Optional[int] = None) -> None:
        args: Dict[str, Any] = {"link": link_name, "source_id": source_id,
                                "target_id": target_id,
                                "valid_from": valid_from}
        if valid_to is not None:
            args["valid_to"] = valid_to
        self._mutate("link", **args)

    def unlink(self, link_name: str, source_id: int, target_id: int,
               valid_from: int, valid_to: Optional[int] = None) -> None:
        args: Dict[str, Any] = {"link": link_name, "source_id": source_id,
                                "target_id": target_id,
                                "valid_from": valid_from}
        if valid_to is not None:
            args["valid_to"] = valid_to
        self._mutate("unlink", **args)

    def query(self, text: str,
              params: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"text": text}
        if params:
            payload["params"] = params
        return self._client._roundtrip(Opcode.QUERY, payload)

    def commit(self) -> None:
        if not self.active:
            return
        try:
            self._client._roundtrip(Opcode.COMMIT, {})
        except RemoteError:
            # The COMMIT was refused (it bypasses admission control,
            # but e.g. a WAL failure is still possible) and the
            # server-side transaction may remain open — a later
            # "autocommit" mutation on this connection would silently
            # join it and be lost with it.  Resolve the transaction
            # before surfacing the failure.
            self.active = False
            self._client._reset_transaction_state()
            raise
        except BaseException:
            # Stream-level failure: _roundtrip abandoned the connection
            # and the server rolls the transaction back when the
            # session dies.  An interrupt mid-roundtrip leaves the
            # stream state unknown — abandon then, too.
            self.active = False
            self._client._in_transaction = False
            if not self._client._closed:
                self._client._abandon()
            raise
        self.active = False
        self._client._in_transaction = False

    def rollback(self) -> None:
        if not self.active:
            return
        try:
            self._client._roundtrip(Opcode.ROLLBACK, {})
        except (ConnectionClosedError, ProtocolError):
            pass  # connection abandoned; the server rolls back for us
        except RemoteError as exc:
            if exc.transient:
                # The server never processed the ROLLBACK; only a
                # disconnect guarantees the transaction dies.
                self._client._abandon()
            # Non-transient means the server handled the frame —
            # nothing is left open on the session.
        finally:
            self.active = False
            self._client._in_transaction = False


class ResultCursor:
    """Client handle for one server-side streaming cursor.

    Iterating yields entry dicts in the exact order the eager
    ``query()`` would return them.  The cursor fetches **one chunk
    ahead**: while the caller consumes chunk N, the FETCH for chunk
    N+1 is already on the wire, overlapping server-side evaluation
    with client-side processing.  While that fetch is outstanding,
    any other request on the same connection raises
    :class:`~repro.errors.CursorStateError` — use one connection per
    concurrent stream.

    The server closes the cursor automatically on exhaustion (the
    final ``done`` chunk) and on producer failure; :meth:`close` is
    only needed when abandoning a stream early, and is always safe to
    call.
    """

    def __init__(self, client: DatabaseClient,
                 meta: Dict[str, Any]) -> None:
        self._client = client
        self.cursor_id = int(meta["cursor_id"])
        self.plan = meta.get("plan")
        self.projected = bool(meta.get("projected"))
        self.chunk_entries = meta.get("chunk_entries")
        self.done = False
        self._closed = False
        self._pending: Optional[int] = None
        self._prefetch()

    def _prefetch(self) -> None:
        if not self.done and not self._closed and self._pending is None:
            self._pending = self._client._send_fetch(self.cursor_id)

    def _next_chunk(self) -> Optional[List[Dict[str, Any]]]:
        if self.done or self._closed:
            return None
        request_id, self._pending = self._pending, None
        if request_id is None:
            request_id = self._client._send_fetch(self.cursor_id)
        try:
            body = self._client._recv_fetch(request_id)
        except BaseException:
            # Any failure ends the stream: the server reclaims the
            # cursor on error and on disconnect.
            self.done = True
            self._closed = True
            raise
        if body.get("done"):
            self.done = True
            self._closed = True  # the server already dropped it
            return None
        self._prefetch()
        return body.get("entries", [])

    def chunks(self) -> Iterator[List[Dict[str, Any]]]:
        """Yield whole chunks (lists of entry dicts) until exhaustion."""
        while True:
            chunk = self._next_chunk()
            if chunk is None:
                return
            yield chunk

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        for chunk in self.chunks():
            yield from chunk

    def close(self) -> None:
        """Abandon the stream early and release the server-side cursor.

        Redeems any in-flight prefetch first so the connection is back
        in strict request/response sync and stays usable.
        """
        if self._closed and self._pending is None:
            return
        pending, self._pending = self._pending, None
        if pending is not None:
            try:
                if self._client._recv_fetch(pending).get("done"):
                    self.done = True
            except RemoteError:
                self.done = True  # cursor already dead server-side
            except (ConnectionClosedError, ProtocolError, OSError):
                self._closed = True
                self.done = True
                return
        self._closed = True
        if not self.done and not self._client._closed:
            try:
                self._client._roundtrip(Opcode.CLOSE_CURSOR,
                                        {"cursor_id": self.cursor_id})
            except (RemoteError, ConnectionClosedError, ProtocolError,
                    OSError):
                pass
        self.done = True

    def __enter__(self) -> "ResultCursor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class ChangeFeed:
    """Iterator over a server-side change stream (``SUBSCRIBE``).

    Yields event dicts in commit (LSN) order, long-polling the server
    between batches.  Iteration is endless by design — a tail follows
    the log until the caller breaks out or calls :meth:`close`.  The
    feed acks lazily: the LSN of the last yielded event rides on the
    *next* request, so an event is only ever acked after the caller's
    loop body finished with it.

    ``close()`` flushes the final ack but keeps the subscription (and
    its WAL retention hold) alive for a later resume; ``cancel()``
    unsubscribes, releasing retention.
    """

    def __init__(self, client: DatabaseClient, subscriber: str,
                 types: Optional[List[str]] = None,
                 kinds: Optional[List[str]] = None,
                 roots: Optional[List[int]] = None,
                 from_lsn: Optional[int] = None,
                 batch_size: int = 512, poll_ms: int = 500) -> None:
        self._client = client
        self.subscriber = subscriber
        self._types = list(types) if types else None
        self._kinds = list(kinds) if kinds else None
        self._roots = list(roots) if roots else None
        self._next_from = from_lsn
        self._batch_size = batch_size
        self._poll_ms = poll_ms
        self._pending_ack: Optional[int] = None
        self._closed = False
        #: Stream position after the last poll (server's shippable head
        #: and whether this feed had consumed it all).
        self.head = 0
        self.caught_up = False

    def poll(self, wait_ms: Optional[int] = None) -> List[Dict[str, Any]]:
        """One SUBSCRIBE round-trip; returns the batch of events."""
        if self._closed:
            raise CursorStateError("change feed is closed")
        body = self._client.change_stream(
            self.subscriber, from_lsn=self._next_from,
            max_records=self._batch_size,
            wait_ms=self._poll_ms if wait_ms is None else wait_ms,
            types=self._types, kinds=self._kinds, roots=self._roots,
            ack_lsn=self._pending_ack)
        self._next_from = body["next_from"]
        self.head = body["head"]
        self.caught_up = body["caught_up"]
        return body["events"]

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        while not self._closed:
            for event in self.poll():
                # finally: the ack must also record when the consumer
                # breaks out of its loop (GeneratorExit lands at the
                # yield) — the event *was* delivered, and leaving it
                # unacked would replay it on the next resume.
                try:
                    yield event
                finally:
                    self._pending_ack = event["lsn"]

    def _flush_ack(self) -> None:
        if self._pending_ack is None:
            return
        self._client.change_stream(self.subscriber,
                                   from_lsn=self._pending_ack + 1,
                                   max_records=1, wait_ms=0,
                                   ack_lsn=self._pending_ack)
        self._pending_ack = None

    def close(self) -> None:
        """Flush the final ack; the server-side cursor stays resumable."""
        if self._closed:
            return
        self._closed = True
        try:
            self._flush_ack()
        except (ConnectionClosedError, ProtocolError, OSError):
            pass  # the persisted ack is only one batch behind

    def cancel(self) -> None:
        """Unsubscribe: drop the cursor and its WAL retention hold."""
        if not self._closed:
            self._closed = True
            try:
                self._flush_ack()
            except (ConnectionClosedError, ProtocolError, OSError):
                pass
        self._client.change_stream(self.subscriber, unsubscribe=True)

    def __enter__(self) -> "ChangeFeed":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class PreparedStatement:
    """A statement whose parse is primed in the server's plan cache."""

    def __init__(self, client: DatabaseClient, text: str,
                 parameterized: bool) -> None:
        self._client = client
        self.text = text
        self.parameterized = parameterized

    def execute(self, params: Optional[Dict[str, Any]] = None
                ) -> Dict[str, Any]:
        return self._client.execute(self.text, params)


class _ReplicaTarget:
    """One replica endpoint inside a routing :class:`ClientPool`.

    Carries its own sub-pool plus the routing state: the cached
    transaction-time watermark (monotone, so a stale value is merely
    conservative — never incorrect) and the quarantine clock.
    """

    def __init__(self, host: str, port: int, size: int,
                 health_check_idle: Optional[float],
                 client_kwargs: Dict[str, Any]) -> None:
        self.host = host
        self.port = port
        self.pool = ClientPool(host, port, size=size,
                               health_check_idle=health_check_idle,
                               **client_kwargs)
        self.watermark_tt = -1
        self.watermark_at = 0.0  # monotonic time of the last refresh
        self.failures = 0
        self.dead_until = 0.0

    def snapshot(self) -> Dict[str, Any]:
        now = time.monotonic()
        return {
            "endpoint": f"{self.host}:{self.port}",
            "watermark_tt": self.watermark_tt,
            "quarantined": self.dead_until > now,
            "failures": self.failures,
        }


#: Quarantine backoff for a dead replica: base doubles per consecutive
#: failure, capped (seconds).
_QUARANTINE_BASE = 0.5
_QUARANTINE_CAP = 30.0


class ClientPool:
    """Thread-safe pool of connections to one server.

    Connections are created lazily up to ``size`` and handed out
    exclusively; :meth:`acquire` blocks when all are lent.  A connection
    that died in use (``ConnectionClosedError`` marks it closed) is
    discarded instead of returned, so the pool self-heals.

    Connections idle past ``health_check_idle`` seconds are PING-probed
    before being lent again — a server restart, an idle-reap, or a
    half-dead NAT mapping otherwise surfaces as an error on the *next
    borrower's* first real request.  A probe that gets any server
    response (even an error frame) proves the connection; only
    stream-level failures discard it.  ``health_check_idle=None``
    disables probing.

    **Replica routing** (``replicas=["host:port", ...]``): queries whose
    belief time is pinned at or below a replica's replayed
    transaction-time watermark (``AS OF T`` with ``T <= watermark``)
    are served round-robin from the replicas; everything else —
    current-knowledge reads, writes, transactions, :meth:`acquire` —
    pins to the primary.  Watermarks are refreshed via the replica's
    PING response at most every ``replica_watermark_ttl`` seconds, and
    only when the cached value is too low for the query at hand (the
    watermark is monotone, so a stale cache can only under-route, never
    mis-route).  A replica that fails at the stream level is
    quarantined with exponential backoff and the query falls back to
    the next replica, then the primary — routing never turns a replica
    outage into an error.
    """

    def __init__(self, host: str, port: int, size: int = 4,
                 health_check_idle: Optional[float] = 30.0,
                 replicas: Optional[List[Any]] = None,
                 replica_pool_size: Optional[int] = None,
                 replica_watermark_ttl: float = 0.25,
                 **client_kwargs: Any) -> None:
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self.host = host
        self.port = port
        self.size = size
        self.health_check_idle = health_check_idle
        self._client_kwargs = client_kwargs
        self._lock = threading.Lock()
        self._available_cond = threading.Condition(self._lock)
        self._idle: List[Tuple[DatabaseClient, float]] = []
        self._created = 0
        self._closed = False
        self._watermark_ttl = replica_watermark_ttl
        self._rr = 0
        self._replicas: List[_ReplicaTarget] = []
        for endpoint in replicas or []:
            if isinstance(endpoint, str):
                replica_host, _, port_text = endpoint.rpartition(":")
                replica_port = int(port_text)
            else:
                replica_host, replica_port = endpoint
            self._replicas.append(_ReplicaTarget(
                replica_host, int(replica_port),
                replica_pool_size or size, health_check_idle,
                client_kwargs))

    def _connect(self) -> DatabaseClient:
        return DatabaseClient(self.host, self.port, **self._client_kwargs)

    @staticmethod
    def _probe(client: DatabaseClient) -> bool:
        """True if the connection still reaches a live server."""
        try:
            client.ping()
            return True
        except RemoteError:
            # The server answered — a shed or failed PING still proves
            # the connection works.
            return True
        except (ConnectionClosedError, ProtocolError, OSError):
            return False

    @contextmanager
    def acquire(self) -> Iterator[DatabaseClient]:
        client: Optional[DatabaseClient] = None
        while client is None:
            with self._available_cond:
                while True:
                    if self._closed:
                        raise ConnectionClosedError("pool is closed")
                    if self._idle:
                        candidate, returned_at = self._idle.pop()
                        break
                    if self._created < self.size:
                        self._created += 1
                        candidate = None  # create outside the lock
                        returned_at = 0.0
                        break
                    self._available_cond.wait()
            if candidate is None:
                try:
                    client = self._connect()
                except BaseException:
                    with self._available_cond:
                        self._created -= 1
                        self._available_cond.notify()
                    raise
                continue
            stale = (self.health_check_idle is not None
                     and time.monotonic() - returned_at
                     >= self.health_check_idle)
            if stale and not self._probe(candidate):
                candidate.close()
                with self._available_cond:
                    self._created -= 1
                    self._available_cond.notify()
                continue  # try the next idle/new connection
            client = candidate
        try:
            yield client
        finally:
            # A borrower that left a transaction open (begin() without
            # commit/rollback) must not hand it to the next borrower,
            # whose "autocommit" mutations would silently join it and
            # be rolled back with it.  Roll it back — or, when that
            # cannot be confirmed, discard the connection like a dead
            # one.
            if not client._closed and client._in_transaction:
                client._reset_transaction_state()
            dead = client._closed
            with self._available_cond:
                if dead or self._closed:
                    self._created -= 1
                else:
                    self._idle.append((client, time.monotonic()))
                self._available_cond.notify()
            if dead or self._closed:
                client.close()

    def query(self, text: str,
              params: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        for target in self._eligible_replicas(text):
            try:
                with target.pool.acquire() as client:
                    body = client.query(text, params)
            except (ConnectionClosedError, ProtocolError, OSError):
                self._quarantine(target)
                continue
            target.failures = 0
            return body
        with self.acquire() as client:
            return client.query(text, params)

    # -- replica routing -----------------------------------------------------

    def _eligible_replicas(self, text: str) -> List[_ReplicaTarget]:
        """Replicas able to answer *text* exactly, in round-robin order."""
        if not self._replicas:
            return []
        from repro.replication.router import routing_bound
        bound = routing_bound(text)
        if bound is None:
            return []
        with self._lock:
            start = self._rr
            self._rr += 1
        count = len(self._replicas)
        now = time.monotonic()
        eligible = []
        for index in range(count):
            target = self._replicas[(start + index) % count]
            if target.dead_until > now:
                continue
            if (target.watermark_tt < bound
                    and now - target.watermark_at >= self._watermark_ttl):
                self._refresh_watermark(target, now)
                if target.dead_until > now:
                    continue
            if target.watermark_tt >= bound:
                eligible.append(target)
        return eligible

    def _refresh_watermark(self, target: _ReplicaTarget,
                           now: float) -> None:
        try:
            with target.pool.acquire() as client:
                body = client.ping()
        except (ConnectionClosedError, ProtocolError, OSError,
                RemoteError):
            self._quarantine(target)
            return
        target.watermark_at = now
        replication = body.get("replication") or {}
        watermark = replication.get("replayed_tt")
        if isinstance(watermark, int):
            target.watermark_tt = max(target.watermark_tt, watermark)
        target.failures = 0

    @staticmethod
    def _quarantine(target: _ReplicaTarget) -> None:
        target.failures += 1
        backoff = min(_QUARANTINE_CAP,
                      _QUARANTINE_BASE * (2 ** (target.failures - 1)))
        target.dead_until = time.monotonic() + backoff

    def replica_status(self) -> List[Dict[str, Any]]:
        """Routing state of every configured replica (for monitoring
        and tests)."""
        return [target.snapshot() for target in self._replicas]

    def close(self) -> None:
        with self._available_cond:
            if self._closed:
                return
            self._closed = True
            idle, self._idle = self._idle, []
            self._created -= len(idle)
            self._available_cond.notify_all()
        for client, _ in idle:
            client.close()
        for target in self._replicas:
            target.pool.close()

    def __enter__(self) -> "ClientPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

"""Plain-HTTP observability sidecar: ``/metrics``, ``/health``, ``/stats``.

The wire protocol is binary and custom; fleet tooling (Prometheus,
load balancers, ``curl``) speaks HTTP.  Rather than teach every scraper
the frame format, the server can open a second, read-only listener that
serves exactly three paths:

* ``GET /metrics`` — the full registry in Prometheus text exposition
  format 0.0.4 (counters, gauges, histograms-as-summaries), plus
  computed gauges for uptime, session count, and drain state;
* ``GET /health``  — drain-aware liveness: ``200 ok`` while serving,
  ``503 draining`` from the moment graceful shutdown begins until the
  process exits, so a load balancer stops routing before the listener
  disappears;
* ``GET /stats``   — the same JSON document the ``STATS`` opcode
  returns (server state + metrics snapshot), for humans with ``curl``.

The sidecar binds in the constructor (so ``port=0`` callers can read
the assigned port back before starting) and serves from daemon threads;
it must be stopped *after* drain completes — a health endpoint that
dies at the start of shutdown cannot report "draining".
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs import render_prometheus

#: Content type mandated by the Prometheus text exposition format.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class MetricsSidecar:
    """One HTTP listener serving a :class:`DatabaseServer`'s telemetry."""

    def __init__(self, server, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self._server = server
        sidecar = self

        class _Handler(BaseHTTPRequestHandler):
            # Telemetry is high-frequency and low-value per request;
            # default request logging to stderr would drown the serve
            # log, so it is silenced entirely.
            def log_message(self, fmt, *args):  # noqa: D102
                pass

            def do_GET(self):  # noqa: D102
                try:
                    sidecar._route(self)
                except (OSError, ValueError):
                    pass  # scraper hung up mid-response

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "MetricsSidecar":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-sidecar", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(1.0)

    # -- routing -------------------------------------------------------------

    def _route(self, handler: BaseHTTPRequestHandler) -> None:
        path = handler.path.split("?", 1)[0]
        if path == "/metrics":
            self._respond(handler, 200, METRICS_CONTENT_TYPE,
                          self._render_metrics())
        elif path == "/health":
            server = self._server
            if server.draining:
                self._respond(handler, 503, "application/json",
                              json.dumps({"status": "draining"}))
            else:
                self._respond(handler, 200, "application/json",
                              json.dumps({"status": "ok"}))
        elif path == "/stats":
            body = {"server": self._server.state_snapshot(),
                    "metrics": self._server.db.metrics.snapshot()}
            self._respond(handler, 200, "application/json",
                          json.dumps(body, sort_keys=True, default=str))
        else:
            self._respond(handler, 404, "text/plain",
                          "unknown path; try /metrics, /health, /stats")

    def _render_metrics(self) -> str:
        server = self._server
        state = server.state_snapshot()
        return render_prometheus(server.db.metrics, extra_gauges={
            "server_uptime_seconds": state["uptime_seconds"],
            "server_sessions": state["sessions"],
            "server_draining": 1.0 if state["draining"] else 0.0,
            "server_start_time_seconds": time.time()
            - state["uptime_seconds"],
        })

    @staticmethod
    def _respond(handler: BaseHTTPRequestHandler, status: int,
                 content_type: str, body: str) -> None:
        data = body.encode("utf-8")
        handler.send_response(status)
        handler.send_header("Content-Type", content_type)
        handler.send_header("Content-Length", str(len(data)))
        handler.end_headers()
        handler.wfile.write(data)

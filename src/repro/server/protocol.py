"""Wire protocol: length-prefixed, CRC-checked frames over TCP.

Frame layout (all integers little-endian)::

    u32 length     -- bytes after this field: 1 + 4 + len(payload) + 4
    u8  opcode     -- Opcode value (unknown values reach dispatch, which
                      answers with an ERROR frame rather than dropping
                      the connection)
    u32 request_id -- echoed verbatim in the response frame
    ..  payload    -- canonical JSON (UTF-8, sorted keys, no spaces)
    u32 crc32      -- zlib.crc32 over opcode + request_id + payload

The CRC turns a torn or corrupted frame into a clean
:class:`~repro.errors.ProtocolError` instead of a JSON parse error deep
inside dispatch.  Payloads are *canonical* JSON — ``sort_keys`` and
fixed separators — so the same logical result always serializes to the
same bytes; the differential tests compare server responses against an
in-process oracle byte for byte.

A connection opens with a handshake: the client sends a HELLO frame
whose payload carries the magic and protocol version; the server
answers RESULT with the negotiated version (or ERROR, then closes, on a
version it does not speak).  Everything after the handshake is
request/response: every request frame gets exactly one RESULT or ERROR
frame with the same ``request_id``.

Protocol version history:

* **1** — the original frame set (QUERY ... CLOSE).
* **2** — adds the ``STATS`` opcode and an optional ``trace`` object in
  request payloads (``{"trace": {"trace_id": ..., "span_id": ...}}``)
  carrying the client's trace context, so the server's spans, slow-query
  events, and ERROR frames correlate with the client's.  Version-1
  clients are still accepted: the ``trace`` key is simply absent and
  STATS is never sent.
* **3** — adds streaming cursors: a ``QUERY`` whose payload carries a
  ``stream`` object answers with a cursor handle instead of entries,
  the ``FETCH`` opcode pulls one bounded chunk of entries per
  round-trip, and ``CLOSE_CURSOR`` releases a cursor early (exhausted
  cursors close themselves).  Results too large for one frame fail with
  a structured ``ResultTooLargeError`` pointing at cursors.  Version-1
  and -2 clients never send ``stream``/FETCH and see byte-identical
  behaviour.

Within version 3 the ``WAL_STREAM`` opcode was added for log-shipping
replication (see ``docs/replication.md``): a replica long-polls batches
of WAL records from its primary and acks its durable replay watermark.
Capability-negotiated rather than version-gated — the server advertises
``"role"`` in its HELLO response, and a peer that never sends
WAL_STREAM sees byte-identical behaviour, so no version bump.

``SUBSCRIBE`` follows the same precedent: a change-data-capture client
long-polls decoded, committed change events from the primary's WAL
(see ``docs/cdc.md``), with a named server-side cursor that survives
reconnects.  Clients that never send it are unaffected.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from enum import IntEnum
from typing import Any, Dict, Optional

from repro.errors import ConnectionClosedError, ProtocolError

#: Protocol magic, sent in the HELLO payload.
PROTOCOL_MAGIC = "tmad"

#: Wire protocol version; bumped on any frame-level change.  The server
#: accepts every version in :data:`SUPPORTED_PROTOCOL_VERSIONS` and the
#: handshake response carries the negotiated (client's) version.
PROTOCOL_VERSION = 3

#: Versions the server still speaks.  Version 1 lacks trace context and
#: the STATS opcode; version 2 lacks streaming cursors; both are
#: otherwise identical.
SUPPORTED_PROTOCOL_VERSIONS = frozenset((1, 2, 3))

#: Hard cap on a frame's ``length`` field.  Larger prefixes are treated
#: as corruption (or abuse) and fail fast without allocating.
MAX_FRAME_BYTES = 8 * 1024 * 1024

#: Fixed bytes inside ``length``: opcode (1) + request_id (4) + crc (4).
_FRAME_OVERHEAD = 9

_HEADER = struct.Struct("<I")
_OPCODE_REQID = struct.Struct("<BI")
_CRC = struct.Struct("<I")


class Opcode(IntEnum):
    """Request and response frame types."""

    HELLO = 1
    QUERY = 2
    PREPARE = 3
    EXECUTE = 4
    BEGIN = 5
    COMMIT = 6
    ROLLBACK = 7
    MUTATE = 8
    EXPLAIN = 9
    PING = 10
    CLOSE = 11
    STATS = 12
    FETCH = 13
    CLOSE_CURSOR = 14
    WAL_STREAM = 15
    SUBSCRIBE = 16

    RESULT = 64
    ERROR = 65


@dataclass(frozen=True, slots=True)
class Frame:
    """One decoded frame.  ``opcode`` stays a raw int so unknown values
    survive to dispatch (which answers them with an ERROR frame)."""

    opcode: int
    request_id: int
    payload: bytes

    def decode(self) -> Any:
        return decode_payload(self.payload)


# -- payload encoding ----------------------------------------------------------


def encode_payload(obj: Any) -> bytes:
    """Canonical JSON bytes: sorted keys, minimal separators, UTF-8."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=False).encode("utf-8")


def decode_payload(data: bytes) -> Any:
    try:
        return json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame payload: {exc}") from exc


def error_payload(exc: BaseException, transient: bool = False,
                  trace_id: Optional[str] = None) -> Dict[str, Any]:
    """The structured body of an ERROR frame.

    Carries the server-side exception class name so the client can
    re-raise something meaningful, a ``transient`` flag driving the
    client's retry policy, and — when the failed request carried trace
    context — the ``trace_id`` so the failure correlates with the
    client's span and the slow-query/event records.
    """
    body: Dict[str, Any] = {"error": type(exc).__name__,
                            "message": str(exc),
                            "transient": bool(transient)}
    if trace_id is not None:
        body["trace_id"] = trace_id
    return body


def extract_trace_context(payload: Any
                          ) -> "tuple[Optional[str], Optional[str]]":
    """``(trace_id, parent_span_id)`` from a request payload's ``trace``
    object, tolerating its absence and any malformed shape (version-1
    clients never send one)."""
    if not isinstance(payload, dict):
        return None, None
    trace = payload.get("trace")
    if not isinstance(trace, dict):
        return None, None
    trace_id = trace.get("trace_id")
    span_id = trace.get("span_id")
    return (trace_id if isinstance(trace_id, str) else None,
            span_id if isinstance(span_id, str) else None)


# -- frame encoding ------------------------------------------------------------


def encode_frame(opcode: int, request_id: int, payload: bytes) -> bytes:
    """Serialize one frame, CRC included."""
    if len(payload) + _FRAME_OVERHEAD > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame cap")
    body = _OPCODE_REQID.pack(opcode & 0xFF, request_id) + payload
    return (_HEADER.pack(len(body) + _CRC.size) + body
            + _CRC.pack(zlib.crc32(body) & 0xFFFFFFFF))


def _recv_exactly(sock, count: int) -> bytes:
    """Read exactly *count* bytes or raise :class:`ConnectionClosedError`.

    A clean EOF on a frame boundary (nothing read yet) raises with
    ``mid_frame=False`` so the caller can treat it as a normal hangup; an
    EOF inside a frame is a truncation.
    """
    chunks = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            error = ConnectionClosedError(
                f"connection closed with {remaining} of {count} "
                f"bytes outstanding")
            error.mid_frame = len(chunks) > 0
            raise error
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _check_length(length: int) -> None:
    if length < _FRAME_OVERHEAD:
        raise ProtocolError(f"frame length {length} below the "
                            f"{_FRAME_OVERHEAD}-byte minimum")
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {length} exceeds the "
                            f"{MAX_FRAME_BYTES}-byte cap")


def _decode_frame_body(data: bytes) -> Frame:
    """CRC-check and unpack one frame body (the bytes after ``length``)."""
    body, crc_bytes = data[:-_CRC.size], data[-_CRC.size:]
    (expected,) = _CRC.unpack(crc_bytes)
    actual = zlib.crc32(body) & 0xFFFFFFFF
    if actual != expected:
        raise ProtocolError(
            f"frame CRC mismatch: got {actual:#010x}, "
            f"frame claims {expected:#010x}")
    opcode, request_id = _OPCODE_REQID.unpack_from(body)
    return Frame(opcode, request_id, body[_OPCODE_REQID.size:])


def read_frame(sock) -> Frame:
    """Read and verify one frame from a blocking socket.

    Raises :class:`ProtocolError` on a bad length prefix or CRC
    mismatch, :class:`ConnectionClosedError` on EOF (``mid_frame`` set
    when the peer vanished inside a frame).
    """
    (length,) = _HEADER.unpack(_recv_exactly(sock, _HEADER.size))
    _check_length(length)
    return _decode_frame_body(_recv_exactly(sock, length))


class FrameAssembler:
    """Incremental frame reassembly for a non-blocking reader.

    The event-loop server reads whatever bytes the socket has and feeds
    them here; :meth:`feed` returns every frame completed so far and
    buffers the tail of a partial one.  A bad length prefix or CRC
    raises :class:`ProtocolError` — after that the byte stream cannot
    be resynchronized and the connection must be dropped, exactly as
    with :func:`read_frame`.
    """

    __slots__ = ("_buf",)

    def __init__(self) -> None:
        self._buf = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Buffered bytes of the (partial) frame still being assembled."""
        return len(self._buf)

    def feed(self, data: bytes) -> "list[Frame]":
        self._buf += data
        frames: list[Frame] = []
        buf = self._buf
        while True:
            if len(buf) < _HEADER.size:
                return frames
            (length,) = _HEADER.unpack_from(buf)
            _check_length(length)
            end = _HEADER.size + length
            if len(buf) < end:
                return frames
            frames.append(_decode_frame_body(bytes(buf[_HEADER.size:end])))
            del buf[:end]


def write_frame(sock, opcode: int, request_id: int, payload: bytes) -> None:
    sock.sendall(encode_frame(opcode, request_id, payload))


# -- result serialization ------------------------------------------------------


def _interval_to_list(interval) -> list:
    return [interval.start, interval.end]


def entries_to_payload(entries, projected: bool) -> "list[Dict[str, Any]]":
    """Canonical list form of result entries.

    Shared by the one-frame :func:`result_to_payload` and the server's
    chunked cursor responses, so a streamed result serializes each entry
    to exactly the bytes the eager path would have produced.
    """
    items = []
    for entry in entries:
        item: Dict[str, Any] = {
            "root_id": entry.root_id,
            "valid": _interval_to_list(entry.valid),
        }
        if projected:
            item["row"] = entry.row
        else:
            item["molecule"] = (entry.molecule.to_dict()
                                if entry.molecule is not None else None)
        items.append(item)
    return items


def result_to_payload(result, profile: Optional[Any] = None
                      ) -> Dict[str, Any]:
    """Canonical dictionary form of a :class:`~repro.mql.result.QueryResult`.

    This is the single serializer both the server and the tests'
    in-process oracle use, so "byte-identical to local execution" is a
    meaningful check: same entries in, same canonical JSON out.
    """
    payload: Dict[str, Any] = {
        "plan": result.plan,
        "projected": result.projected,
        "entries": entries_to_payload(result, result.projected),
    }
    chosen = profile if profile is not None else result.profile
    if chosen is not None:
        payload["profile"] = chosen.to_dict()
    return payload

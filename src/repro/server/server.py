"""Threaded TCP server in front of one embedded TemporalDatabase.

One accept loop hands each connection to a dedicated worker thread
(classic thread-per-connection — the kernel's ReadWriteLock already
arbitrates readers and writers, so worker threads map directly onto the
concurrency the engine supports).  Each connection is a *session*:

* a monotonically increasing session id,
* at most one open transaction (BEGIN … COMMIT/ROLLBACK frames map
  straight onto the kernel's transaction manager; MUTATE frames outside
  a transaction auto-commit),
* a last-activity clock the idle reaper checks.

Every request passes through the :class:`AdmissionController` before it
touches the kernel; a shed request gets a transient ERROR frame, never
a hang.  Graceful shutdown stops accepting, nudges idle sessions
closed, waits for in-flight workers to drain, rolls back whatever
transactions remained open, and checkpoints the database so a
subsequent open needs no recovery.

Observability: requests carrying a protocol-v2 ``trace`` object are
served under the client's trace context — the server's spans,
slow-query events, and ERROR frames all carry the client's
``trace_id``, so an EXPLAIN over the wire renders client and server as
one stitched span tree.  Lifecycle transitions (session open/close,
shed, reap, drain, checkpoint) land in a shared
:class:`~repro.obs.events.EventLog`; the ``STATS`` opcode and the
optional HTTP sidecar (``/metrics``, ``/health``, ``/stats``) expose
the same state to clients, scrapers, and load balancers.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Any, Dict, Optional

from repro.errors import (
    HandshakeError,
    ProtocolError,
    ReproError,
    RequestTimeoutError,
    ServerSaturatedError,
    TransactionStateError,
    ConnectionClosedError,
)
from repro.errors import TRANSIENT_ERRORS
from repro.obs import QueryProfile, new_trace_id
from repro.server.admission import AdmissionController
from repro.server.http_sidecar import MetricsSidecar
from repro.temporal import FOREVER
from repro.server.protocol import (
    PROTOCOL_MAGIC,
    PROTOCOL_VERSION,
    SUPPORTED_PROTOCOL_VERSIONS,
    Frame,
    Opcode,
    encode_payload,
    error_payload,
    extract_trace_context,
    read_frame,
    result_to_payload,
    write_frame,
)

#: How often (seconds) the reaper sweeps for idle sessions.
REAPER_INTERVAL = 1.0

#: How long (seconds) a shutdown-path close waits for the session's
#: in-flight request before leaving its transaction to the worker's own
#: cleanup.
CLOSE_INTERLOCK_TIMEOUT = 5.0

#: Frames that bypass admission gating, for two distinct reasons.
#: COMMIT/ROLLBACK/CLOSE release resources (locks, undo state, the
#: session itself) rather than consume them: shedding one would strand
#: a server-side transaction the client believes finished — later
#: "autocommit" mutations on that connection would silently join it and
#: be rolled back with it.  STATS is the monitoring plane: an operator
#: diagnosing a saturated server needs it to answer precisely when
#: gated requests are being refused.
_UNGATED_OPCODES = frozenset(
    (int(Opcode.COMMIT), int(Opcode.ROLLBACK), int(Opcode.CLOSE),
     int(Opcode.STATS)))


class Session:
    """Per-connection state: socket, open transaction, activity clock."""

    def __init__(self, session_id: int, conn: socket.socket,
                 peer: str) -> None:
        self.id = session_id
        self.conn = conn
        self.peer = peer
        self.protocol = PROTOCOL_VERSION  # negotiated in the handshake
        self.txn = None  # TransactionContext while a txn is open
        self.last_active = time.monotonic()
        self.closing = False
        # Held around request dispatch so a shutdown-path abort of
        # self.txn cannot run concurrently with a request using it.
        self.lock = threading.Lock()
        # True while a request is being dispatched; the idle reaper
        # must not judge a long-running request as an idle session.
        self.inflight = False

    def touch(self) -> None:
        self.last_active = time.monotonic()


class DatabaseServer:
    """Serve one TemporalDatabase over TCP.

    ``port=0`` binds an ephemeral port (read it back from ``.port``
    after construction) — the form every test uses.
    """

    def __init__(self, db, host: str = "127.0.0.1", port: int = 0,
                 max_connections: int = 32,
                 idle_timeout: Optional[float] = 300.0,
                 admission: Optional[AdmissionController] = None,
                 metrics_port: Optional[int] = None,
                 metrics_host: str = "127.0.0.1") -> None:
        self.db = db
        self.max_connections = max_connections
        self.idle_timeout = idle_timeout
        self.admission = admission or AdmissionController(
            metrics=db.metrics)
        #: Shared structured event log (owned by the admission
        #: controller so shed/slow-query events and lifecycle events
        #: interleave in one ring).
        self.events = self.admission.events
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(128)
        self.host, self.port = self._listener.getsockname()[:2]
        self._sessions: Dict[int, Session] = {}
        self._sessions_lock = threading.Lock()
        self._next_session = 0
        self._workers: Dict[int, threading.Thread] = {}
        self._stopping = threading.Event()
        self._accept_thread: Optional[threading.Thread] = None
        self._reaper_thread: Optional[threading.Thread] = None
        self._started_monotonic = time.monotonic()
        self._started_at = time.time()
        #: True from the first moment of graceful shutdown until the
        #: process exits; ``/health`` keys off it.
        self.draining = False
        # Bind the sidecar in the constructor (port=0 callers read the
        # assigned port back before start()); its threads spin up in
        # start() and die after drain completes in shutdown().
        self.sidecar: Optional[MetricsSidecar] = None
        if metrics_port is not None:
            self.sidecar = MetricsSidecar(self, host=metrics_host,
                                          port=metrics_port)
        metrics = db.metrics
        self._g_connections = metrics.gauge("server.connections.active")
        self._c_accepted = metrics.counter("server.connections.accepted")
        self._c_refused = metrics.counter("server.connections.refused")
        self._c_reaped = metrics.counter("server.connections.reaped")

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "DatabaseServer":
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-server-accept",
            daemon=True)
        self._accept_thread.start()
        self._reaper_thread = threading.Thread(
            target=self._reaper_loop, name="repro-server-reaper",
            daemon=True)
        self._reaper_thread.start()
        if self.sidecar is not None:
            self.sidecar.start()
        self.events.emit("server.start", host=self.host, port=self.port,
                         metrics_port=(self.sidecar.port
                                       if self.sidecar else None))
        return self

    def __enter__(self) -> "DatabaseServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.shutdown()

    def shutdown(self, drain_timeout: float = 10.0) -> None:
        """Graceful stop: drain in-flight work, then checkpoint.

        Idempotent.  New connections are refused immediately; existing
        workers get ``drain_timeout`` seconds to finish their current
        request and notice the stop flag, after which their sockets are
        closed under them.  Open transactions roll back (the client
        never got a COMMIT acknowledgement, so nothing is lost), and the
        database checkpoints so the next open replays no WAL.
        """
        if self._stopping.is_set():
            return
        self.draining = True  # /health flips 503 before the drain begins
        self._stopping.set()
        self.events.emit("server.drain.begin",
                         sessions=len(self._sessions))
        try:
            # shutdown() (not just close()) forces a blocked accept() in
            # the listener thread to return; close() alone leaves the
            # kernel-side listening socket alive while the syscall holds
            # its file reference, so the port would keep accepting.
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        if self._accept_thread is not None:
            self._accept_thread.join(1.0)
        deadline = time.monotonic() + drain_timeout
        with self._sessions_lock:
            sessions = list(self._sessions.values())
            workers = list(self._workers.values())
        for session in sessions:
            session.closing = True
            # Unblock workers parked in recv: half-close the socket so
            # their read returns EOF while any in-flight response still
            # drains.
            try:
                session.conn.shutdown(socket.SHUT_RD)
            except OSError:
                pass
        for worker in workers:
            remaining = deadline - time.monotonic()
            if remaining > 0:
                worker.join(remaining)
        with self._sessions_lock:
            leftovers = list(self._sessions.values())
        for session in leftovers:
            self._close_session(session)
        # Workers that ignored the drain window were errored out by the
        # socket close above; give them a moment to unwind so the
        # checkpoint does not walk engine state they are still mutating.
        with self._sessions_lock:
            stragglers = list(self._workers.values())
        for worker in stragglers:
            worker.join(1.0)
        self.db.checkpoint()
        self.events.emit("server.checkpoint")
        self.events.emit("server.stop")
        # The sidecar outlives the drain so /health can answer 503
        # while it happens; only now does it go away.
        if self.sidecar is not None:
            self.sidecar.stop()

    # -- accept / reap -------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, addr = self._listener.accept()
            except OSError:
                return  # listener closed by shutdown()
            with self._sessions_lock:
                at_capacity = len(self._sessions) >= self.max_connections
            if at_capacity:
                self._c_refused.inc()
                self.events.emit("connection.refused",
                                 peer=f"{addr[0]}:{addr[1]}",
                                 limit=self.max_connections)
                try:
                    write_frame(conn, Opcode.ERROR, 0, encode_payload(
                        error_payload(ServerSaturatedError(
                            f"connection limit of {self.max_connections} "
                            f"reached"), transient=True)))
                except OSError:
                    pass
                conn.close()
                continue
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._sessions_lock:
                self._next_session += 1
                session = Session(self._next_session, conn,
                                  f"{addr[0]}:{addr[1]}")
                self._sessions[session.id] = session
                worker = threading.Thread(
                    target=self._serve_session, args=(session,),
                    name=f"repro-server-session-{session.id}", daemon=True)
                self._workers[session.id] = worker
            self._c_accepted.inc()
            self._g_connections.set(len(self._sessions))
            self.events.emit("session.open", session=session.id,
                             peer=session.peer)
            worker.start()

    def _reaper_loop(self) -> None:
        while not self._stopping.wait(REAPER_INTERVAL):
            if self.idle_timeout is None:
                continue
            cutoff = time.monotonic() - self.idle_timeout
            with self._sessions_lock:
                idle = [s for s in self._sessions.values()
                        if s.last_active < cutoff and not s.closing
                        and not s.inflight]
            for session in idle:
                session.closing = True
                self._c_reaped.inc()
                self.events.emit("session.reaped", session=session.id,
                                 peer=session.peer,
                                 idle_timeout=self.idle_timeout)
                try:
                    session.conn.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass

    def _close_session(self, session: Session) -> None:
        # Interlock with the worker: the shutdown path can reach here
        # while the session's worker is still mid-request inside the
        # very transaction we are about to abort.  The session lock is
        # held around dispatch, so acquiring it proves no request is in
        # flight.  If the worker is stuck past the timeout, leave the
        # transaction alone — closing the socket below errors the
        # worker out, and its own cleanup pass aborts safely.
        locked = session.lock.acquire(timeout=CLOSE_INTERLOCK_TIMEOUT)
        if locked:
            try:
                if session.txn is not None and session.txn.is_active:
                    try:
                        session.txn.abort()
                    except ReproError:
                        pass
                session.txn = None
            finally:
                session.lock.release()
        try:
            session.conn.close()
        except OSError:
            pass
        with self._sessions_lock:
            removed = self._sessions.pop(session.id, None)
            self._workers.pop(session.id, None)
            remaining = len(self._sessions)
        self._g_connections.set(remaining)
        # Both the worker's normal exit and the shutdown path reach
        # here; only the one that actually removed the session logs it.
        if removed is not None:
            self.events.emit("session.close", session=session.id,
                             peer=session.peer)

    # -- per-session loop ----------------------------------------------------

    def _serve_session(self, session: Session) -> None:
        try:
            if not self._handshake(session):
                return
            while not self._stopping.is_set() and not session.closing:
                try:
                    frame = read_frame(session.conn)
                except ConnectionClosedError:
                    return  # client hung up (clean or mid-frame)
                except ProtocolError as exc:
                    # Corrupt framing: report once, then drop the
                    # connection — resynchronising a byte stream after a
                    # bad length prefix is guesswork.
                    self._send_error(session, 0, exc, transient=False)
                    return
                except OSError:
                    return
                session.touch()
                session.inflight = True
                try:
                    with session.lock:
                        done = not self._dispatch(session, frame)
                finally:
                    session.inflight = False
                    session.touch()
                if done:
                    return
        finally:
            self._close_session(session)

    def _handshake(self, session: Session) -> bool:
        try:
            frame = read_frame(session.conn)
        except (ReproError, OSError):
            return False
        if frame.opcode != Opcode.HELLO:
            self._send_error(session, frame.request_id, HandshakeError(
                "expected HELLO as the first frame"))
            return False
        try:
            hello = frame.decode()
        except ProtocolError as exc:
            self._send_error(session, frame.request_id, exc)
            return False
        if (not isinstance(hello, dict)
                or hello.get("magic") != PROTOCOL_MAGIC):
            self._send_error(session, frame.request_id, HandshakeError(
                "bad protocol magic"))
            return False
        version = hello.get("protocol")
        if version not in SUPPORTED_PROTOCOL_VERSIONS:
            self._send_error(session, frame.request_id, HandshakeError(
                f"unsupported protocol version {version!r}; server "
                f"speaks {sorted(SUPPORTED_PROTOCOL_VERSIONS)}"))
            return False
        # Negotiation: answer with the *client's* version, so an old
        # client sees exactly the protocol it asked for and a new one
        # learns the server understood v2 (trace context, STATS).
        session.protocol = version
        self._send_result(session, frame.request_id, {
            "magic": PROTOCOL_MAGIC,
            "protocol": version,
            "server": "repro",
            "session_id": session.id,
            "schema": self.db.schema.name,
        })
        return True

    # -- dispatch ------------------------------------------------------------

    def _dispatch(self, session: Session, frame: Frame) -> bool:
        """Handle one request frame; False ends the session."""
        opcode_name = (Opcode(frame.opcode).name
                       if frame.opcode in Opcode._value2member_map_
                       else f"op#{frame.opcode}")
        trace_id = None
        try:
            payload = frame.decode() if frame.payload else {}
            if not isinstance(payload, dict):
                raise ProtocolError("request payload must be a JSON object")
            # Extract trace context before anything can fail, so every
            # error path below can stamp the ERROR frame with it.
            trace_id, parent_span_id = extract_trace_context(payload)
            text = payload.get("text", "") if isinstance(payload, dict) else ""
            if frame.opcode in _UNGATED_OPCODES:
                gate = self.admission.admit_ungated(
                    session.id, opcode_name, text,
                    request_id=frame.request_id, trace_id=trace_id)
            else:
                gate = self.admission.admit(
                    session.id, opcode_name, text,
                    request_id=frame.request_id, trace_id=trace_id)
            with gate:
                with self.db.tracer.span("server.request",
                                         opcode=opcode_name,
                                         session=session.id):
                    return self._handle(session, frame, payload,
                                        trace_id, parent_span_id)
        except (ServerSaturatedError, RequestTimeoutError) as exc:
            self._send_error(session, frame.request_id, exc,
                             transient=True, trace_id=trace_id)
            return True
        except ReproError as exc:
            transient = type(exc).__name__ in TRANSIENT_ERRORS
            self._send_error(session, frame.request_id, exc,
                             transient=transient, trace_id=trace_id)
            return True
        except OSError:
            return False
        except Exception as exc:  # noqa: BLE001 - a bug must not kill the
            # session loop; surface it to the client instead.
            self._send_error(session, frame.request_id, exc,
                             trace_id=trace_id)
            return True

    def _handle(self, session: Session, frame: Frame,
                payload: Dict[str, Any],
                trace_id: Optional[str] = None,
                parent_span_id: Optional[str] = None) -> bool:
        opcode = frame.opcode
        request_id = frame.request_id
        db = self.db
        if opcode == Opcode.PING:
            self._send_result(session, request_id, {
                "pong": True, "admission": self.admission.snapshot()})
            return True
        if opcode == Opcode.STATS:
            return self._handle_stats(session, request_id, payload)
        if opcode == Opcode.QUERY or opcode == Opcode.EXECUTE:
            result = db.query(self._text(payload),
                              params=payload.get("params"))
            self._send_result(session, request_id,
                              result_to_payload(result))
            return True
        if opcode == Opcode.PREPARE:
            return self._handle_prepare(session, request_id, payload)
        if opcode == Opcode.EXPLAIN:
            return self._handle_explain(session, request_id, payload,
                                        trace_id, parent_span_id)
        if opcode == Opcode.BEGIN:
            if session.txn is not None and session.txn.is_active:
                raise TransactionStateError(
                    "session already has an open transaction")
            session.txn = db.begin()
            self._send_result(session, request_id,
                              {"txn_id": session.txn.txn_id})
            return True
        if opcode == Opcode.COMMIT:
            txn = self._require_txn(session)
            txn.commit()
            session.txn = None
            self._send_result(session, request_id, {"committed": True})
            return True
        if opcode == Opcode.ROLLBACK:
            txn = self._require_txn(session)
            txn.abort()
            session.txn = None
            self._send_result(session, request_id, {"rolled_back": True})
            return True
        if opcode == Opcode.MUTATE:
            return self._handle_mutate(session, request_id, payload)
        if opcode == Opcode.CLOSE:
            self._send_result(session, request_id, {"closed": True})
            return False
        raise ProtocolError(f"unknown opcode {opcode}")

    # -- handlers ------------------------------------------------------------

    @staticmethod
    def _text(payload: Dict[str, Any]) -> str:
        text = payload.get("text")
        if not isinstance(text, str) or not text:
            raise ProtocolError("request needs a non-empty 'text' field")
        return text

    def _require_txn(self, session: Session):
        if session.txn is None or not session.txn.is_active:
            raise TransactionStateError(
                "no open transaction on this session")
        return session.txn

    def _handle_prepare(self, session: Session, request_id: int,
                        payload: Dict[str, Any]) -> bool:
        """Parse (and cache) a statement without running it.

        Priming the plan cache here means the first EXECUTE pays only
        bind + analyze, and later same-typed EXECUTEs only bind — the
        parameterized-analysis cache does the rest.
        """
        from repro.mql.parser import has_parameters, parse_query
        from repro.mql.planner import CompiledQuery

        text = self._text(payload)
        cache = getattr(self.db, "_plan_cache", None)
        entry = cache.get(text) if cache is not None else None
        if entry is None:
            query = parse_query(text)
            if cache is not None:
                entry = CompiledQuery(query, None)
                cache.put(text, entry)
        else:
            query = entry.query
        self._send_result(session, request_id, {
            "prepared": True,
            "parameterized": has_parameters(query),
        })
        return True

    def _handle_stats(self, session: Session, request_id: int,
                      payload: Dict[str, Any]) -> bool:
        """Full introspection snapshot: server state + metrics registry.

        ``{"events": N}`` in the payload appends the last *N* entries of
        the structured event log — the ``monitor`` CLI's data source.
        """
        body: Dict[str, Any] = {
            "server": self.state_snapshot(),
            "metrics": self.db.metrics.snapshot(),
        }
        events = payload.get("events")
        if isinstance(events, int) and events > 0:
            body["events"] = self.events.tail(events)
        self._send_result(session, request_id, body)
        return True

    def _handle_explain(self, session: Session, request_id: int,
                        payload: Dict[str, Any],
                        trace_id: Optional[str] = None,
                        parent_span_id: Optional[str] = None) -> bool:
        """EXPLAIN ANALYZE over the wire, server spans included.

        The server opens its own capture so the profile shows the whole
        request — a ``server.request`` root wrapping the kernel's
        ``mql.execute`` tree — rather than only the query internals.
        When the request carries trace context (protocol v2), the
        capture joins the *client's* trace: every server span gets the
        client's ``trace_id`` and the root parents onto the client's
        span id, so the client can stitch both processes into one tree.
        """
        db = self.db
        with db.tracer.capture(trace_id=trace_id or new_trace_id(),
                               parent_span_id=parent_span_id) as capture:
            with db.tracer.span("server.request", opcode="EXPLAIN",
                                session=session.id):
                result = db.query(self._text(payload),
                                  params=payload.get("params"))
        profile = QueryProfile(capture.spans, result.plan)
        self._send_result(session, request_id,
                          result_to_payload(result, profile=profile))
        return True

    def _handle_mutate(self, session: Session, request_id: int,
                       payload: Dict[str, Any]) -> bool:
        op = payload.get("op")
        args = payload.get("args")
        if not isinstance(op, str) or not isinstance(args, dict):
            raise ProtocolError(
                "MUTATE needs 'op' (string) and 'args' (object)")
        if session.txn is not None and session.txn.is_active:
            response = self._apply_mutation(session.txn, op, args)
        else:
            # Autocommit: a lone mutation gets its own transaction.
            with self.db.transaction() as txn:
                response = self._apply_mutation(txn, op, args)
        self._send_result(session, request_id, response)
        return True

    @staticmethod
    def _apply_mutation(txn, op: str, args: Dict[str, Any]
                        ) -> Dict[str, Any]:
        try:
            if op == "insert":
                atom_id = txn.insert(
                    args["type"], args["values"], args["valid_from"],
                    args.get("valid_to", FOREVER),
                    atom_id=args.get("atom_id"))
                return {"atom_id": atom_id}
            if op == "update":
                txn.update(args["atom_id"], args["changes"],
                           args["valid_from"], args.get("valid_to", FOREVER))
                return {"ok": True}
            if op == "delete":
                txn.delete(args["atom_id"], args["valid_from"],
                           args.get("valid_to", FOREVER))
                return {"ok": True}
            if op == "correct":
                txn.correct(args["atom_id"], args["window_start"],
                            args["window_end"], args["changes"])
                return {"ok": True}
            if op == "link":
                txn.link(args["link"], args["source_id"],
                         args["target_id"], args["valid_from"],
                         args.get("valid_to", FOREVER))
                return {"ok": True}
            if op == "unlink":
                txn.unlink(args["link"], args["source_id"],
                           args["target_id"], args["valid_from"],
                           args.get("valid_to", FOREVER))
                return {"ok": True}
        except KeyError as exc:
            raise ProtocolError(
                f"MUTATE {op} missing argument {exc.args[0]!r}") from exc
        raise ProtocolError(f"unknown mutation op {op!r}")

    # -- frame output --------------------------------------------------------

    def _send_result(self, session: Session, request_id: int,
                     payload: Dict[str, Any]) -> None:
        write_frame(session.conn, Opcode.RESULT, request_id,
                    encode_payload(payload))

    def _send_error(self, session: Session, request_id: int,
                    exc: BaseException, transient: bool = False,
                    trace_id: Optional[str] = None) -> None:
        try:
            write_frame(session.conn, Opcode.ERROR, request_id,
                        encode_payload(error_payload(
                            exc, transient, trace_id=trace_id)))
        except OSError:
            pass

    # -- introspection -------------------------------------------------------

    def state_snapshot(self) -> Dict[str, Any]:
        """The server's operational state as one JSON-safe document
        (served by the STATS opcode and the sidecar's ``/stats``)."""
        with self._sessions_lock:
            sessions = len(self._sessions)
        return {
            "host": self.host,
            "port": self.port,
            "started_at": round(self._started_at, 3),
            "uptime_seconds": round(
                time.monotonic() - self._started_monotonic, 3),
            "sessions": sessions,
            "max_connections": self.max_connections,
            "draining": self.draining,
            "protocol_versions": sorted(SUPPORTED_PROTOCOL_VERSIONS),
            "admission": self.admission.snapshot(),
            "events_seen": self.events.last_seq,
        }

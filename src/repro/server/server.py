"""Event-loop TCP server in front of one embedded TemporalDatabase.

One non-blocking I/O loop (``selectors``, epoll where available)
multiplexes *all* connections: it accepts sockets, reassembles
length-prefixed frames incrementally, answers handshakes inline, and
hands complete requests to a small bounded worker pool so kernel work
never blocks the loop.  Per-connection cost while idle is one
registered file descriptor plus a few KB of buffers — thousands of
idle sessions are cheap, where the previous thread-per-connection
design paid a stack per socket.

Each connection is a *session*:

* a monotonically increasing session id,
* at most one open transaction (BEGIN … COMMIT/ROLLBACK frames map
  straight onto the kernel's transaction manager; MUTATE frames outside
  a transaction auto-commit),
* at most one request in flight at a time — frames a client pipelines
  beyond that wait in a bounded per-session backlog (the loop stops
  reading the socket past the cap, so TCP backpressure reaches the
  client),
* any number (bounded) of open streaming cursors,
* a last-activity clock the idle reaper checks.

Admission control generalizes from threads-in-flight to
queued-requests-per-loop: the loop takes an execution slot with
``try_acquire`` and submits to the pool, or *parks the request as
data* (frame + deadline) when slots are busy — no thread waits.  A
freed slot wakes the loop through ``on_slot_freed``; a parked request
past its deadline gets a transient ERROR.  The queue bound and shed
behaviour are unchanged from the threaded server.

Streaming cursors (protocol v3): a QUERY whose payload carries a
``stream`` object opens a server-side cursor over the chunked
execution path (:mod:`repro.mql.stream`) and answers with a handle;
each FETCH materializes exactly one chunk of entries — the server
never holds more than one chunk per cursor — and CLOSE_CURSOR or
session death reclaims it.  Results too large for one frame on the
eager path fail with a structured ``ResultTooLargeError`` pointing at
cursors instead of a raw frame-cap protocol error.

Graceful shutdown stops accepting, sheds parked requests, lets
executing requests finish and their responses flush, rolls back
whatever transactions remained open, and checkpoints the database so a
subsequent open needs no recovery.

Observability: requests carrying a protocol-v2+ ``trace`` object are
served under the client's trace context — the server's spans,
slow-query events, and ERROR frames all carry the client's
``trace_id``.  Handshakes are timed into their own
``server.handshake_seconds`` histogram so ``server.request_seconds``
measures steady-state requests only.  Lifecycle transitions (session
open/close, shed, reap, drain, checkpoint) land in a shared
:class:`~repro.obs.events.EventLog`; the ``STATS`` opcode and the
optional HTTP sidecar (``/metrics``, ``/health``, ``/stats``) expose
the same state to clients, scrapers, and load balancers.
"""

from __future__ import annotations

import collections
import queue
import selectors
import socket
import threading
import time
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import (
    CursorStateError,
    HandshakeError,
    ProtocolError,
    ReadOnlyReplicaError,
    ReproError,
    RequestTimeoutError,
    ResultTooLargeError,
    ServerSaturatedError,
    TransactionStateError,
)
from repro.errors import TRANSIENT_ERRORS
from repro.obs import QueryProfile, new_trace_id
from repro.cdc.source import ChangeStreamSource
from repro.replication.source import ReplicationSource
from repro.server.admission import LATENCY_BOUNDS, AdmissionController
from repro.server.http_sidecar import MetricsSidecar
from repro.temporal import FOREVER
from repro.server.protocol import (
    PROTOCOL_MAGIC,
    PROTOCOL_VERSION,
    SUPPORTED_PROTOCOL_VERSIONS,
    Frame,
    FrameAssembler,
    Opcode,
    encode_frame,
    encode_payload,
    entries_to_payload,
    error_payload,
    extract_trace_context,
    result_to_payload,
    write_frame,
)

#: How often (seconds) the loop sweeps for idle sessions.
REAPER_INTERVAL = 1.0

#: How long (seconds) a shutdown-path close waits for the session's
#: in-flight request before leaving its transaction to the worker's own
#: cleanup.
CLOSE_INTERLOCK_TIMEOUT = 5.0

#: Parsed-but-undispatched frames one session may accumulate before the
#: loop stops reading its socket.  Bounds the memory a pipelining
#: client can pin; TCP backpressure does the rest.
MAX_SESSION_BACKLOG = 32

#: Open streaming cursors one session may hold.
MAX_CURSORS_PER_SESSION = 8

#: Entry cap a client may request per cursor chunk.
MAX_CHUNK_ENTRIES = 65536

#: Bytes read per socket-readable event.
_RECV_CHUNK = 256 * 1024

#: Frames that bypass admission gating, for two distinct reasons.
#: COMMIT/ROLLBACK/CLOSE/CLOSE_CURSOR release resources (locks, undo
#: state, cursors, the session itself) rather than consume them:
#: shedding one would strand server-side state the client believes
#: finished.  STATS is the monitoring plane: an operator diagnosing a
#: saturated server needs it to answer precisely when gated requests
#: are being refused.  WAL_STREAM is the replication plane: shedding it
#: under load would stall replicas exactly when read scale-out matters,
#: and its long-poll window is capped (MAX_STREAM_WAIT_MS) so a parked
#: stream never pins a worker for long.  SUBSCRIBE is the change-data-
#: capture plane and shares WAL_STREAM's rationale: its long-poll is
#: capped by the same window, and shedding it would let subscriber acks
#: stall, pinning WAL retention at the worst moment.
_UNGATED_OPCODES = frozenset(
    (int(Opcode.COMMIT), int(Opcode.ROLLBACK), int(Opcode.CLOSE),
     int(Opcode.STATS), int(Opcode.CLOSE_CURSOR),
     int(Opcode.WAL_STREAM), int(Opcode.SUBSCRIBE)))

#: Worker threads beyond ``max_inflight``: headroom so ungated frames
#: (COMMIT/ROLLBACK/CLOSE/STATS) never wait behind gated work.
_UNGATED_WORKER_HEADROOM = 2

#: Additional headroom for replica WAL_STREAM long-polls, so a fleet of
#: caught-up replicas parked in their poll window cannot starve COMMIT
#: frames of workers.
_REPLICATION_WORKER_HEADROOM = 2

#: Accepted-but-unadmitted connections held while the server is at its
#: connection cap (see ``_process_overflow``); beyond this a connect
#: flood is refused immediately.
_OVERFLOW_LIMIT = 128


def _opcode_name(opcode: int) -> str:
    return (Opcode(opcode).name if opcode in Opcode._value2member_map_
            else f"op#{opcode}")


class _WorkerPool:
    """A fixed set of daemon threads draining one job queue.

    ``concurrent.futures`` is avoided deliberately: its threads are
    non-daemon since 3.9, so one request stuck in the kernel would hang
    interpreter exit; these daemon threads let shutdown proceed past a
    straggler exactly as the old thread-per-connection workers did.
    """

    def __init__(self, size: int, on_error: Callable[[BaseException], None],
                 name: str = "repro-server-worker") -> None:
        self.size = size
        self._on_error = on_error
        self._jobs: "queue.SimpleQueue[Optional[Callable[[], None]]]" = (
            queue.SimpleQueue())
        self._threads = []
        for index in range(size):
            thread = threading.Thread(target=self._run,
                                      name=f"{name}-{index}", daemon=True)
            thread.start()
            self._threads.append(thread)

    def submit(self, job: Callable[[], None]) -> None:
        self._jobs.put(job)

    def _run(self) -> None:
        while True:
            job = self._jobs.get()
            if job is None:
                return
            try:
                job()
            except Exception as exc:  # noqa: BLE001 - a job bug must not
                # kill the worker; jobs catch their own errors, so this
                # is strictly a last line of defence.
                self._on_error(exc)

    def stop(self, timeout: float = 2.0) -> None:
        for _ in self._threads:
            self._jobs.put(None)
        deadline = time.monotonic() + timeout
        for thread in self._threads:
            thread.join(max(0.0, deadline - time.monotonic()))


class ServerCursor:
    """One open streaming cursor: a chunk iterator plus its metadata."""

    __slots__ = ("id", "chunks", "projected", "plan", "chunk_entries")

    def __init__(self, cursor_id: int, stream) -> None:
        self.id = cursor_id
        self.chunks = stream.chunks()
        self.projected = stream.projected
        self.plan = stream.plan
        self.chunk_entries = stream.chunk_entries


class Session:
    """Per-connection state: socket, buffers, transaction, cursors."""

    def __init__(self, session_id: int, conn: socket.socket,
                 peer: str) -> None:
        self.id = session_id
        self.conn = conn
        self.peer = peer
        self.protocol = PROTOCOL_VERSION  # negotiated in the handshake
        self.txn = None  # TransactionContext while a txn is open
        self.last_active = time.monotonic()
        self.closing = False
        # Held around request dispatch so a shutdown-path abort of
        # self.txn cannot run concurrently with a request using it.
        self.lock = threading.Lock()
        # True from admission of a request until its response is queued
        # (parked *or* executing); the idle reaper must not judge a
        # long-running request as an idle session.
        self.inflight = False
        # True only while a worker thread is running the request; the
        # loop defers closing an executing session to the worker's
        # completion callback.
        self.executing = False
        # -- event-loop state (loop thread only) --
        self.handshaken = False
        self.accepted_at = time.monotonic()
        self.assembler = FrameAssembler()
        self.outbuf = bytearray()
        self.backlog: Deque[Frame] = collections.deque()
        self.paused_read = False
        self.close_after_flush = False
        self.sel_events = 0  # selector interest currently registered
        # True while this session occupies a connection-capacity slot;
        # cleared exactly once (under the server's sessions lock) the
        # moment the session starts dying, so half-dead sessions never
        # starve fresh connections.
        self.counted = False
        # -- streaming cursors (guarded by self.lock) --
        self.cursors: Dict[int, ServerCursor] = {}
        self.next_cursor_id = 0

    def touch(self) -> None:
        self.last_active = time.monotonic()


class DatabaseServer:
    """Serve one TemporalDatabase over TCP.

    ``port=0`` binds an ephemeral port (read it back from ``.port``
    after construction) — the form every test uses.
    """

    def __init__(self, db, host: str = "127.0.0.1", port: int = 0,
                 max_connections: int = 32,
                 idle_timeout: Optional[float] = 300.0,
                 admission: Optional[AdmissionController] = None,
                 metrics_port: Optional[int] = None,
                 metrics_host: str = "127.0.0.1",
                 worker_threads: Optional[int] = None,
                 replication: Optional[Any] = None) -> None:
        self.db = db
        self.max_connections = max_connections
        self.idle_timeout = idle_timeout
        #: The ReplicaApplier when this server fronts a read-only
        #: replica, else None (primary / standalone).  Writes are
        #: rejected with ReadOnlyReplicaError while set.
        self.replication = replication
        #: Every server can feed downstream replicas (chains included).
        self.wal_source = ReplicationSource(db)
        #: Change-data-capture: decoded committed events over SUBSCRIBE.
        self.cdc_source = ChangeStreamSource(db)
        self.admission = admission or AdmissionController(
            metrics=db.metrics)
        #: Shared structured event log (owned by the admission
        #: controller so shed/slow-query events and lifecycle events
        #: interleave in one ring).
        self.events = self.admission.events
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(1024)
        self._listener.setblocking(False)
        self.host, self.port = self._listener.getsockname()[:2]
        self._sessions: Dict[int, Session] = {}
        self._sessions_lock = threading.Lock()
        #: Sessions holding a capacity slot (``Session.counted``);
        #: decremented the moment a session starts dying — before its
        #: worker-side close completes — so capacity frees instantly.
        self._live = 0
        #: Accepted connections awaiting a capacity slot:
        #: [conn, peer, seen-one-iteration].  A full server defers the
        #: refusal by one loop iteration so hangups already sitting in
        #: the selector batch can free their slots first.
        self._overflow: Deque[List[Any]] = collections.deque()
        self._next_session = 0
        #: Kept for introspection parity with the threaded server; the
        #: event loop owns sessions, so nothing lives here any more.
        self._workers: Dict[int, threading.Thread] = {}
        self._stopping = threading.Event()
        self._loop_thread: Optional[threading.Thread] = None
        self._started_monotonic = time.monotonic()
        self._started_at = time.time()
        #: True from the first moment of graceful shutdown until the
        #: process exits; ``/health`` keys off it.
        self.draining = False
        self._drain_deadline = float("inf")
        self._drain_started = False
        # Event loop plumbing.  The selector and waker exist from
        # construction so shutdown() is safe on a never-started server.
        self._selector = selectors.DefaultSelector()
        self._waker_r, self._waker_w = socket.socketpair()
        self._waker_r.setblocking(False)
        self._waker_w.setblocking(False)
        self._loop_calls: Deque[Callable[[], None]] = collections.deque()
        self._loop_calls_lock = threading.Lock()
        #: Requests parked for an execution slot, FIFO:
        #: (session, frame, deadline, opcode_name, trace_id).
        self._parked: Deque[Tuple[Session, Frame, Optional[float],
                                  str, Optional[str]]] = collections.deque()
        self._last_reap = time.monotonic()
        if worker_threads is None:
            worker_threads = (self.admission.max_inflight
                              + _UNGATED_WORKER_HEADROOM
                              + _REPLICATION_WORKER_HEADROOM)
        self._pool = _WorkerPool(max(1, worker_threads), self._on_job_error)
        self.admission.on_slot_freed = self._on_slot_freed
        # Cursor accounting (sessions own their cursors; this is the
        # server-wide gauge).
        self._cursor_lock = threading.Lock()
        self._cursors_open = 0
        # Bind the sidecar in the constructor (port=0 callers read the
        # assigned port back before start()); its threads spin up in
        # start() and die after drain completes in shutdown().
        self.sidecar: Optional[MetricsSidecar] = None
        if metrics_port is not None:
            self.sidecar = MetricsSidecar(self, host=metrics_host,
                                          port=metrics_port)
        metrics = db.metrics
        self._g_connections = metrics.gauge("server.connections.active")
        self._c_accepted = metrics.counter("server.connections.accepted")
        self._c_refused = metrics.counter("server.connections.refused")
        self._c_reaped = metrics.counter("server.connections.reaped")
        self._g_cursors = metrics.gauge("server.cursors.open")
        self._h_handshake = metrics.histogram("server.handshake_seconds",
                                              LATENCY_BOUNDS)
        self._c_loop_errors = metrics.counter("server.loop.errors")

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "DatabaseServer":
        self._selector.register(self._listener, selectors.EVENT_READ,
                                None)
        self._selector.register(self._waker_r, selectors.EVENT_READ,
                                self._waker_r)
        self._loop_thread = threading.Thread(
            target=self._loop_main, name="repro-server-loop", daemon=True)
        self._loop_thread.start()
        if self.sidecar is not None:
            self.sidecar.start()
        self.events.emit("server.start", host=self.host, port=self.port,
                         metrics_port=(self.sidecar.port
                                       if self.sidecar else None))
        return self

    def __enter__(self) -> "DatabaseServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.shutdown()

    def shutdown(self, drain_timeout: float = 10.0) -> None:
        """Graceful stop: drain in-flight work, then checkpoint.

        Idempotent.  New connections are refused immediately; parked
        requests are shed; executing requests get ``drain_timeout``
        seconds to finish and flush their responses, after which their
        sockets are closed under them.  Open transactions roll back
        (the client never got a COMMIT acknowledgement, so nothing is
        lost), and the database checkpoints so the next open replays no
        WAL.
        """
        if self._stopping.is_set():
            return
        self.draining = True  # /health flips 503 before the drain begins
        self._drain_deadline = time.monotonic() + drain_timeout
        self._stopping.set()
        self.events.emit("server.drain.begin",
                         sessions=len(self._sessions))
        if self._loop_thread is not None and self._loop_thread.is_alive():
            self._wake()
            self._loop_thread.join(drain_timeout + 2.0)
        else:
            # Never started: no loop to close the listener for us.
            try:
                self._listener.close()
            except OSError:
                pass
        # The loop is gone; close whatever it could not drain.  Workers
        # may still be unwinding — _close_session interlocks on the
        # session lock before touching their transactions.
        with self._sessions_lock:
            leftovers = list(self._sessions.values())
        for session in leftovers:
            self._close_session(session)
        self._pool.stop(timeout=2.0)
        for sock in (self._waker_r, self._waker_w):
            try:
                sock.close()
            except OSError:
                pass
        try:
            self._selector.close()
        except (OSError, RuntimeError):
            pass
        self.db.checkpoint()
        self.events.emit("server.checkpoint")
        self.events.emit("server.stop")
        # The sidecar outlives the drain so /health can answer 503
        # while it happens; only now does it go away.
        if self.sidecar is not None:
            self.sidecar.stop()

    # -- event loop ----------------------------------------------------------

    def _wake(self) -> None:
        try:
            self._waker_w.send(b"\0")
        except (BlockingIOError, OSError):
            pass  # pipe full (a wakeup is already pending) or closed

    def _call_on_loop(self, fn: Callable[[], None]) -> None:
        """Run *fn* on the loop thread at its next iteration."""
        with self._loop_calls_lock:
            self._loop_calls.append(fn)
        self._wake()

    def _on_slot_freed(self) -> None:
        # Called by the admission controller from whichever thread
        # released a slot; parked requests dispatch on the loop.
        if self._parked:
            self._call_on_loop(self._dispatch_parked)

    def _on_job_error(self, exc: BaseException) -> None:
        self._c_loop_errors.inc()
        self.events.emit("server.worker.error", error=type(exc).__name__,
                         message=str(exc))

    def _loop_timeout(self) -> float:
        if self._stopping.is_set():
            return 0.02
        timeout = min(REAPER_INTERVAL, 1.0)
        if self._overflow:
            timeout = min(timeout, 0.01)
        if self._parked:
            deadline = self._parked[0][2]
            if deadline is not None:
                timeout = min(timeout, deadline - time.monotonic())
        return max(timeout, 0.005)

    def _loop_main(self) -> None:
        while True:
            try:
                ready = self._selector.select(self._loop_timeout())
            except OSError:
                ready = []
            try:
                for key, mask in ready:
                    data = key.data
                    if data is None:
                        self._on_accept()
                    elif data is self._waker_r:
                        self._drain_waker()
                    else:
                        self._on_session_event(data, mask)
                self._run_loop_calls()
                now = time.monotonic()
                self._expire_parked(now)
                if self._stopping.is_set():
                    if not self._drain_started:
                        self._begin_drain()
                    with self._sessions_lock:
                        drained = not self._sessions
                    if drained or now >= self._drain_deadline:
                        return
                else:
                    self._process_overflow()
                    self._reap_idle(now)
            except Exception as exc:  # noqa: BLE001 - one bad iteration
                # must not silently kill the only I/O thread; count it,
                # log it, keep serving.
                self._c_loop_errors.inc()
                self.events.emit("server.loop.error",
                                 error=type(exc).__name__,
                                 message=str(exc))

    def _drain_waker(self) -> None:
        while True:
            try:
                if not self._waker_r.recv(4096):
                    return
            except (BlockingIOError, OSError):
                return

    def _run_loop_calls(self) -> None:
        while True:
            with self._loop_calls_lock:
                if not self._loop_calls:
                    return
                fn = self._loop_calls.popleft()
            fn()

    # -- accept / selector plumbing ------------------------------------------

    def _on_accept(self) -> None:
        while True:
            try:
                conn, addr = self._listener.accept()
            except (BlockingIOError, OSError):
                return
            peer = f"{addr[0]}:{addr[1]}"
            with self._sessions_lock:
                at_capacity = self._live >= self.max_connections
            if at_capacity:
                # Don't refuse yet: hangups sitting in this very
                # selector batch may free slots before the next
                # iteration ends.  _process_overflow() admits or
                # refuses once those events have been seen.
                if len(self._overflow) >= _OVERFLOW_LIMIT:
                    self._refuse(conn, peer)
                else:
                    self._overflow.append([conn, peer, False])
                continue
            self._admit(conn, peer)

    def _admit(self, conn: socket.socket, peer: str) -> None:
        conn.setblocking(False)
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        with self._sessions_lock:
            self._next_session += 1
            session = Session(self._next_session, conn, peer)
            session.counted = True
            self._live += 1
            self._sessions[session.id] = session
            active = len(self._sessions)
        session.sel_events = selectors.EVENT_READ
        self._selector.register(conn, selectors.EVENT_READ, session)
        self._c_accepted.inc()
        self._g_connections.set(active)
        self.events.emit("session.open", session=session.id,
                         peer=session.peer)

    def _refuse(self, conn: socket.socket, peer: str) -> None:
        self._c_refused.inc()
        self.events.emit("connection.refused", peer=peer,
                         limit=self.max_connections)
        try:
            conn.settimeout(1.0)
            write_frame(conn, Opcode.ERROR, 0, encode_payload(
                error_payload(ServerSaturatedError(
                    f"connection limit of {self.max_connections} "
                    f"reached"), transient=True)))
        except OSError:
            pass
        try:
            conn.close()
        except OSError:
            pass

    def _process_overflow(self) -> None:
        """Admit waiting connections into freed slots, refuse the rest.

        A connection parked by ``_on_accept`` survives exactly one full
        loop iteration before refusal — long enough for EOFs that were
        already pending when it arrived to release their slots, short
        enough that a genuinely full server still refuses within
        milliseconds.
        """
        while self._overflow:
            with self._sessions_lock:
                free = self._live < self.max_connections
            if not free:
                break
            conn, peer, _ = self._overflow.popleft()
            self._admit(conn, peer)
        if not self._overflow:
            return
        kept: Deque[List[Any]] = collections.deque()
        for entry in self._overflow:
            if entry[2]:
                self._refuse(entry[0], entry[1])
            else:
                entry[2] = True
                kept.append(entry)
        self._overflow = kept

    def _uncount(self, session: Session) -> None:
        with self._sessions_lock:
            if session.counted:
                session.counted = False
                self._live -= 1

    def _update_selector(self, session: Session) -> None:
        if session.closing:
            return
        events = 0
        if not session.paused_read and not session.close_after_flush:
            events |= selectors.EVENT_READ
        if session.outbuf:
            events |= selectors.EVENT_WRITE
        if events == session.sel_events:
            return
        try:
            if session.sel_events == 0:
                self._selector.register(session.conn, events, session)
            elif events == 0:
                self._selector.unregister(session.conn)
            else:
                self._selector.modify(session.conn, events, session)
        except (KeyError, ValueError, OSError):
            self._mark_dead(session)
            return
        session.sel_events = events

    def _on_session_event(self, session: Session, mask: int) -> None:
        if session.closing:
            return
        if mask & selectors.EVENT_WRITE:
            self._flush_out(session)
        if mask & selectors.EVENT_READ and not session.closing:
            self._read_session(session)

    def _read_session(self, session: Session) -> None:
        try:
            data = session.conn.recv(_RECV_CHUNK)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._mark_dead(session)
            return
        if not data:
            self._mark_dead(session)  # EOF: clean or mid-frame hangup
            return
        try:
            frames = session.assembler.feed(data)
        except ProtocolError as exc:
            # Corrupt framing: report once, then drop the connection —
            # resynchronising a byte stream after a bad length prefix
            # is guesswork.
            self._queue_error(session, 0, exc, transient=False)
            session.close_after_flush = True
            session.paused_read = True
            self._flush_out(session)
            return
        session.backlog.extend(frames)
        self._pump_session(session)

    def _pump_session(self, session: Session) -> None:
        while (session.backlog and not session.inflight
               and not session.closing and not session.close_after_flush):
            self._handle_frame(session, session.backlog.popleft())
        if session.closing:
            return
        want_pause = len(session.backlog) > MAX_SESSION_BACKLOG
        if want_pause != session.paused_read:
            session.paused_read = want_pause
            self._update_selector(session)

    def _flush_out(self, session: Session) -> None:
        if session.closing:
            return
        if session.outbuf:
            try:
                sent = session.conn.send(bytes(session.outbuf))
                if sent:
                    del session.outbuf[:sent]
            except (BlockingIOError, InterruptedError):
                pass
            except OSError:
                self._mark_dead(session)
                return
        if not session.outbuf and session.close_after_flush:
            self._mark_dead(session)
            return
        self._update_selector(session)

    def _queue_result(self, session: Session, request_id: int,
                      payload: Dict[str, Any]) -> None:
        session.outbuf += encode_frame(Opcode.RESULT, request_id,
                                       encode_payload(payload))
        self._flush_out(session)

    def _queue_error(self, session: Session, request_id: int,
                     exc: BaseException, transient: bool = False,
                     trace_id: Optional[str] = None) -> None:
        if session.closing:
            return
        session.outbuf += self._encode_error(request_id, exc,
                                             transient=transient,
                                             trace_id=trace_id)
        self._flush_out(session)

    def _mark_dead(self, session: Session) -> None:
        """Loop-side teardown: stop I/O now, close state when safe.

        The socket leaves the selector immediately; the full close
        (transaction abort, session-table removal) runs on a worker so
        the 5-second close interlock can never stall the loop.  An
        executing session closes when its worker's completion callback
        runs; a parked request is dropped here.
        """
        if session.closing:
            return
        session.closing = True
        self._uncount(session)
        if session.sel_events:
            try:
                self._selector.unregister(session.conn)
            except (KeyError, ValueError, OSError):
                pass
            session.sel_events = 0
        if self._parked and any(entry[0] is session
                                for entry in self._parked):
            kept = collections.deque()
            for entry in self._parked:
                if entry[0] is session:
                    self.admission.unpark()
                else:
                    kept.append(entry)
            self._parked = kept
            session.inflight = False
        if not session.executing:
            self._submit_close(session)

    def _submit_close(self, session: Session) -> None:
        self._pool.submit(lambda: self._close_session(session))

    # -- admission / dispatch ------------------------------------------------

    def _handle_frame(self, session: Session, frame: Frame) -> None:
        session.touch()
        if not session.handshaken:
            self._handshake_frame(session, frame)
            return
        self.admission.begin_request()
        if frame.opcode in _UNGATED_OPCODES:
            self._submit_request(session, frame, gated=False)
            return
        if self.admission.try_acquire():
            self._submit_request(session, frame, gated=True)
            return
        opcode_name, trace_id = self._frame_meta(frame)
        try:
            self.admission.park(session.id, opcode_name,
                                frame.request_id, trace_id)
        except ServerSaturatedError as exc:
            self._queue_error(session, frame.request_id, exc,
                              transient=True, trace_id=trace_id)
            return
        deadline = (None if self.admission.request_timeout is None
                    else time.monotonic() + self.admission.request_timeout)
        session.inflight = True
        self._parked.append((session, frame, deadline, opcode_name,
                             trace_id))

    @staticmethod
    def _frame_meta(frame: Frame) -> Tuple[str, Optional[str]]:
        """(opcode name, trace id) for shed/timeout events — parsed
        lazily, only on those paths."""
        trace_id = None
        try:
            trace_id, _ = extract_trace_context(frame.decode()
                                                if frame.payload else {})
        except ProtocolError:
            pass  # malformed payload fails later, in dispatch
        return _opcode_name(frame.opcode), trace_id

    def _dispatch_parked(self) -> None:
        while self._parked:
            if not self.admission.try_acquire():
                return
            session, frame, _, _, _ = self._parked.popleft()
            self.admission.unpark()
            if session.closing:
                self.admission.release()
                continue
            self._submit_request(session, frame, gated=True,
                                 already_inflight=True)

    def _expire_parked(self, now: float) -> None:
        while self._parked:
            session, frame, deadline, opcode_name, trace_id = self._parked[0]
            if deadline is None or deadline > now:
                return
            self._parked.popleft()
            self.admission.unpark()
            if session.closing:
                continue
            exc = self.admission.timeout_parked(session.id, opcode_name,
                                                frame.request_id, trace_id)
            session.inflight = False
            self._queue_error(session, frame.request_id, exc,
                              transient=True, trace_id=trace_id)
            self._pump_session(session)

    def _submit_request(self, session: Session, frame: Frame,
                        gated: bool, already_inflight: bool = False) -> None:
        if not already_inflight:
            session.inflight = True
        session.executing = True
        started = time.monotonic()
        self._pool.submit(
            lambda: self._run_request(session, frame, gated, started))

    # -- handshake (inline on the loop) --------------------------------------

    def _handshake_frame(self, session: Session, frame: Frame) -> None:
        ok = False
        try:
            ok = self._negotiate(session, frame)
        finally:
            # Handshake + session setup get their own histogram so
            # server.request_seconds measures steady-state requests
            # only (the old first-request p99 tail).
            self._h_handshake.observe(time.monotonic()
                                      - session.accepted_at)
        if not ok:
            session.close_after_flush = True
            session.paused_read = True
            self._flush_out(session)
        else:
            session.handshaken = True

    def _negotiate(self, session: Session, frame: Frame) -> bool:
        if frame.opcode != Opcode.HELLO:
            self._queue_error(session, frame.request_id, HandshakeError(
                "expected HELLO as the first frame"))
            return False
        try:
            hello = frame.decode()
        except ProtocolError as exc:
            self._queue_error(session, frame.request_id, exc)
            return False
        if (not isinstance(hello, dict)
                or hello.get("magic") != PROTOCOL_MAGIC):
            self._queue_error(session, frame.request_id, HandshakeError(
                "bad protocol magic"))
            return False
        version = hello.get("protocol")
        if version not in SUPPORTED_PROTOCOL_VERSIONS:
            self._queue_error(session, frame.request_id, HandshakeError(
                f"unsupported protocol version {version!r}; server "
                f"speaks {sorted(SUPPORTED_PROTOCOL_VERSIONS)}"))
            return False
        # Negotiation: answer with the *client's* version, so an old
        # client sees exactly the protocol it asked for and a new one
        # learns the server understood v3 (streaming cursors).
        session.protocol = version
        body = {
            "magic": PROTOCOL_MAGIC,
            "protocol": version,
            "server": "repro",
            "session_id": session.id,
            "schema": self.db.schema.name,
        }
        if version >= 3:
            # Capability advertisement (added keys, no version bump):
            # the role tells a pool it is talking to a replica, and the
            # replication block carries the watermarks routing needs.
            body["role"] = ("replica" if self.replication is not None
                            else "primary")
            if self.replication is not None:
                body["replication"] = self.replication.status()
        self._queue_result(session, frame.request_id, body)
        return True

    # -- request execution (worker threads) ----------------------------------

    def _run_request(self, session: Session, frame: Frame, gated: bool,
                     started: float) -> None:
        opcode_name = _opcode_name(frame.opcode)
        trace_id: Optional[str] = None
        text = ""
        responses: List[bytes] = []
        end_session = False
        try:
            try:
                payload = frame.decode() if frame.payload else {}
                if not isinstance(payload, dict):
                    raise ProtocolError(
                        "request payload must be a JSON object")
                # Extract trace context before anything can fail, so
                # every error path below can stamp the ERROR frame.
                trace_id, parent_span_id = extract_trace_context(payload)
                raw_text = payload.get("text", "")
                text = raw_text if isinstance(raw_text, str) else ""
                with session.lock:
                    with self.db.tracer.span("server.request",
                                             opcode=opcode_name,
                                             session=session.id):
                        responses, end_session = self._handle(
                            session, frame, payload, trace_id,
                            parent_span_id)
            except (ServerSaturatedError, RequestTimeoutError) as exc:
                responses = [self._encode_error(frame.request_id, exc,
                                                transient=True,
                                                trace_id=trace_id)]
            except ReproError as exc:
                transient = type(exc).__name__ in TRANSIENT_ERRORS
                responses = [self._encode_error(frame.request_id, exc,
                                                transient=transient,
                                                trace_id=trace_id)]
            except Exception as exc:  # noqa: BLE001 - a bug must not kill
                # the session; surface it to the client instead.
                responses = [self._encode_error(frame.request_id, exc,
                                                trace_id=trace_id)]
        finally:
            if gated:
                self.admission.release()
            self.admission.observe(session.id, opcode_name, text,
                                   time.monotonic() - started,
                                   request_id=frame.request_id,
                                   trace_id=trace_id)
        self._call_on_loop(
            lambda: self._finish_request(session, responses, end_session))

    def _finish_request(self, session: Session, responses: List[bytes],
                        end_session: bool) -> None:
        session.executing = False
        session.inflight = False
        if session.closing:
            self._submit_close(session)
            return
        session.touch()
        for data in responses:
            session.outbuf += data
        if end_session:
            session.close_after_flush = True
            session.paused_read = True
        self._flush_out(session)
        if not session.closing and not session.close_after_flush:
            self._pump_session(session)

    # -- dispatch ------------------------------------------------------------

    def _handle(self, session: Session, frame: Frame,
                payload: Dict[str, Any],
                trace_id: Optional[str] = None,
                parent_span_id: Optional[str] = None
                ) -> Tuple[List[bytes], bool]:
        """Handle one request frame; returns (response frames, end)."""
        opcode = frame.opcode
        request_id = frame.request_id
        db = self.db
        if opcode == Opcode.PING:
            pong: Dict[str, Any] = {
                "pong": True,
                "admission": self.admission.snapshot()}
            if self.replication is not None and session.protocol >= 3:
                # Replica watermarks ride on PING so a routing pool can
                # refresh them with the cheapest possible round-trip.
                pong["replication"] = self.replication.status()
            return [self._encode_result(request_id, pong)], False
        if opcode == Opcode.STATS:
            return self._handle_stats(session, request_id, payload)
        if opcode == Opcode.WAL_STREAM:
            return [self._encode_result(
                request_id, self.wal_source.handle(payload))], False
        if opcode == Opcode.SUBSCRIBE:
            return [self._encode_result(
                request_id, self.cdc_source.handle(payload))], False
        if opcode == Opcode.QUERY or opcode == Opcode.EXECUTE:
            if opcode == Opcode.QUERY and payload.get("stream") is not None:
                return self._handle_open_cursor(session, request_id,
                                                payload)
            result = db.query(self._text(payload),
                              params=payload.get("params"))
            return [self._encode_result(request_id,
                                        result_to_payload(result))], False
        if opcode == Opcode.FETCH:
            return self._handle_fetch(session, request_id, payload)
        if opcode == Opcode.CLOSE_CURSOR:
            return self._handle_close_cursor(session, request_id, payload)
        if opcode == Opcode.PREPARE:
            return self._handle_prepare(session, request_id, payload)
        if opcode == Opcode.EXPLAIN:
            return self._handle_explain(session, request_id, payload,
                                        trace_id, parent_span_id)
        if opcode == Opcode.BEGIN:
            self._require_writable()
            if session.txn is not None and session.txn.is_active:
                raise TransactionStateError(
                    "session already has an open transaction")
            session.txn = db.begin()
            return [self._encode_result(
                request_id, {"txn_id": session.txn.txn_id})], False
        if opcode == Opcode.COMMIT:
            txn = self._require_txn(session)
            txn.commit()
            session.txn = None
            return [self._encode_result(request_id,
                                        {"committed": True})], False
        if opcode == Opcode.ROLLBACK:
            txn = self._require_txn(session)
            txn.abort()
            session.txn = None
            return [self._encode_result(request_id,
                                        {"rolled_back": True})], False
        if opcode == Opcode.MUTATE:
            self._require_writable()
            return self._handle_mutate(session, request_id, payload)
        if opcode == Opcode.CLOSE:
            return [self._encode_result(request_id, {"closed": True})], True
        raise ProtocolError(f"unknown opcode {opcode}")

    # -- handlers ------------------------------------------------------------

    @staticmethod
    def _text(payload: Dict[str, Any]) -> str:
        text = payload.get("text")
        if not isinstance(text, str) or not text:
            raise ProtocolError("request needs a non-empty 'text' field")
        return text

    def _require_writable(self) -> None:
        if self.replication is not None:
            primary = f"{self.replication.primary_host}:" \
                      f"{self.replication.primary_port}"
            raise ReadOnlyReplicaError(
                f"this server is a read-only replica of {primary}; "
                f"send writes and transactions to the primary",
                primary=primary)

    def _require_txn(self, session: Session):
        if session.txn is None or not session.txn.is_active:
            raise TransactionStateError(
                "no open transaction on this session")
        return session.txn

    def _handle_prepare(self, session: Session, request_id: int,
                        payload: Dict[str, Any]) -> Tuple[List[bytes], bool]:
        """Parse (and cache) a statement without running it.

        Priming the plan cache here means the first EXECUTE pays only
        bind + analyze, and later same-typed EXECUTEs only bind — the
        parameterized-analysis cache does the rest.
        """
        from repro.mql.parser import has_parameters, parse_query
        from repro.mql.planner import CompiledQuery

        text = self._text(payload)
        cache = getattr(self.db, "_plan_cache", None)
        entry = cache.get(text) if cache is not None else None
        if entry is None:
            query = parse_query(text)
            if cache is not None:
                entry = CompiledQuery(query, None)
                cache.put(text, entry)
        else:
            query = entry.query
        return [self._encode_result(request_id, {
            "prepared": True,
            "parameterized": has_parameters(query),
        })], False

    def _handle_stats(self, session: Session, request_id: int,
                      payload: Dict[str, Any]) -> Tuple[List[bytes], bool]:
        """Full introspection snapshot: server state + metrics registry.

        ``{"events": N}`` in the payload appends the last *N* entries of
        the structured event log — the ``monitor`` CLI's data source.
        """
        body: Dict[str, Any] = {
            "server": self.state_snapshot(),
            "metrics": self.db.metrics.snapshot(),
        }
        events = payload.get("events")
        if isinstance(events, int) and events > 0:
            body["events"] = self.events.tail(events)
        return [self._encode_result(request_id, body)], False

    def _handle_explain(self, session: Session, request_id: int,
                        payload: Dict[str, Any],
                        trace_id: Optional[str] = None,
                        parent_span_id: Optional[str] = None
                        ) -> Tuple[List[bytes], bool]:
        """EXPLAIN ANALYZE over the wire, server spans included.

        The server opens its own capture so the profile shows the whole
        request — a ``server.request`` root wrapping the kernel's
        ``mql.execute`` tree — rather than only the query internals.
        When the request carries trace context (protocol v2+), the
        capture joins the *client's* trace: every server span gets the
        client's ``trace_id`` and the root parents onto the client's
        span id, so the client can stitch both processes into one tree.
        """
        db = self.db
        with db.tracer.capture(trace_id=trace_id or new_trace_id(),
                               parent_span_id=parent_span_id) as capture:
            with db.tracer.span("server.request", opcode="EXPLAIN",
                                session=session.id):
                result = db.query(self._text(payload),
                                  params=payload.get("params"))
        profile = QueryProfile(capture.spans, result.plan)
        return [self._encode_result(
            request_id, result_to_payload(result, profile=profile))], False

    def _handle_mutate(self, session: Session, request_id: int,
                       payload: Dict[str, Any]) -> Tuple[List[bytes], bool]:
        op = payload.get("op")
        args = payload.get("args")
        if not isinstance(op, str) or not isinstance(args, dict):
            raise ProtocolError(
                "MUTATE needs 'op' (string) and 'args' (object)")
        if session.txn is not None and session.txn.is_active:
            response = self._apply_mutation(session.txn, op, args)
        else:
            # Autocommit: a lone mutation gets its own transaction.
            with self.db.transaction() as txn:
                response = self._apply_mutation(txn, op, args)
        return [self._encode_result(request_id, response)], False

    @staticmethod
    def _apply_mutation(txn, op: str, args: Dict[str, Any]
                        ) -> Dict[str, Any]:
        try:
            if op == "insert":
                atom_id = txn.insert(
                    args["type"], args["values"], args["valid_from"],
                    args.get("valid_to", FOREVER),
                    atom_id=args.get("atom_id"))
                return {"atom_id": atom_id}
            if op == "update":
                txn.update(args["atom_id"], args["changes"],
                           args["valid_from"], args.get("valid_to", FOREVER))
                return {"ok": True}
            if op == "delete":
                txn.delete(args["atom_id"], args["valid_from"],
                           args.get("valid_to", FOREVER))
                return {"ok": True}
            if op == "correct":
                txn.correct(args["atom_id"], args["window_start"],
                            args["window_end"], args["changes"])
                return {"ok": True}
            if op == "link":
                txn.link(args["link"], args["source_id"],
                         args["target_id"], args["valid_from"],
                         args.get("valid_to", FOREVER))
                return {"ok": True}
            if op == "unlink":
                txn.unlink(args["link"], args["source_id"],
                           args["target_id"], args["valid_from"],
                           args.get("valid_to", FOREVER))
                return {"ok": True}
        except KeyError as exc:
            raise ProtocolError(
                f"MUTATE {op} missing argument {exc.args[0]!r}") from exc
        raise ProtocolError(f"unknown mutation op {op!r}")

    # -- streaming cursors ---------------------------------------------------

    def _handle_open_cursor(self, session: Session, request_id: int,
                            payload: Dict[str, Any]
                            ) -> Tuple[List[bytes], bool]:
        if session.protocol < 3:
            raise ProtocolError(
                f"streaming cursors need protocol version >= 3 "
                f"(session negotiated {session.protocol})")
        spec = payload.get("stream")
        chunk_entries = 0
        if spec is True:
            from repro.mql.stream import DEFAULT_CHUNK_ENTRIES
            chunk_entries = DEFAULT_CHUNK_ENTRIES
        elif isinstance(spec, dict):
            from repro.mql.stream import DEFAULT_CHUNK_ENTRIES
            chunk_entries = spec.get("chunk_entries", DEFAULT_CHUNK_ENTRIES)
        if (not isinstance(chunk_entries, int) or chunk_entries < 1
                or chunk_entries > MAX_CHUNK_ENTRIES):
            raise ProtocolError(
                f"stream.chunk_entries must be an integer in "
                f"[1, {MAX_CHUNK_ENTRIES}]")
        if len(session.cursors) >= MAX_CURSORS_PER_SESSION:
            raise CursorStateError(
                f"session already holds {len(session.cursors)} open "
                f"cursors (max {MAX_CURSORS_PER_SESSION}); FETCH them to "
                f"exhaustion or CLOSE_CURSOR first")
        stream = self.db.query_stream(self._text(payload),
                                      params=payload.get("params"),
                                      chunk_entries=chunk_entries)
        session.next_cursor_id += 1
        cursor = ServerCursor(session.next_cursor_id, stream)
        session.cursors[cursor.id] = cursor
        self._count_cursors(+1)
        self.events.emit("cursor.open", session=session.id,
                         cursor=cursor.id, chunk_entries=chunk_entries)
        return [self._encode_result(request_id, {
            "cursor": {
                "cursor_id": cursor.id,
                "plan": cursor.plan,
                "projected": cursor.projected,
                "chunk_entries": chunk_entries,
            }})], False

    def _handle_fetch(self, session: Session, request_id: int,
                      payload: Dict[str, Any]) -> Tuple[List[bytes], bool]:
        if session.protocol < 3:
            raise ProtocolError(
                f"FETCH needs protocol version >= 3 "
                f"(session negotiated {session.protocol})")
        cursor = self._find_cursor(session, payload)
        try:
            chunk = next(cursor.chunks, None)
        except Exception:
            # A failed producer leaves the cursor unusable; reclaim it
            # so the session does not leak a broken generator.
            self._drop_cursor(session, cursor.id)
            raise
        if chunk is None:
            self._drop_cursor(session, cursor.id)
            return [self._encode_result(request_id, {
                "cursor_id": cursor.id, "entries": [],
                "done": True})], False
        body = {
            "cursor_id": cursor.id,
            "entries": entries_to_payload(chunk, cursor.projected),
            "done": False,
        }
        try:
            return [self._encode_result(request_id, body)], False
        except ResultTooLargeError:
            self._drop_cursor(session, cursor.id)
            raise ResultTooLargeError(
                f"one cursor chunk of {len(chunk)} entries exceeds the "
                f"frame cap; reopen the cursor with a smaller "
                f"chunk_entries") from None

    def _handle_close_cursor(self, session: Session, request_id: int,
                             payload: Dict[str, Any]
                             ) -> Tuple[List[bytes], bool]:
        cursor_id = payload.get("cursor_id")
        closed = (isinstance(cursor_id, int)
                  and session.cursors.get(cursor_id) is not None)
        if closed:
            self._drop_cursor(session, cursor_id)
        # Idempotent on purpose: the client's close() races the
        # server's own close-on-exhaustion.
        return [self._encode_result(request_id, {"closed": closed})], False

    @staticmethod
    def _find_cursor(session: Session,
                     payload: Dict[str, Any]) -> ServerCursor:
        cursor_id = payload.get("cursor_id")
        if not isinstance(cursor_id, int):
            raise ProtocolError("FETCH needs an integer 'cursor_id'")
        cursor = session.cursors.get(cursor_id)
        if cursor is None:
            raise CursorStateError(
                f"unknown cursor {cursor_id} on this session "
                f"(already exhausted, closed, or never opened)")
        return cursor

    def _drop_cursor(self, session: Session, cursor_id: int) -> None:
        cursor = session.cursors.pop(cursor_id, None)
        if cursor is None:
            return
        cursor.chunks.close()
        self._count_cursors(-1)
        self.events.emit("cursor.close", session=session.id,
                         cursor=cursor_id)

    def _reclaim_cursors(self, session: Session) -> None:
        if not session.cursors:
            return
        reclaimed = list(session.cursors.values())
        session.cursors.clear()
        for cursor in reclaimed:
            cursor.chunks.close()
        self._count_cursors(-len(reclaimed))

    def _count_cursors(self, delta: int) -> None:
        with self._cursor_lock:
            self._cursors_open += delta
            self._g_cursors.set(self._cursors_open)

    # -- reaping / draining / closing ----------------------------------------

    def _reap_idle(self, now: float) -> None:
        # REAPER_INTERVAL is read per sweep (not captured) so tests can
        # shrink it at runtime.
        if self.idle_timeout is None or now - self._last_reap < REAPER_INTERVAL:
            return
        self._last_reap = now
        cutoff = now - self.idle_timeout
        with self._sessions_lock:
            idle = [s for s in self._sessions.values()
                    if s.last_active < cutoff and not s.closing
                    and not s.inflight]
        for session in idle:
            self._c_reaped.inc()
            self.events.emit("session.reaped", session=session.id,
                             peer=session.peer,
                             idle_timeout=self.idle_timeout)
            self._mark_dead(session)

    def _begin_drain(self) -> None:
        self._drain_started = True
        try:
            self._selector.unregister(self._listener)
        except (KeyError, ValueError, OSError):
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        # Connections waiting for a capacity slot die like the kernel
        # backlog does: closed, never admitted.
        while self._overflow:
            conn, _, _ = self._overflow.popleft()
            try:
                conn.close()
            except OSError:
                pass
        # Parked requests are shed — their slot never existed, and the
        # client sees the same transient error as any saturation.
        while self._parked:
            session, frame, _, _, trace_id = self._parked.popleft()
            self.admission.unpark()
            if session.closing:
                continue
            session.inflight = False
            self._queue_error(session, frame.request_id,
                              ServerSaturatedError("server is draining"),
                              transient=True, trace_id=trace_id)
        with self._sessions_lock:
            sessions = list(self._sessions.values())
        for session in sessions:
            if session.closing:
                continue
            session.paused_read = True
            session.close_after_flush = True
            if session.executing:
                self._update_selector(session)
            else:
                # Flush whatever is pending, then close; an empty
                # buffer closes immediately.
                self._flush_out(session)

    def _close_session(self, session: Session) -> None:
        # Interlock with the worker: the shutdown path can reach here
        # while the session's request is still mid-dispatch inside the
        # very transaction we are about to abort.  The session lock is
        # held around dispatch, so acquiring it proves no request is in
        # flight.  If the worker is stuck past the timeout, leave the
        # transaction alone — closing the socket below errors the
        # worker out, and its own cleanup pass aborts safely.
        locked = session.lock.acquire(timeout=CLOSE_INTERLOCK_TIMEOUT)
        if locked:
            try:
                if session.txn is not None and session.txn.is_active:
                    try:
                        session.txn.abort()
                    except ReproError:
                        pass
                session.txn = None
                self._reclaim_cursors(session)
            finally:
                session.lock.release()
        session.closing = True
        self._uncount(session)
        try:
            session.conn.close()
        except OSError:
            pass
        with self._sessions_lock:
            removed = self._sessions.pop(session.id, None)
            self._workers.pop(session.id, None)
            remaining = len(self._sessions)
        self._g_connections.set(remaining)
        # Both the loop's teardown and the shutdown path reach here;
        # only the one that actually removed the session logs it.
        if removed is not None:
            self.events.emit("session.close", session=session.id,
                             peer=session.peer)
            if self._stopping.is_set():
                self._wake()  # let the drain loop notice the count drop

    # -- frame encoding ------------------------------------------------------

    def _encode_result(self, request_id: int,
                       payload: Dict[str, Any]) -> bytes:
        data = encode_payload(payload)
        try:
            return encode_frame(Opcode.RESULT, request_id, data)
        except ProtocolError:
            raise ResultTooLargeError(
                f"result payload of {len(data)} bytes exceeds the wire "
                f"frame cap; stream it instead with a cursor "
                f"(query_stream / QUERY with a 'stream' option)") from None

    @staticmethod
    def _encode_error(request_id: int, exc: BaseException,
                      transient: bool = False,
                      trace_id: Optional[str] = None) -> bytes:
        return encode_frame(Opcode.ERROR, request_id, encode_payload(
            error_payload(exc, transient, trace_id=trace_id)))

    # -- introspection -------------------------------------------------------

    def state_snapshot(self) -> Dict[str, Any]:
        """The server's operational state as one JSON-safe document
        (served by the STATS opcode and the sidecar's ``/stats``)."""
        with self._sessions_lock:
            sessions = len(self._sessions)
        with self._cursor_lock:
            cursors = self._cursors_open
        return {
            "host": self.host,
            "port": self.port,
            "started_at": round(self._started_at, 3),
            "uptime_seconds": round(
                time.monotonic() - self._started_monotonic, 3),
            "sessions": sessions,
            "max_connections": self.max_connections,
            "draining": self.draining,
            "protocol_versions": sorted(SUPPORTED_PROTOCOL_VERSIONS),
            "admission": self.admission.snapshot(),
            "open_cursors": cursors,
            "worker_threads": self._pool.size,
            "events_seen": self.events.last_seq,
            "replication": (self.replication.status()
                            if self.replication is not None
                            else self.wal_source.status()),
            "cdc": self.cdc_source.status(),
        }

"""Page-based storage system (the PRIMA-style kernel's lowest layer).

The storage system knows nothing about atoms or time: it stores untyped
byte records in *segments* (heap files) built from fixed-size pages that are
cached by a buffer manager.  Layering, bottom to top:

* :class:`~repro.storage.disk.DiskManager` — page I/O against one database
  file, with a free-page list and I/O counters.
* :class:`~repro.storage.buffer.BufferManager` — fixed pool of frames with a
  pluggable replacement policy (LRU or Clock), pin counting, dirty tracking.
* :class:`~repro.storage.slotted.SlottedPage` — the record layout within a
  page: slot directory at the front, record bodies packed from the back.
* :class:`~repro.storage.heap.HeapSegment` — unordered record files with a
  free-space map and transparent spanning of records larger than one page.
* :mod:`~repro.storage.serialization` — binary row codec for typed values.
* :class:`~repro.storage.catalog.Catalog` — persistent database metadata
  (schema, segment directory, index roots, clock), written atomically.
* :mod:`~repro.storage.strategies` — the paper's version-storage mapping
  alternatives (CLUSTERED / CHAINED / SEPARATED), built on the layers above.
"""

from repro.storage.buffer import BufferManager, BufferStats, ReplacementPolicy
from repro.storage.catalog import Catalog
from repro.storage.constants import DEFAULT_PAGE_SIZE, INVALID_PAGE_ID
from repro.storage.disk import DiskManager, DiskStats
from repro.storage.heap import HeapSegment, RecordId
from repro.storage.serialization import FieldSpec, FieldType, decode_row, encode_row
from repro.storage.slotted import SlottedPage
from repro.storage.strategies import (
    StorageStats,
    VersionStore,
    VersionStrategy,
    open_version_store,
)

__all__ = [
    "BufferManager",
    "BufferStats",
    "ReplacementPolicy",
    "Catalog",
    "DEFAULT_PAGE_SIZE",
    "INVALID_PAGE_ID",
    "DiskManager",
    "DiskStats",
    "HeapSegment",
    "RecordId",
    "FieldSpec",
    "FieldType",
    "decode_row",
    "encode_row",
    "SlottedPage",
    "StorageStats",
    "VersionStore",
    "VersionStrategy",
    "open_version_store",
]

"""Buffer manager: a fixed pool of page frames over the disk manager.

All higher layers access pages exclusively through :meth:`BufferManager.pin`
and release them with :meth:`BufferManager.unpin`; a pinned frame is never
evicted.  Two replacement policies are provided (the classic pair a 1992
kernel would offer):

* ``LRU`` — evict the least recently unpinned page.
* ``CLOCK`` — second-chance approximation of LRU with O(1) state per frame.

Hit/miss/eviction counters feed the buffer-sensitivity benchmark (R-F4).
"""

from __future__ import annotations

import enum
import threading
from bisect import bisect_right
from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from repro.errors import BufferPoolExhaustedError, PageError
from repro.obs import MetricsRegistry
from repro.storage.disk import DiskManager


class ReplacementPolicy(enum.Enum):
    """Frame replacement policy of the buffer pool."""

    LRU = "lru"
    CLOCK = "clock"


class BufferStats:
    """Buffer pool effectiveness counters.

    A view over the ``buffer.*`` counters of the metrics registry; the
    pool increments the counters directly on its hot paths.
    """

    __slots__ = ("_hits", "_misses", "_evictions", "_dirty_writebacks")

    def __init__(self, metrics: MetricsRegistry) -> None:
        self._hits = metrics.counter("buffer.hits")
        self._misses = metrics.counter("buffer.misses")
        self._evictions = metrics.counter("buffer.evictions")
        self._dirty_writebacks = metrics.counter("buffer.dirty_writebacks")

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def evictions(self) -> int:
        return self._evictions.value

    @property
    def dirty_writebacks(self) -> int:
        return self._dirty_writebacks.value

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        self._hits.reset()
        self._misses.reset()
        self._evictions.reset()
        self._dirty_writebacks.reset()


class Frame:
    """One buffered page: its image plus bookkeeping.

    ``data`` is the live page image; callers mutate it in place while the
    frame is pinned and must declare mutations via ``unpin(dirty=True)``.
    """

    __slots__ = ("page_id", "data", "pin_count", "dirty", "referenced")

    def __init__(self, page_id: int, data: bytearray) -> None:
        self.page_id = page_id
        self.data = data
        self.pin_count = 0
        self.dirty = False
        self.referenced = True  # clock hand second-chance bit


class BufferManager:
    """Pin-count buffer pool with pluggable replacement."""

    def __init__(self, disk: DiskManager, capacity: int = 128,
                 policy: ReplacementPolicy = ReplacementPolicy.LRU,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if capacity < 1:
            raise PageError(f"buffer capacity must be >= 1, got {capacity}")
        self._disk = disk
        self._capacity = capacity
        self._policy = policy
        self._lock = threading.RLock()
        # Insertion order doubles as recency order under LRU: a frame is
        # moved to the end whenever it is pinned.
        self._frames: "OrderedDict[int, Frame]" = OrderedDict()
        # The clock hand is tracked by *page id* (the last key visited),
        # not by index into a keys() snapshot: frames come and go between
        # sweeps, and a positional hand would drift to arbitrary frames,
        # losing second-chance fairness.  Sweep order is ascending page
        # id, wrapping around; the hand resumes after the last-visited id
        # even when that page has since been evicted or freed.
        self._clock_hand_key: Optional[int] = None
        self.metrics = metrics if metrics is not None else disk.metrics
        self.stats = BufferStats(self.metrics)
        self._c_hits = self.metrics.counter("buffer.hits")
        self._c_misses = self.metrics.counter("buffer.misses")
        self._c_evictions = self.metrics.counter("buffer.evictions")
        self._c_dirty_writebacks = self.metrics.counter(
            "buffer.dirty_writebacks")

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def disk(self) -> DiskManager:
        return self._disk

    @property
    def page_size(self) -> int:
        return self._disk.page_size

    # -- core protocol -----------------------------------------------------------

    def pin(self, page_id: int) -> Frame:
        """Fetch a page into the pool and pin it.

        The returned frame stays resident until a matching :meth:`unpin`.
        """
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is not None:
                self._c_hits.inc()
            else:
                self._c_misses.inc()
                self._ensure_free_slot()
                frame = Frame(page_id, self._disk.read_page(page_id))
                self._frames[page_id] = frame
            frame.pin_count += 1
            frame.referenced = True
            if self._policy is ReplacementPolicy.LRU:
                self._frames.move_to_end(page_id)
            return frame

    def unpin(self, page_id: int, dirty: bool = False) -> None:
        """Release one pin; *dirty* declares the page image was mutated."""
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is None or frame.pin_count <= 0:
                raise PageError(f"unpin of page {page_id} that is not pinned")
            frame.pin_count -= 1
            frame.dirty = frame.dirty or dirty

    @contextmanager
    def page(self, page_id: int, dirty: bool = False) -> Iterator[Frame]:
        """Scoped pin: ``with buffer.page(pid) as frame: ...``."""
        frame = self.pin(page_id)
        try:
            yield frame
        finally:
            self.unpin(page_id, dirty=dirty)

    def new_page(self) -> Frame:
        """Allocate a fresh page on disk and return it pinned."""
        with self._lock:
            page_id = self._disk.allocate_page()
            self._ensure_free_slot()
            frame = Frame(page_id, bytearray(self._disk.page_size))
            frame.pin_count = 1
            self._frames[page_id] = frame
            return frame

    def free_page(self, page_id: int) -> None:
        """Drop a page from the pool and return it to the disk free list."""
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is not None:
                if frame.pin_count > 0:
                    raise PageError(f"cannot free pinned page {page_id}")
                del self._frames[page_id]
            self._disk.deallocate_page(page_id)

    # -- eviction ---------------------------------------------------------------

    def _ensure_free_slot(self) -> None:
        if len(self._frames) < self._capacity:
            return
        victim = (self._pick_lru_victim()
                  if self._policy is ReplacementPolicy.LRU
                  else self._pick_clock_victim())
        self._write_back(victim)
        del self._frames[victim.page_id]
        self._c_evictions.inc()

    def _pick_lru_victim(self) -> Frame:
        for frame in self._frames.values():  # oldest first
            if frame.pin_count == 0:
                return frame
        raise BufferPoolExhaustedError(
            f"all {self._capacity} buffer frames are pinned")

    def _pick_clock_victim(self) -> Frame:
        keys = sorted(self._frames)
        n = len(keys)
        # Resume the sweep just past the last-visited page id; bisect
        # finds the position even when that page is no longer resident.
        position = (0 if self._clock_hand_key is None
                    else bisect_right(keys, self._clock_hand_key) % n)
        # Two sweeps: the first clears reference bits, the second must find
        # an unreferenced, unpinned frame if any unpinned frame exists.
        for _ in range(2 * n):
            key = keys[position]
            position = (position + 1) % n
            self._clock_hand_key = key
            frame = self._frames[key]
            if frame.pin_count > 0:
                continue
            if frame.referenced:
                frame.referenced = False
                continue
            return frame
        raise BufferPoolExhaustedError(
            f"all {self._capacity} buffer frames are pinned")

    def _write_back(self, frame: Frame) -> None:
        if frame.dirty:
            self._disk.write_page(frame.page_id, bytes(frame.data))
            self._c_dirty_writebacks.inc()
            frame.dirty = False

    # -- maintenance ---------------------------------------------------------------

    def flush_page(self, page_id: int) -> None:
        """Write one page back to disk if dirty (keeps it buffered)."""
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is not None:
                self._write_back(frame)

    def flush_all(self) -> None:
        """Write every dirty page back to disk (checkpoint support)."""
        with self._lock:
            for frame in self._frames.values():
                self._write_back(frame)

    def pinned_pages(self) -> Dict[int, int]:
        """Map of page id to pin count for pages currently pinned (debug)."""
        with self._lock:
            return {f.page_id: f.pin_count
                    for f in self._frames.values() if f.pin_count > 0}

    def resident_pages(self) -> int:
        with self._lock:
            return len(self._frames)

"""Persistent database catalog.

The catalog records everything needed to reopen a database: the schema,
the version-storage strategy, the page lists of every segment, index
roots, the next atom identifier, the transaction clock, and the id of the
last log record already applied to storage (the recovery horizon).

It is persisted as a JSON document written with the atomic
write-to-temporary-then-rename pattern, so a crash during a checkpoint
leaves the previous catalog intact.  The write-ahead log replays every
committed change newer than ``applied_lsn``, which is exactly what makes
the out-of-line catalog crash-safe: storage plus catalog are only ever
trusted up to the checkpoint they were written in.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, List, Optional

from repro.errors import CatalogError

_FORMAT_VERSION = 1


class Catalog:
    """In-memory view of the catalog document, with atomic save/load."""

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self._path = os.fspath(path)
        self.schema: Optional[Dict[str, Any]] = None
        self.strategy: Optional[str] = None
        self.segments: Dict[str, List[int]] = {}
        self.index_roots: Dict[str, int] = {}
        self.next_atom_id: int = 1
        self.clock: int = 0
        self.applied_lsn: int = 0
        self.page_size: int = 0
        self.extras: Dict[str, Any] = {}

    @property
    def path(self) -> str:
        return self._path

    def exists(self) -> bool:
        return os.path.exists(self._path)

    # -- persistence --------------------------------------------------------

    def save(self) -> None:
        """Atomically persist the catalog next to the database file."""
        document = {
            "format_version": _FORMAT_VERSION,
            "schema": self.schema,
            "strategy": self.strategy,
            "segments": self.segments,
            "index_roots": self.index_roots,
            "next_atom_id": self.next_atom_id,
            "clock": self.clock,
            "applied_lsn": self.applied_lsn,
            "page_size": self.page_size,
            "extras": self.extras,
        }
        directory = os.path.dirname(self._path) or "."
        fd, temp_path = tempfile.mkstemp(dir=directory, suffix=".catalog.tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(document, handle, indent=1, sort_keys=True)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_path, self._path)
        except OSError as exc:
            if os.path.exists(temp_path):
                os.unlink(temp_path)
            raise CatalogError(f"cannot persist catalog: {exc}") from exc

    def load(self) -> None:
        """Read the catalog document, replacing in-memory state."""
        try:
            with open(self._path, encoding="utf-8") as handle:
                document = json.load(handle)
        except FileNotFoundError as exc:
            raise CatalogError(f"no catalog at {self._path}") from exc
        except (OSError, json.JSONDecodeError) as exc:
            raise CatalogError(f"corrupt catalog at {self._path}") from exc
        version = document.get("format_version")
        if version != _FORMAT_VERSION:
            raise CatalogError(
                f"catalog format {version!r} unsupported "
                f"(expected {_FORMAT_VERSION})")
        self.schema = document.get("schema")
        self.strategy = document.get("strategy")
        self.segments = {name: list(pages) for name, pages
                         in document.get("segments", {}).items()}
        self.index_roots = dict(document.get("index_roots", {}))
        self.next_atom_id = int(document.get("next_atom_id", 1))
        self.clock = int(document.get("clock", 0))
        self.applied_lsn = int(document.get("applied_lsn", 0))
        self.page_size = int(document.get("page_size", 0))
        self.extras = dict(document.get("extras", {}))

"""Storage-layer constants shared across modules."""

from __future__ import annotations

#: Default size of a database page in bytes.  All pages of one database file
#: share a single size, recorded in the file header.
DEFAULT_PAGE_SIZE = 4096

#: Smallest page size accepted; below this the slotted-page header and a
#: single spanning fragment no longer fit.
MIN_PAGE_SIZE = 256

#: Sentinel page id meaning "no page" (end of a chain, absent root, ...).
INVALID_PAGE_ID = 0xFFFF_FFFF_FFFF_FFFF

#: Magic number identifying a repro database file (first header bytes).
FILE_MAGIC = b"TCOM1992"

#: Size in bytes of the per-file header block (page 0 prefix).
FILE_HEADER_SIZE = 64

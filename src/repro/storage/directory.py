"""Atom directory: persistent hash map from atom identifier to bytes.

Every version-storage strategy needs address translation — given an atom
identifier, find where its versions live.  The directory is a bucketed
hash table on slotted pages (the page-table style translation a PRIMA-type
kernel uses): a fixed array of bucket head pages, each the start of an
overflow chain, with entries ``(atom id, payload)`` stored as slotted
records.  Payloads are small per-strategy location descriptors (record
ids, counts, envelopes) and may vary in length.

The bucket page array is persisted through the catalog like any segment's
page list; the first page id of a chain is the bucket head, overflow pages
are linked through the slotted page's reserved header area.
"""

from __future__ import annotations

import struct
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import PageFullError, StorageError
from repro.storage.buffer import BufferManager
from repro.storage.constants import INVALID_PAGE_ID
from repro.storage.slotted import SlottedPage

_ENTRY_KEY = struct.Struct("<q")
_NEXT_PTR = struct.Struct("<Q")  # stored in the page's reserved area

#: Default number of hash buckets; a power of two keeps the modulo cheap.
DEFAULT_BUCKETS = 64


def _get_next(page: bytearray) -> int:
    return _NEXT_PTR.unpack_from(page, 0)[0]


def _set_next(page: bytearray, next_page: int) -> None:
    _NEXT_PTR.pack_into(page, 0, next_page)


class AtomDirectory:
    """Hash-bucketed persistent map ``atom_id -> payload bytes``."""

    def __init__(self, buffer: BufferManager, name: str,
                 bucket_pages: Optional[List[int]] = None,
                 num_buckets: int = DEFAULT_BUCKETS) -> None:
        self._buffer = buffer
        self.name = name
        if bucket_pages:
            self._buckets = list(bucket_pages)
        else:
            self._buckets = [self._new_chain_page(INVALID_PAGE_ID)
                             for _ in range(num_buckets)]
        self._count: Optional[int] = None  # lazy entry counter

    # -- persistence hooks -----------------------------------------------------

    @property
    def bucket_pages(self) -> List[int]:
        """Bucket head page ids, persisted by the catalog."""
        return list(self._buckets)

    def pages(self) -> List[int]:
        """Every page id used by the directory (heads plus overflow)."""
        result: List[int] = []
        for head in self._buckets:
            page_id = head
            while page_id != INVALID_PAGE_ID:
                result.append(page_id)
                with self._buffer.page(page_id) as frame:
                    page_id = _get_next(frame.data)
        return result

    # -- page management -----------------------------------------------------------

    def _new_chain_page(self, next_page: int) -> int:
        frame = self._buffer.new_page()
        try:
            SlottedPage.format(frame.data)
            _set_next(frame.data, next_page)
        finally:
            self._buffer.unpin(frame.page_id, dirty=True)
        return frame.page_id

    def _bucket_for(self, atom_id: int) -> int:
        return self._buckets[hash(atom_id) % len(self._buckets)]

    # -- entry codec -------------------------------------------------------------------

    @staticmethod
    def _pack_entry(atom_id: int, payload: bytes) -> bytes:
        return _ENTRY_KEY.pack(atom_id) + payload

    @staticmethod
    def _unpack_entry(record: bytes) -> Tuple[int, bytes]:
        (atom_id,) = _ENTRY_KEY.unpack_from(record, 0)
        return atom_id, record[_ENTRY_KEY.size:]

    # -- lookup ----------------------------------------------------------------------------

    def _locate(self, atom_id: int) -> Optional[Tuple[int, int]]:
        """Find (page id, slot) of the entry for *atom_id*, if present."""
        page_id = self._bucket_for(atom_id)
        while page_id != INVALID_PAGE_ID:
            with self._buffer.page(page_id) as frame:
                page = SlottedPage(frame.data)
                for slot in page.iter_slots():
                    key, _ = self._unpack_entry(page.read(slot))
                    if key == atom_id:
                        return page_id, slot
                page_id = _get_next(frame.data)
        return None

    def get(self, atom_id: int) -> Optional[bytes]:
        """Return the payload stored for *atom_id*, or ``None``."""
        location = self._locate(atom_id)
        if location is None:
            return None
        page_id, slot = location
        with self._buffer.page(page_id) as frame:
            _, payload = self._unpack_entry(SlottedPage(frame.data).read(slot))
            return payload

    def get_many(self, atom_ids: Iterable[int]) -> Dict[int, Optional[bytes]]:
        """Batched :meth:`get`: payloads for many atoms at once.

        Requests are grouped by bucket so every chain is walked once per
        batch no matter how many of its atoms were asked for — a chain
        page is pinned once per batch instead of once per atom.  Returns
        ``{atom_id: payload or None}`` with every requested id present.
        """
        result: Dict[int, Optional[bytes]] = {}
        by_bucket: Dict[int, List[int]] = {}
        for atom_id in atom_ids:
            if atom_id in result:
                continue
            result[atom_id] = None
            by_bucket.setdefault(
                hash(atom_id) % len(self._buckets), []).append(atom_id)
        for bucket_index, wanted in by_bucket.items():
            pending = set(wanted)
            page_id = self._buckets[bucket_index]
            while page_id != INVALID_PAGE_ID and pending:
                with self._buffer.page(page_id) as frame:
                    page = SlottedPage(frame.data)
                    for slot in page.iter_slots():
                        key, payload = self._unpack_entry(page.read(slot))
                        if key in pending:
                            result[key] = payload
                            pending.discard(key)
                            if not pending:
                                break
                    page_id = _get_next(frame.data)
        return result

    def __contains__(self, atom_id: int) -> bool:
        return self._locate(atom_id) is not None

    # -- mutation ----------------------------------------------------------------------------

    def put(self, atom_id: int, payload: bytes) -> None:
        """Insert or replace the entry for *atom_id*."""
        record = self._pack_entry(atom_id, payload)
        location = self._locate(atom_id)
        if location is not None:
            page_id, slot = location
            with self._buffer.page(page_id, dirty=True) as frame:
                page = SlottedPage(frame.data)
                try:
                    page.update(slot, record)
                    return
                except PageFullError:
                    page.delete(slot)
            self._insert_into_bucket(atom_id, record)
            return
        self._insert_into_bucket(atom_id, record)
        if self._count is not None:
            self._count += 1

    def _insert_into_bucket(self, atom_id: int, record: bytes) -> None:
        bucket_index = hash(atom_id) % len(self._buckets)
        page_id = self._buckets[bucket_index]
        while True:
            with self._buffer.page(page_id, dirty=True) as frame:
                page = SlottedPage(frame.data)
                try:
                    page.insert(record)
                    return
                except PageFullError:
                    next_page = _get_next(frame.data)
            if next_page == INVALID_PAGE_ID:
                # Prepend a fresh overflow page so the chain head stays
                # the least-full page.
                new_head = self._new_chain_page(self._buckets[bucket_index])
                self._buckets[bucket_index] = new_head
                page_id = new_head
            else:
                page_id = next_page

    def delete(self, atom_id: int) -> bool:
        """Remove the entry for *atom_id*; returns whether it existed."""
        location = self._locate(atom_id)
        if location is None:
            return False
        page_id, slot = location
        with self._buffer.page(page_id, dirty=True) as frame:
            SlottedPage(frame.data).delete(slot)
        if self._count is not None:
            self._count -= 1
        return True

    # -- iteration --------------------------------------------------------------------------------

    def items(self) -> Iterator[Tuple[int, bytes]]:
        """Yield every (atom id, payload) pair; order is physical."""
        for head in self._buckets:
            page_id = head
            while page_id != INVALID_PAGE_ID:
                with self._buffer.page(page_id) as frame:
                    page = SlottedPage(frame.data)
                    entries = [self._unpack_entry(page.read(slot))
                               for slot in page.iter_slots()]
                    page_id = _get_next(frame.data)
                yield from entries

    def keys(self) -> Iterator[int]:
        for atom_id, _ in self.items():
            yield atom_id

    def __len__(self) -> int:
        if self._count is None:
            self._count = sum(1 for _ in self.items())
        return self._count

    # -- integrity ---------------------------------------------------------------------------------

    def check(self) -> None:
        """Verify that every entry hashes to the chain it is stored in."""
        for index, head in enumerate(self._buckets):
            page_id = head
            while page_id != INVALID_PAGE_ID:
                with self._buffer.page(page_id) as frame:
                    page = SlottedPage(frame.data)
                    for slot in page.iter_slots():
                        key, _ = self._unpack_entry(page.read(slot))
                        if hash(key) % len(self._buckets) != index:
                            raise StorageError(
                                f"{self.name}: atom {key} filed in wrong "
                                f"bucket {index}")
                    page_id = _get_next(frame.data)

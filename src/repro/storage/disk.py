"""Disk manager: fixed-size page I/O against a single database file.

File layout::

    page 0:   file header (magic, page size, page count, free-list head)
              -- never handed out as a data page
    page 1..: data pages

Freed pages form an intrusive singly linked list: the first eight bytes of
a free page hold the id of the next free page.  Allocation pops from that
list before extending the file, so space is reused.

The manager counts physical reads and writes; the benchmark harness uses
those counters as its hardware-independent cost measure (the 1992 paper's
absolute times came from its testbed — page I/O counts are the portable
signal).
"""

from __future__ import annotations

import os
import struct
import threading
from typing import Optional

from repro.errors import PageError, StorageError
from repro.obs import MetricsRegistry
from repro.storage.constants import (
    DEFAULT_PAGE_SIZE,
    FILE_HEADER_SIZE,
    FILE_MAGIC,
    INVALID_PAGE_ID,
    MIN_PAGE_SIZE,
)

_HEADER = struct.Struct("<8sIQQ")  # magic, page_size, page_count, free_head
_FREE_LINK = struct.Struct("<Q")


class DiskStats:
    """Physical I/O counters, cumulative since open (or last reset).

    A read-oriented view over the ``disk.*`` counters of the metrics
    registry; the manager increments the counters directly on its hot
    paths.
    """

    __slots__ = ("_reads", "_writes", "_allocations", "_deallocations")

    def __init__(self, metrics: MetricsRegistry) -> None:
        self._reads = metrics.counter("disk.reads")
        self._writes = metrics.counter("disk.writes")
        self._allocations = metrics.counter("disk.allocations")
        self._deallocations = metrics.counter("disk.deallocations")

    @property
    def reads(self) -> int:
        return self._reads.value

    @property
    def writes(self) -> int:
        return self._writes.value

    @property
    def allocations(self) -> int:
        return self._allocations.value

    @property
    def deallocations(self) -> int:
        return self._deallocations.value

    def reset(self) -> None:
        self._reads.reset()
        self._writes.reset()
        self._allocations.reset()
        self._deallocations.reset()


class DiskManager:
    """Owns one database file and serves page-granular reads and writes."""

    def __init__(self, path: str | os.PathLike[str],
                 page_size: int = DEFAULT_PAGE_SIZE,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if page_size < MIN_PAGE_SIZE:
            raise StorageError(
                f"page size {page_size} below minimum {MIN_PAGE_SIZE}")
        self._path = os.fspath(path)
        self._lock = threading.Lock()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.stats = DiskStats(self.metrics)
        self._c_reads = self.metrics.counter("disk.reads")
        self._c_writes = self.metrics.counter("disk.writes")
        self._c_allocations = self.metrics.counter("disk.allocations")
        self._c_deallocations = self.metrics.counter("disk.deallocations")
        exists = os.path.exists(self._path) and os.path.getsize(self._path) > 0
        # "r+b" preserves an existing file; "w+b" would truncate it.
        self._file = open(self._path, "r+b" if exists else "w+b")
        if exists:
            self._read_header(expected_page_size=page_size)
        else:
            self._page_size = page_size
            self._page_count = 1  # page 0 is the header page
            self._free_head = INVALID_PAGE_ID
            self._file.write(b"\x00" * page_size)
            self._write_header()

    # -- header ---------------------------------------------------------------

    def _read_header(self, expected_page_size: int) -> None:
        self._file.seek(0)
        raw = self._file.read(FILE_HEADER_SIZE)
        if len(raw) < _HEADER.size:
            raise PageError(f"{self._path}: truncated file header")
        magic, page_size, page_count, free_head = _HEADER.unpack(
            raw[:_HEADER.size])
        if magic != FILE_MAGIC:
            raise PageError(f"{self._path}: not a repro database file")
        if expected_page_size != page_size:
            raise PageError(
                f"{self._path}: file has page size {page_size}, "
                f"caller expected {expected_page_size}")
        self._page_size = page_size
        self._page_count = page_count
        self._free_head = free_head

    def _write_header(self) -> None:
        header = _HEADER.pack(FILE_MAGIC, self._page_size,
                              self._page_count, self._free_head)
        self._file.seek(0)
        self._file.write(header.ljust(FILE_HEADER_SIZE, b"\x00"))

    # -- properties --------------------------------------------------------------

    @property
    def page_size(self) -> int:
        return self._page_size

    @property
    def page_count(self) -> int:
        """Number of pages in the file, including the header page."""
        return self._page_count

    @property
    def path(self) -> str:
        return self._path

    def data_bytes_on_disk(self) -> int:
        """Total file size in bytes (the storage-consumption metric)."""
        return self._page_count * self._page_size

    # -- page I/O -----------------------------------------------------------------

    def _check_pid(self, page_id: int) -> None:
        if not (1 <= page_id < self._page_count):
            raise PageError(
                f"page id {page_id} out of range (1..{self._page_count - 1})")

    def read_page(self, page_id: int) -> bytearray:
        """Read one page image from disk."""
        with self._lock:
            self._check_pid(page_id)
            self._file.seek(page_id * self._page_size)
            data = self._file.read(self._page_size)
            if len(data) != self._page_size:
                raise PageError(f"short read on page {page_id}")
            self._c_reads.inc()
            return bytearray(data)

    def write_page(self, page_id: int, data: bytes) -> None:
        """Write one page image to disk."""
        with self._lock:
            self._check_pid(page_id)
            if len(data) != self._page_size:
                raise PageError(
                    f"page image must be {self._page_size} bytes, "
                    f"got {len(data)}")
            self._file.seek(page_id * self._page_size)
            self._file.write(data)
            self._c_writes.inc()

    # -- allocation ----------------------------------------------------------------

    def allocate_page(self) -> int:
        """Return the id of a fresh, zeroed page."""
        with self._lock:
            self._c_allocations.inc()
            if self._free_head != INVALID_PAGE_ID:
                page_id = self._free_head
                self._file.seek(page_id * self._page_size)
                link_raw = self._file.read(_FREE_LINK.size)
                self._c_reads.inc()
                (self._free_head,) = _FREE_LINK.unpack(link_raw)
            else:
                page_id = self._page_count
                self._page_count += 1
            self._file.seek(page_id * self._page_size)
            self._file.write(b"\x00" * self._page_size)
            self._c_writes.inc()
            self._write_header()
            return page_id

    def deallocate_page(self, page_id: int) -> None:
        """Return a page to the free list for later reuse."""
        with self._lock:
            self._check_pid(page_id)
            self._c_deallocations.inc()
            self._file.seek(page_id * self._page_size)
            self._file.write(_FREE_LINK.pack(self._free_head).ljust(
                self._page_size, b"\x00"))
            self._c_writes.inc()
            self._free_head = page_id
            self._write_header()

    # -- lifecycle ------------------------------------------------------------------

    def sync(self) -> None:
        """Force file contents to stable storage."""
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        if not self._file.closed:
            self._write_header()
            self._file.flush()
            self._file.close()

    def __enter__(self) -> "DiskManager":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

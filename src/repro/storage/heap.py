"""Heap segments: unordered record files with spanned (multi-page) records.

A segment owns an ordered list of pages (persisted via the catalog) and
stores byte records addressed by stable :class:`RecordId`\\ s.  Records
larger than one page are transparently *spanned*: the payload is split into
fragments chained by record ids, and only the head fragment's id is visible
to callers.  Spanning is what makes the paper's CLUSTERED strategy — the
whole version history of an atom in one logical record — realizable.

Fragment envelope (first byte of every stored record):

====  =============================================
flag  meaning
====  =============================================
0     complete record (payload follows)
1     head fragment   (next RecordId + payload follow)
2     middle fragment (next RecordId + payload follow)
3     tail fragment   (payload follows)
====  =============================================

Scans yield only complete records and head fragments, so every logical
record appears exactly once.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import PageFullError, RecordNotFoundError, StorageError
from repro.storage.buffer import BufferManager
from repro.storage.slotted import SlottedPage

_RID = struct.Struct("<QH")

_FLAG_WHOLE = 0
_FLAG_HEAD = 1
_FLAG_MIDDLE = 2
_FLAG_TAIL = 3


@dataclass(frozen=True, slots=True, order=True)
class RecordId:
    """Stable address of a logical record: (page id, slot number)."""

    page_id: int
    slot: int

    PACKED_SIZE = _RID.size

    def pack(self) -> bytes:
        return _RID.pack(self.page_id, self.slot)

    @classmethod
    def unpack(cls, data: bytes, offset: int = 0) -> "RecordId":
        page_id, slot = _RID.unpack_from(data, offset)
        return cls(page_id, slot)

    def __str__(self) -> str:
        return f"@{self.page_id}.{self.slot}"


class HeapSegment:
    """An unordered collection of byte records built on slotted pages."""

    def __init__(self, buffer: BufferManager, name: str,
                 page_ids: Optional[List[int]] = None) -> None:
        self._buffer = buffer
        self.name = name
        self._pages: List[int] = list(page_ids or [])
        # Free-space map: page id -> worst-case insertable payload bytes.
        # Rebuilt lazily; kept approximate and corrected on PageFullError.
        self._free_map: Dict[int, int] = {}
        self._free_map_ready = False
        metrics = buffer.metrics
        self._c_reads = metrics.counter("heap.record_reads", segment=name)
        self._c_inserts = metrics.counter("heap.record_inserts", segment=name)
        self._c_deletes = metrics.counter("heap.record_deletes", segment=name)
        self._c_spanned = metrics.counter("heap.spanned_inserts", segment=name)

    # -- catalog integration -------------------------------------------------

    @property
    def pages(self) -> List[int]:
        """The segment's page ids in order (persisted by the catalog)."""
        return list(self._pages)

    def page_count(self) -> int:
        return len(self._pages)

    # -- free-space map ----------------------------------------------------------

    def _ensure_free_map(self) -> None:
        if self._free_map_ready:
            return
        for page_id in self._pages:
            with self._buffer.page(page_id) as frame:
                self._free_map[page_id] = SlottedPage(frame.data).free_space()
        self._free_map_ready = True

    def _page_with_room(self, needed: int) -> int:
        self._ensure_free_map()
        for page_id, free in self._free_map.items():
            if free >= needed:
                return page_id
        frame = self._buffer.new_page()
        try:
            SlottedPage.format(frame.data)
        finally:
            self._buffer.unpin(frame.page_id, dirty=True)
        self._pages.append(frame.page_id)
        self._free_map[frame.page_id] = SlottedPage.capacity(
            self._buffer.page_size)
        return frame.page_id

    def _refresh_free(self, page_id: int, page: SlottedPage) -> None:
        self._free_map[page_id] = page.free_space()

    # -- fragment-level helpers -----------------------------------------------------

    def _insert_fragment(self, body: bytes) -> RecordId:
        needed = len(body)
        while True:
            page_id = self._page_with_room(needed)
            with self._buffer.page(page_id, dirty=True) as frame:
                page = SlottedPage(frame.data)
                try:
                    slot = page.insert(body)
                except PageFullError:
                    # The map was stale; correct it and retry elsewhere.
                    self._refresh_free(page_id, page)
                    continue
                self._refresh_free(page_id, page)
                return RecordId(page_id, slot)

    def _read_fragment(self, rid: RecordId) -> bytes:
        with self._buffer.page(rid.page_id) as frame:
            page = SlottedPage(frame.data)
            try:
                return page.read(rid.slot)
            except Exception as exc:  # slot errors become record errors
                raise RecordNotFoundError(
                    f"{self.name}: no record {rid}") from exc

    def _delete_fragment(self, rid: RecordId) -> None:
        with self._buffer.page(rid.page_id, dirty=True) as frame:
            page = SlottedPage(frame.data)
            try:
                page.delete(rid.slot)
            except Exception as exc:
                raise RecordNotFoundError(
                    f"{self.name}: no record {rid}") from exc
            self._refresh_free(rid.page_id, page)

    # -- public record protocol ---------------------------------------------------------

    def max_unspanned(self) -> int:
        """Largest payload stored without spanning (envelope deducted)."""
        return SlottedPage.capacity(self._buffer.page_size) - 1

    def insert(self, payload: bytes) -> RecordId:
        """Store *payload*, spanning pages if necessary; return its id."""
        self._c_inserts.inc()
        if len(payload) <= self.max_unspanned():
            return self._insert_fragment(bytes([_FLAG_WHOLE]) + payload)
        self._c_spanned.inc()
        chunk = self.max_unspanned() - RecordId.PACKED_SIZE
        if chunk <= 0:
            raise StorageError("page size too small for spanned records")
        pieces = [payload[i:i + chunk] for i in range(0, len(payload), chunk)]
        # Build the chain back to front so each fragment knows its successor.
        next_rid: Optional[RecordId] = None
        for index in range(len(pieces) - 1, 0, -1):
            flag = _FLAG_TAIL if next_rid is None else _FLAG_MIDDLE
            body = bytes([flag])
            if next_rid is not None:
                body += next_rid.pack()
            body += pieces[index]
            next_rid = self._insert_fragment(body)
        assert next_rid is not None
        head = bytes([_FLAG_HEAD]) + next_rid.pack() + pieces[0]
        return self._insert_fragment(head)

    def read(self, rid: RecordId) -> bytes:
        """Return the full payload of the logical record at *rid*."""
        self._c_reads.inc()
        body = self._read_fragment(rid)
        flag = body[0]
        if flag == _FLAG_WHOLE:
            return body[1:]
        if flag != _FLAG_HEAD:
            raise RecordNotFoundError(
                f"{self.name}: {rid} addresses a spanning fragment, "
                f"not a record head")
        parts = [body[1 + RecordId.PACKED_SIZE:]]
        next_rid: Optional[RecordId] = RecordId.unpack(body, 1)
        while next_rid is not None:
            body = self._read_fragment(next_rid)
            flag = body[0]
            if flag == _FLAG_TAIL:
                parts.append(body[1:])
                next_rid = None
            elif flag == _FLAG_MIDDLE:
                parts.append(body[1 + RecordId.PACKED_SIZE:])
                next_rid = RecordId.unpack(body, 1)
            else:
                raise StorageError(
                    f"{self.name}: corrupt spanning chain at {next_rid}")
        return b"".join(parts)

    def read_many(self, rids: Iterable[RecordId]) -> Dict[RecordId, bytes]:
        """Batched :meth:`read`: payloads for many records at once.

        Record ids are sorted and grouped by page so each underlying page
        is pinned once per batch regardless of how many of its records
        were requested.  Spanned records (head fragments) fall back to
        the chained per-fragment read.  Returns ``{rid: payload}`` for
        every distinct requested id; a missing record raises
        :class:`RecordNotFoundError`, exactly like :meth:`read`.
        """
        out: Dict[RecordId, bytes] = {}
        spanned: List[RecordId] = []
        group: List[RecordId] = []
        for rid in sorted(set(rids)):
            if group and group[-1].page_id != rid.page_id:
                self._read_page_group(group, out, spanned)
                group = []
            group.append(rid)
        if group:
            self._read_page_group(group, out, spanned)
        for rid in spanned:
            out[rid] = self.read(rid)
        return out

    def _read_page_group(self, rids: List[RecordId],
                         out: Dict[RecordId, bytes],
                         spanned: List[RecordId]) -> None:
        """Read all *rids* of one page under a single pin."""
        with self._buffer.page(rids[0].page_id) as frame:
            page = SlottedPage(frame.data)
            for rid in rids:
                try:
                    body = page.read(rid.slot)
                except Exception as exc:
                    raise RecordNotFoundError(
                        f"{self.name}: no record {rid}") from exc
                flag = body[0]
                if flag == _FLAG_WHOLE:
                    self._c_reads.inc()
                    out[rid] = body[1:]
                elif flag == _FLAG_HEAD:
                    spanned.append(rid)
                else:
                    raise RecordNotFoundError(
                        f"{self.name}: {rid} addresses a spanning fragment, "
                        f"not a record head")

    def delete(self, rid: RecordId) -> None:
        """Remove the logical record at *rid*, including all fragments."""
        self._c_deletes.inc()
        body = self._read_fragment(rid)
        flag = body[0]
        self._delete_fragment(rid)
        next_rid = (RecordId.unpack(body, 1)
                    if flag in (_FLAG_HEAD, _FLAG_MIDDLE) else None)
        while next_rid is not None:
            body = self._read_fragment(next_rid)
            self._delete_fragment(next_rid)
            next_rid = (RecordId.unpack(body, 1)
                        if body[0] == _FLAG_MIDDLE else None)

    def update(self, rid: RecordId, payload: bytes) -> RecordId:
        """Replace the record at *rid*; returns its (possibly new) id.

        Unspanned records that still fit in their page keep their id;
        anything else is a delete + reinsert and the caller must store the
        returned id.
        """
        body = self._read_fragment(rid)
        if body[0] == _FLAG_WHOLE and len(payload) <= self.max_unspanned():
            with self._buffer.page(rid.page_id, dirty=True) as frame:
                page = SlottedPage(frame.data)
                try:
                    page.update(rid.slot, bytes([_FLAG_WHOLE]) + payload)
                    self._refresh_free(rid.page_id, page)
                    return rid
                except PageFullError:
                    self._refresh_free(rid.page_id, page)
        self.delete(rid)
        return self.insert(payload)

    def scan(self) -> Iterator[Tuple[RecordId, bytes]]:
        """Yield every logical record (head id, payload) in storage order."""
        for page_id in list(self._pages):
            with self._buffer.page(page_id) as frame:
                page = SlottedPage(frame.data)
                heads = []
                for slot in page.iter_slots():
                    body = page.read(slot)
                    if body[0] in (_FLAG_WHOLE, _FLAG_HEAD):
                        heads.append(RecordId(page_id, slot))
            # Read outside the pin so spanned chains can pin other pages
            # without holding this one.
            for rid in heads:
                yield rid, self.read(rid)

    def record_count(self) -> int:
        """Number of logical records (scans the segment)."""
        return sum(1 for _ in self.scan())

"""Binary row codec: typed field lists to and from byte records.

The storage system stores opaque bytes; this module is the boundary where
typed values become records.  A row format is described by a sequence of
:class:`FieldSpec` entries; :func:`encode_row` and :func:`decode_row` are
exact inverses for every value accepted by the field types.

Wire format::

    null bitmap (1 bit per field, little-endian within bytes, padded)
    field values, in spec order, nulls skipped:
        INT / TIME   signed 64-bit little-endian
        FLOAT        IEEE-754 double little-endian
        BOOL         1 byte (0 / 1)
        STRING       u32 byte length + UTF-8 bytes
        BYTES        u32 length + raw bytes
        INT_LIST     u32 count + that many signed 64-bit values

``INT_LIST`` carries reference sets (sorted atom identifiers) so link
state serializes with the same codec as attribute state.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from repro.errors import SerializationError

_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_U32 = struct.Struct("<I")


class FieldType(enum.Enum):
    """Primitive wire types understood by the row codec."""

    INT = "int"
    FLOAT = "float"
    STRING = "string"
    BOOL = "bool"
    TIME = "time"
    BYTES = "bytes"
    INT_LIST = "int_list"


@dataclass(frozen=True, slots=True)
class FieldSpec:
    """One field of a row format: a name and a wire type."""

    name: str
    type: FieldType


def _encode_value(spec: FieldSpec, value: Any, out: List[bytes]) -> None:
    kind = spec.type
    if kind in (FieldType.INT, FieldType.TIME):
        if isinstance(value, bool) or not isinstance(value, int):
            raise SerializationError(
                f"field {spec.name!r} expects int, got {type(value).__name__}")
        out.append(_I64.pack(value))
    elif kind is FieldType.FLOAT:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SerializationError(
                f"field {spec.name!r} expects float, got {type(value).__name__}")
        out.append(_F64.pack(float(value)))
    elif kind is FieldType.BOOL:
        if not isinstance(value, bool):
            raise SerializationError(
                f"field {spec.name!r} expects bool, got {type(value).__name__}")
        out.append(b"\x01" if value else b"\x00")
    elif kind is FieldType.STRING:
        if not isinstance(value, str):
            raise SerializationError(
                f"field {spec.name!r} expects str, got {type(value).__name__}")
        raw = value.encode("utf-8")
        out.append(_U32.pack(len(raw)))
        out.append(raw)
    elif kind is FieldType.BYTES:
        if not isinstance(value, (bytes, bytearray)):
            raise SerializationError(
                f"field {spec.name!r} expects bytes, got {type(value).__name__}")
        out.append(_U32.pack(len(value)))
        out.append(bytes(value))
    elif kind is FieldType.INT_LIST:
        try:
            items = [int(v) for v in value]
        except TypeError as exc:
            raise SerializationError(
                f"field {spec.name!r} expects an iterable of ints") from exc
        out.append(_U32.pack(len(items)))
        for item in items:
            out.append(_I64.pack(item))
    else:  # pragma: no cover - exhaustive enum
        raise SerializationError(f"unknown field type {kind!r}")


def encode_row(fields: Sequence[FieldSpec],
               values: Dict[str, Any]) -> bytes:
    """Encode *values* (keyed by field name) per the *fields* format.

    Missing keys and ``None`` values encode as SQL-style nulls.  Keys not
    named in the format are rejected — silently dropping data would mask
    caller bugs.
    """
    known = {spec.name for spec in fields}
    extra = set(values) - known
    if extra:
        raise SerializationError(
            f"values contain unknown fields: {sorted(extra)}")
    bitmap = bytearray((len(fields) + 7) // 8)
    body: List[bytes] = []
    for index, spec in enumerate(fields):
        value = values.get(spec.name)
        if value is None:
            bitmap[index // 8] |= 1 << (index % 8)
            continue
        _encode_value(spec, value, body)
    return bytes(bitmap) + b"".join(body)


def _decode_value(spec: FieldSpec, data: bytes, at: int) -> Tuple[Any, int]:
    kind = spec.type
    try:
        if kind in (FieldType.INT, FieldType.TIME):
            return _I64.unpack_from(data, at)[0], at + 8
        if kind is FieldType.FLOAT:
            return _F64.unpack_from(data, at)[0], at + 8
        if kind is FieldType.BOOL:
            return data[at] != 0, at + 1
        if kind is FieldType.STRING:
            (length,) = _U32.unpack_from(data, at)
            at += 4
            return data[at:at + length].decode("utf-8"), at + length
        if kind is FieldType.BYTES:
            (length,) = _U32.unpack_from(data, at)
            at += 4
            return bytes(data[at:at + length]), at + length
        if kind is FieldType.INT_LIST:
            (count,) = _U32.unpack_from(data, at)
            at += 4
            items = []
            for _ in range(count):
                items.append(_I64.unpack_from(data, at)[0])
                at += 8
            return items, at
    except (struct.error, IndexError, UnicodeDecodeError) as exc:
        raise SerializationError(
            f"corrupt record while decoding field {spec.name!r}") from exc
    raise SerializationError(f"unknown field type {kind!r}")  # pragma: no cover


def decode_row(fields: Sequence[FieldSpec], data: bytes,
               offset: int = 0) -> Tuple[Dict[str, Any], int]:
    """Decode one row; returns (values dict, offset past the row).

    Null fields decode to ``None`` so ``decode_row(f, encode_row(f, v))``
    round-trips exactly (modulo absent-vs-``None`` normalization).
    """
    bitmap_len = (len(fields) + 7) // 8
    if len(data) - offset < bitmap_len:
        raise SerializationError("record shorter than its null bitmap")
    bitmap = data[offset:offset + bitmap_len]
    at = offset + bitmap_len
    values: Dict[str, Any] = {}
    for index, spec in enumerate(fields):
        if bitmap[index // 8] & (1 << (index % 8)):
            values[spec.name] = None
            continue
        values[spec.name], at = _decode_value(spec, data, at)
    return values, at


def decode_row_exact(fields: Sequence[FieldSpec], data: bytes) -> Dict[str, Any]:
    """Decode a record that must contain exactly one row."""
    values, end = decode_row(fields, data)
    if end != len(data):
        raise SerializationError(
            f"trailing {len(data) - end} bytes after row")
    return values


def _skip_value(spec: FieldSpec, data: bytes, at: int) -> int:
    """Advance past one encoded value without materializing it."""
    kind = spec.type
    try:
        if kind in (FieldType.INT, FieldType.TIME, FieldType.FLOAT):
            return at + 8
        if kind is FieldType.BOOL:
            return at + 1
        if kind in (FieldType.STRING, FieldType.BYTES):
            (length,) = _U32.unpack_from(data, at)
            return at + 4 + length
        if kind is FieldType.INT_LIST:
            (count,) = _U32.unpack_from(data, at)
            return at + 4 + 8 * count
    except (struct.error, IndexError) as exc:
        raise SerializationError(
            f"corrupt record while skipping field {spec.name!r}") from exc
    raise SerializationError(f"unknown field type {kind!r}")  # pragma: no cover


def decode_row_partial(fields: Sequence[FieldSpec], data: bytes,
                       offset: int, wanted_flags: Sequence[bool],
                       stop_index: int) -> Dict[str, Any]:
    """Decode only the fields flagged in *wanted_flags*.

    Non-wanted fields are skipped by jumping over their encoding
    (fixed widths, or a length prefix for variable fields) — variable
    payload bytes are never touched, strings never UTF-8 decoded.  The
    scan stops after field *stop_index* (the last wanted field), so
    trailing fields cost nothing.  No trailing-bytes check: a partial
    read by definition does not reach the end of the row.
    """
    bitmap_len = (len(fields) + 7) // 8
    if len(data) - offset < bitmap_len:
        raise SerializationError("record shorter than its null bitmap")
    bitmap = data[offset:offset + bitmap_len]
    at = offset + bitmap_len
    values: Dict[str, Any] = {}
    for index, spec in enumerate(fields):
        if index > stop_index:
            break
        if bitmap[index // 8] & (1 << (index % 8)):
            if wanted_flags[index]:
                values[spec.name] = None
            continue
        if wanted_flags[index]:
            values[spec.name], at = _decode_value(spec, data, at)
        else:
            at = _skip_value(spec, data, at)
    return values

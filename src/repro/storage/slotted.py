"""Slotted-page record layout.

A slotted page stores variable-length records inside one page image::

    +--------------+-----------+----------------------+------------------+
    | reserved(16) | header(4) | slot directory -->   |  <-- record data |
    +--------------+-----------+----------------------+------------------+

* The 16 reserved bytes at the front belong to the page's owner (the heap
  keeps its chain pointer there); the slotted layout never touches them.
* The header holds the slot count and ``data_start``, the offset of the
  lowest record byte; records are packed from the page end towards the
  front, the slot directory grows from the front towards the end.
* Each 4-byte slot holds ``(offset, length)`` of one record.  Offset 0
  marks a dead slot (no record can start at offset 0 because the reserved
  area occupies it), so slot numbers — and hence record ids — stay stable
  across deletes and compaction.

Deleting or shrinking records leaves dead space between live records;
:meth:`SlottedPage.insert` compacts lazily when the contiguous gap is too
small but the total free space suffices.
"""

from __future__ import annotations

import struct
from typing import Iterator, Optional, Tuple

from repro.errors import PageError, PageFullError

RESERVED_BYTES = 16
_HEADER = struct.Struct("<HH")  # num_slots, data_start
_SLOT = struct.Struct("<HH")    # offset, length
_HEADER_AT = RESERVED_BYTES
_SLOTS_AT = RESERVED_BYTES + _HEADER.size
_DEAD = 0  # offset value marking an empty slot


class SlottedPage:
    """A view interpreting a page image (bytearray) as a slotted page.

    The view holds a reference to the underlying buffer frame data and
    mutates it in place; the caller is responsible for pinning the frame
    for the lifetime of the view and for marking it dirty.
    """

    __slots__ = ("_data",)

    def __init__(self, data: bytearray) -> None:
        self._data = data

    # -- formatting -----------------------------------------------------------

    @classmethod
    def format(cls, data: bytearray) -> "SlottedPage":
        """Initialize a zeroed page image as an empty slotted page."""
        page = cls(data)
        page._write_header(0, len(data))
        return page

    @classmethod
    def capacity(cls, page_size: int) -> int:
        """Largest record payload a fresh page of *page_size* can hold."""
        return page_size - _SLOTS_AT - _SLOT.size

    # -- header helpers ----------------------------------------------------------

    def _read_header(self) -> Tuple[int, int]:
        return _HEADER.unpack_from(self._data, _HEADER_AT)

    def _write_header(self, num_slots: int, data_start: int) -> None:
        _HEADER.pack_into(self._data, _HEADER_AT, num_slots, data_start)

    def _read_slot(self, slot: int) -> Tuple[int, int]:
        return _SLOT.unpack_from(self._data, _SLOTS_AT + slot * _SLOT.size)

    def _write_slot(self, slot: int, offset: int, length: int) -> None:
        _SLOT.pack_into(self._data, _SLOTS_AT + slot * _SLOT.size,
                        offset, length)

    # -- inspection ----------------------------------------------------------------

    @property
    def num_slots(self) -> int:
        return self._read_header()[0]

    def live_records(self) -> int:
        """Number of slots holding a record."""
        return sum(1 for _ in self.iter_slots())

    def iter_slots(self) -> Iterator[int]:
        """Yield the slot numbers of live records, ascending."""
        num_slots, _ = self._read_header()
        for slot in range(num_slots):
            offset, _length = self._read_slot(slot)
            if offset != _DEAD:
                yield slot

    def _live_bytes(self) -> int:
        total = 0
        for slot in self.iter_slots():
            _, length = self._read_slot(slot)
            total += length
        return total

    def _directory_end(self, num_slots: int) -> int:
        return _SLOTS_AT + num_slots * _SLOT.size

    def free_space(self) -> int:
        """Largest record insertable into this page.

        Counts dead space (recoverable by compaction); the slot-directory
        entry is only charged when no dead slot can be reused.
        """
        num_slots, _ = self._read_header()
        used = self._directory_end(num_slots) + self._live_bytes()
        slot_cost = 0 if self._find_free_slot() is not None else _SLOT.size
        return max(0, len(self._data) - used - slot_cost)

    def _contiguous_space(self) -> int:
        num_slots, data_start = self._read_header()
        return data_start - self._directory_end(num_slots)

    # -- mutation -------------------------------------------------------------------

    def _find_free_slot(self) -> Optional[int]:
        num_slots, _ = self._read_header()
        for slot in range(num_slots):
            offset, _ = self._read_slot(slot)
            if offset == _DEAD:
                return slot
        return None

    def insert(self, payload: bytes) -> int:
        """Store *payload* and return its slot number.

        Raises :class:`PageFullError` when the page cannot hold it even
        after compaction.
        """
        reuse = self._find_free_slot()
        slot_cost = 0 if reuse is not None else _SLOT.size
        num_slots, data_start = self._read_header()
        total_free = (len(self._data) - self._directory_end(num_slots)
                      - self._live_bytes())
        if len(payload) + slot_cost > total_free:
            raise PageFullError(
                f"record of {len(payload)} bytes does not fit "
                f"({total_free - slot_cost} free)")
        if len(payload) + slot_cost > self._contiguous_space():
            self.compact()
            num_slots, data_start = self._read_header()
        offset = data_start - len(payload)
        self._data[offset:data_start] = payload
        if reuse is not None:
            slot = reuse
        else:
            slot = num_slots
            num_slots += 1
        self._write_header(num_slots, offset)
        self._write_slot(slot, offset, len(payload))
        return slot

    def read(self, slot: int) -> bytes:
        """Return the record stored in *slot*."""
        offset, length = self._slot_or_raise(slot)
        return bytes(self._data[offset:offset + length])

    def delete(self, slot: int) -> None:
        """Remove the record in *slot*; the slot number may be reused."""
        self._slot_or_raise(slot)
        self._write_slot(slot, _DEAD, 0)

    def update(self, slot: int, payload: bytes) -> None:
        """Replace the record in *slot*, keeping its slot number.

        Shrinking updates rewrite in place; growing updates relocate the
        record within the page.  Raises :class:`PageFullError` when the
        new payload does not fit even after compaction.
        """
        offset, length = self._slot_or_raise(slot)
        if len(payload) <= length:
            self._data[offset:offset + len(payload)] = payload
            self._write_slot(slot, offset, len(payload))
            return
        # Free the old image first so its space counts as reclaimable.
        self._write_slot(slot, _DEAD, 0)
        num_slots, _ = self._read_header()
        total_free = (len(self._data) - self._directory_end(num_slots)
                      - self._live_bytes())
        if len(payload) > total_free:
            self._write_slot(slot, offset, length)  # roll back
            raise PageFullError(
                f"grown record of {len(payload)} bytes does not fit")
        if len(payload) > self._contiguous_space():
            self.compact()
        _, data_start = self._read_header()
        new_offset = data_start - len(payload)
        self._data[new_offset:data_start] = payload
        self._write_header(num_slots, new_offset)
        self._write_slot(slot, new_offset, len(payload))

    def compact(self) -> None:
        """Repack live records against the page end, squeezing out holes."""
        records = [(slot, self.read(slot)) for slot in self.iter_slots()]
        num_slots, _ = self._read_header()
        data_start = len(self._data)
        for slot, payload in records:
            data_start -= len(payload)
            self._data[data_start:data_start + len(payload)] = payload
            self._write_slot(slot, data_start, len(payload))
        self._write_header(num_slots, data_start)

    # -- internals --------------------------------------------------------------------

    def _slot_or_raise(self, slot: int) -> Tuple[int, int]:
        num_slots, _ = self._read_header()
        if not (0 <= slot < num_slots):
            raise PageError(f"slot {slot} out of range (page has {num_slots})")
        offset, length = self._read_slot(slot)
        if offset == _DEAD:
            raise PageError(f"slot {slot} holds no record")
        return offset, length

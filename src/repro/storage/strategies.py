"""Version-storage strategies: mapping atom histories onto pages.

This module is the paper's central implementation contribution: *how* the
version history of an atom is physically represented.  All strategies
implement one :class:`VersionStore` contract so the engine above is
agnostic; they differ exactly in the access-cost trade-offs the
benchmarks measure:

``CLUSTERED``
    The "temporal atom": one (possibly page-spanning) record holds the
    complete history.  One directory probe fetches everything — history
    and time-slice reads are cheap — but every update rewrites the whole
    record, so update cost grows with history length.

``CHAINED``
    One record per version; the directory points at the newest, each
    version points at its predecessor.  Updates are O(1), the current
    version is one probe away, but reaching a version *d* steps in the
    past walks *d* records (and typically *d* pages).

``SEPARATED``
    Current versions live in their own dense segment; superseded versions
    migrate to an append-only history segment; a per-atom *version
    directory* record lists the temporal envelope and address of every
    history version.  Updates are O(1), current access is one probe, and
    past access is two probes regardless of temporal distance.

A version is stored as an *envelope* (valid-time interval plus the
"still current knowledge" flag, which the store needs to answer
time-slice reads) plus an opaque payload (the engine's serialized state
— the store never interprets it).
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import StorageError, UnknownAtomError
from repro.storage.buffer import BufferManager
from repro.storage.constants import INVALID_PAGE_ID
from repro.storage.directory import AtomDirectory
from repro.storage.heap import HeapSegment, RecordId

_ENVELOPE = struct.Struct("<qqB")   # vt_start, vt_end, live flag
_U32 = struct.Struct("<I")
_NO_RECORD = RecordId(INVALID_PAGE_ID, 0)


class VersionStrategy(enum.Enum):
    """Selectable physical mapping of version histories."""

    CLUSTERED = "clustered"
    CHAINED = "chained"
    SEPARATED = "separated"


@dataclass(frozen=True, slots=True)
class StoredVersion:
    """One version as the storage layer sees it: envelope plus payload."""

    vt_start: int
    vt_end: int
    live: bool
    payload: bytes

    def contains(self, at: int) -> bool:
        return self.vt_start <= at < self.vt_end


@dataclass
class StorageStats:
    """Space accounting for one store (feeds experiment R-T1)."""

    strategy: str
    segment_pages: Dict[str, int] = field(default_factory=dict)
    directory_pages: int = 0
    page_size: int = 0

    @property
    def total_pages(self) -> int:
        return sum(self.segment_pages.values()) + self.directory_pages

    @property
    def total_bytes(self) -> int:
        return self.total_pages * self.page_size


def _pack_envelope(sv: StoredVersion) -> bytes:
    return _ENVELOPE.pack(sv.vt_start, sv.vt_end, 1 if sv.live else 0)


def _unpack_envelope(data: bytes, at: int) -> Tuple[int, int, bool, int]:
    vt_start, vt_end, live = _ENVELOPE.unpack_from(data, at)
    return vt_start, vt_end, bool(live), at + _ENVELOPE.size


class VersionStore:
    """Contract every strategy fulfils.

    Sequence numbers are assigned in append order (0 = oldest) and are
    stable for the lifetime of the atom; ``replace_version`` rewrites the
    record of an existing sequence number (the engine uses it to close
    transaction-time intervals).
    """

    strategy: VersionStrategy

    # -- mutation -----------------------------------------------------------

    def append_version(self, atom_id: int, sv: StoredVersion) -> None:
        raise NotImplementedError

    def replace_version(self, atom_id: int, seq: int,
                        sv: StoredVersion) -> None:
        raise NotImplementedError

    def pop_version(self, atom_id: int) -> None:
        """Remove the newest version (transaction rollback only).

        Removing the last remaining version removes the atom.
        """
        raise NotImplementedError

    def delete_atom(self, atom_id: int) -> None:
        raise NotImplementedError

    # -- reads ------------------------------------------------------------------

    def read_all(self, atom_id: int) -> List[StoredVersion]:
        raise NotImplementedError

    def read_at(self, atom_id: int, at: int) -> List[Tuple[int, StoredVersion]]:
        """Live versions whose valid time contains *at* (at most one when
        the engine's disjointness invariant holds)."""
        raise NotImplementedError

    def read_current(self, atom_id: int) -> Tuple[int, StoredVersion]:
        """The newest (highest-sequence) version."""
        raise NotImplementedError

    def read_live(self, atom_id: int) -> List[Tuple[int, StoredVersion]]:
        """All live versions with their sequence numbers, in seq order.

        Revision planning only touches live versions, so this is the
        write path's read: a strategy that can locate the live set
        without materialising the closed majority (SEPARATED's dense
        current segment plus envelope-only version directory) should
        override the full-history fallback.
        """
        return [(seq, sv) for seq, sv in enumerate(self.read_all(atom_id))
                if sv.live]

    def read_versions(self, atom_id: int,
                      seqs: Iterable[int]) -> Dict[int, StoredVersion]:
        """The stored records of specific sequence numbers.

        Used to capture pre-images for undo without re-reading the whole
        history; *seqs* outside the atom raise :class:`StorageError`.
        """
        wanted = set(seqs)
        versions = self.read_all(atom_id)
        missing = [seq for seq in wanted
                   if not (0 <= seq < len(versions))]
        if missing:
            raise StorageError(
                f"atom {atom_id} has no version {missing[0]}")
        return {seq: versions[seq] for seq in wanted}

    # -- batched reads ---------------------------------------------------------
    #
    # The set-oriented entry points: one call answers many atoms, so a
    # strategy can sort its directory probes and pin every touched page
    # once per batch rather than once per atom.  The generic fallbacks
    # below just loop; each strategy overrides them with a grouped plan.
    #
    # The optional *pred* is a pushed-down payload predicate (from
    # :meth:`StorageEngine.compile_pushdown`): versions failing it are
    # withheld from the caller — dropped from ``read_at_many`` hits,
    # ``None`` placeholders in ``read_all_many`` histories (sequence
    # numbers are positional, so alignment must survive the filter) —
    # and counted on the ``engine.pushdown.skipped`` counter.  The
    # engine then never decodes them and the decode cache holds only
    # survivors.

    #: Bound to the real ``engine.pushdown.skipped`` counter by stores
    #: wired to a metrics registry; ``None`` keeps the accounting a
    #: no-op for bare test stores.
    _c_pushdown_skipped = None

    def _note_skips(self, count: int = 1) -> None:
        if count and self._c_pushdown_skipped is not None:
            self._c_pushdown_skipped.inc(count)

    def read_at_many(self, atom_ids: Iterable[int], at: int,
                     pred: Optional[Callable[[bytes], bool]] = None
                     ) -> Dict[int, List[Tuple[int, StoredVersion]]]:
        """Batched :meth:`read_at`.

        Returns ``{atom_id: hits}`` with every distinct requested id
        present; atoms not in the store map to an empty hit list instead
        of raising.
        """
        result: Dict[int, List[Tuple[int, StoredVersion]]] = {}
        for atom_id in atom_ids:
            if atom_id in result:
                continue
            try:
                hits = self.read_at(atom_id, at)
            except UnknownAtomError:
                result[atom_id] = []
                continue
            if pred is not None:
                kept = [(seq, sv) for seq, sv in hits if pred(sv.payload)]
                self._note_skips(len(hits) - len(kept))
                hits = kept
            result[atom_id] = hits
        return result

    def read_all_many(self, atom_ids: Iterable[int],
                      pred: Optional[Callable[[bytes], bool]] = None
                      ) -> Dict[int, List[Optional[StoredVersion]]]:
        """Batched :meth:`read_all`; atoms not in the store are omitted."""
        result: Dict[int, List[Optional[StoredVersion]]] = {}
        for atom_id in atom_ids:
            if atom_id in result:
                continue
            try:
                versions = self.read_all(atom_id)
            except UnknownAtomError:
                continue
            if pred is not None:
                filtered: List[Optional[StoredVersion]] = [
                    sv if pred(sv.payload) else None for sv in versions]
                self._note_skips(
                    sum(1 for sv in filtered if sv is None))
                result[atom_id] = filtered
            else:
                result[atom_id] = list(versions)
        return result

    def version_count(self, atom_id: int) -> int:
        raise NotImplementedError

    def exists(self, atom_id: int) -> bool:
        raise NotImplementedError

    def atom_ids(self) -> Iterator[int]:
        raise NotImplementedError

    def scan_all(self) -> Iterator[Tuple[int, List[StoredVersion]]]:
        for atom_id in list(self.atom_ids()):
            yield atom_id, self.read_all(atom_id)

    # -- maintenance ----------------------------------------------------------------

    def stats(self) -> StorageStats:
        raise NotImplementedError

    def persist_state(self) -> Dict[str, List[int]]:
        """Page lists to store in the catalog, keyed by component name."""
        raise NotImplementedError


class _BaseStore(VersionStore):
    """Shared plumbing: directory handling and stats assembly."""

    def __init__(self, buffer: BufferManager,
                 state: Optional[Dict[str, List[int]]]) -> None:
        self._buffer = buffer
        self._c_pushdown_skipped = buffer.metrics.counter(
            "engine.pushdown.skipped")
        state = state or {}
        self._directory = AtomDirectory(
            buffer, f"{self.strategy.value}.dir",
            bucket_pages=state.get("directory") or None)

    def _entry(self, atom_id: int) -> bytes:
        payload = self._directory.get(atom_id)
        if payload is None:
            raise UnknownAtomError(f"atom {atom_id} not in store")
        return payload

    def _entries_many(self, atom_ids: Iterable[int]
                      ) -> Dict[int, Optional[bytes]]:
        """Directory payloads for a batch (missing atoms map to None)."""
        return self._directory.get_many(atom_ids)

    def exists(self, atom_id: int) -> bool:
        return atom_id in self._directory

    def atom_ids(self) -> Iterator[int]:
        return self._directory.keys()

    def _segments(self) -> Dict[str, HeapSegment]:
        raise NotImplementedError

    def stats(self) -> StorageStats:
        stats = StorageStats(strategy=self.strategy.value,
                             page_size=self._buffer.page_size)
        for name, segment in self._segments().items():
            stats.segment_pages[name] = segment.page_count()
        stats.directory_pages = len(self._directory.pages())
        return stats

    def persist_state(self) -> Dict[str, List[int]]:
        state = {name: segment.pages
                 for name, segment in self._segments().items()}
        state["directory"] = self._directory.bucket_pages
        return state


# ---------------------------------------------------------------------------
# CLUSTERED: the whole history in one spanned record ("temporal atom")
# ---------------------------------------------------------------------------


class ClusteredStore(_BaseStore):
    """All versions of an atom clustered into one logical record."""

    strategy = VersionStrategy.CLUSTERED

    _DIR_VALUE = struct.Struct("<QHI")  # head page, head slot, count

    def __init__(self, buffer: BufferManager,
                 state: Optional[Dict[str, List[int]]] = None) -> None:
        super().__init__(buffer, state)
        state = state or {}
        self._segment = HeapSegment(buffer, "clustered",
                                    state.get("clustered"))

    def _segments(self) -> Dict[str, HeapSegment]:
        return {"clustered": self._segment}

    # -- record codec -------------------------------------------------------

    @staticmethod
    def _encode(versions: List[StoredVersion]) -> bytes:
        parts = [_U32.pack(len(versions))]
        for sv in versions:
            parts.append(_pack_envelope(sv))
            parts.append(_U32.pack(len(sv.payload)))
            parts.append(sv.payload)
        return b"".join(parts)

    @staticmethod
    def _decode(record: bytes) -> List[StoredVersion]:
        (count,) = _U32.unpack_from(record, 0)
        at = _U32.size
        versions: List[StoredVersion] = []
        for _ in range(count):
            vt_start, vt_end, live, at = _unpack_envelope(record, at)
            (length,) = _U32.unpack_from(record, at)
            at += _U32.size
            versions.append(StoredVersion(vt_start, vt_end, live,
                                          record[at:at + length]))
            at += length
        return versions

    def _dir_entry(self, atom_id: int) -> Tuple[RecordId, int]:
        page, slot, count = self._DIR_VALUE.unpack(self._entry(atom_id))
        return RecordId(page, slot), count

    def _put_dir(self, atom_id: int, rid: RecordId, count: int) -> None:
        self._directory.put(
            atom_id, self._DIR_VALUE.pack(rid.page_id, rid.slot, count))

    # -- protocol --------------------------------------------------------------

    def append_version(self, atom_id: int, sv: StoredVersion) -> None:
        if self.exists(atom_id):
            rid, count = self._dir_entry(atom_id)
            versions = self._decode(self._segment.read(rid))
            versions.append(sv)
            new_rid = self._segment.update(rid, self._encode(versions))
            self._put_dir(atom_id, new_rid, count + 1)
        else:
            rid = self._segment.insert(self._encode([sv]))
            self._put_dir(atom_id, rid, 1)

    def replace_version(self, atom_id: int, seq: int,
                        sv: StoredVersion) -> None:
        rid, count = self._dir_entry(atom_id)
        if not (0 <= seq < count):
            raise StorageError(f"atom {atom_id} has no version {seq}")
        versions = self._decode(self._segment.read(rid))
        versions[seq] = sv
        new_rid = self._segment.update(rid, self._encode(versions))
        if new_rid != rid:
            self._put_dir(atom_id, new_rid, count)

    def pop_version(self, atom_id: int) -> None:
        rid, count = self._dir_entry(atom_id)
        if count <= 1:
            self.delete_atom(atom_id)
            return
        versions = self._decode(self._segment.read(rid))
        versions.pop()
        new_rid = self._segment.update(rid, self._encode(versions))
        self._put_dir(atom_id, new_rid, count - 1)

    def delete_atom(self, atom_id: int) -> None:
        rid, _ = self._dir_entry(atom_id)
        self._segment.delete(rid)
        self._directory.delete(atom_id)

    def read_all(self, atom_id: int) -> List[StoredVersion]:
        rid, _ = self._dir_entry(atom_id)
        return self._decode(self._segment.read(rid))

    def read_at(self, atom_id: int, at: int) -> List[Tuple[int, StoredVersion]]:
        return [(seq, sv) for seq, sv in enumerate(self.read_all(atom_id))
                if sv.live and sv.contains(at)]

    def read_current(self, atom_id: int) -> Tuple[int, StoredVersion]:
        versions = self.read_all(atom_id)
        return len(versions) - 1, versions[-1]

    def version_count(self, atom_id: int) -> int:
        return self._dir_entry(atom_id)[1]

    # -- batched reads ---------------------------------------------------------

    def _records_many(self, atom_ids: Iterable[int]
                      ) -> Dict[int, List[StoredVersion]]:
        """Decode the history record of every known atom in the batch.

        One grouped directory pass, then one grouped record pass —
        history records sharing a page are served under a single pin.
        """
        rid_for: Dict[int, RecordId] = {}
        for atom_id, payload in self._entries_many(atom_ids).items():
            if payload is None:
                continue
            page, slot, _count = self._DIR_VALUE.unpack(payload)
            rid_for[atom_id] = RecordId(page, slot)
        records = self._segment.read_many(rid_for.values())
        return {atom_id: self._decode(records[rid])
                for atom_id, rid in rid_for.items()}

    def read_at_many(self, atom_ids: Iterable[int], at: int,
                     pred: Optional[Callable[[bytes], bool]] = None
                     ) -> Dict[int, List[Tuple[int, StoredVersion]]]:
        histories = self._records_many(atom_ids)
        result: Dict[int, List[Tuple[int, StoredVersion]]] = {}
        for atom_id in dict.fromkeys(atom_ids):
            versions = histories.get(atom_id)
            if versions is None:
                result[atom_id] = []
                continue
            hits = [(seq, sv) for seq, sv in enumerate(versions)
                    if sv.live and sv.contains(at)]
            if pred is not None:
                kept = [(seq, sv) for seq, sv in hits if pred(sv.payload)]
                self._note_skips(len(hits) - len(kept))
                hits = kept
            result[atom_id] = hits
        return result

    def read_all_many(self, atom_ids: Iterable[int],
                      pred: Optional[Callable[[bytes], bool]] = None
                      ) -> Dict[int, List[Optional[StoredVersion]]]:
        histories = self._records_many(atom_ids)
        if pred is None:
            return histories
        result: Dict[int, List[Optional[StoredVersion]]] = {}
        for atom_id, versions in histories.items():
            filtered: List[Optional[StoredVersion]] = [
                sv if pred(sv.payload) else None for sv in versions]
            self._note_skips(sum(1 for sv in filtered if sv is None))
            result[atom_id] = filtered
        return result


# ---------------------------------------------------------------------------
# CHAINED: one record per version, linked backwards from the newest
# ---------------------------------------------------------------------------


class ChainedStore(_BaseStore):
    """Per-version records forming a backward chain from the current one."""

    strategy = VersionStrategy.CHAINED

    _DIR_VALUE = struct.Struct("<QHI")  # newest page, newest slot, count

    def __init__(self, buffer: BufferManager,
                 state: Optional[Dict[str, List[int]]] = None) -> None:
        super().__init__(buffer, state)
        state = state or {}
        self._segment = HeapSegment(buffer, "chained", state.get("chained"))

    def _segments(self) -> Dict[str, HeapSegment]:
        return {"chained": self._segment}

    # -- record codec -------------------------------------------------------

    @staticmethod
    def _encode(prev: RecordId, sv: StoredVersion) -> bytes:
        return prev.pack() + _pack_envelope(sv) + sv.payload

    @staticmethod
    def _decode(record: bytes) -> Tuple[RecordId, StoredVersion]:
        prev = RecordId.unpack(record, 0)
        at = RecordId.PACKED_SIZE
        vt_start, vt_end, live, at = _unpack_envelope(record, at)
        return prev, StoredVersion(vt_start, vt_end, live, record[at:])

    def _dir_entry(self, atom_id: int) -> Tuple[RecordId, int]:
        page, slot, count = self._DIR_VALUE.unpack(self._entry(atom_id))
        return RecordId(page, slot), count

    def _put_dir(self, atom_id: int, rid: RecordId, count: int) -> None:
        self._directory.put(
            atom_id, self._DIR_VALUE.pack(rid.page_id, rid.slot, count))

    def _walk(self, atom_id: int) -> Iterator[Tuple[int, RecordId,
                                                    RecordId, StoredVersion]]:
        """Yield (seq, rid, prev rid, version) from newest to oldest."""
        rid, count = self._dir_entry(atom_id)
        seq = count - 1
        while rid != _NO_RECORD:
            prev, sv = self._decode(self._segment.read(rid))
            yield seq, rid, prev, sv
            rid = prev
            seq -= 1

    # -- protocol --------------------------------------------------------------

    def append_version(self, atom_id: int, sv: StoredVersion) -> None:
        if self.exists(atom_id):
            prev, count = self._dir_entry(atom_id)
        else:
            prev, count = _NO_RECORD, 0
        rid = self._segment.insert(self._encode(prev, sv))
        self._put_dir(atom_id, rid, count + 1)

    def replace_version(self, atom_id: int, seq: int,
                        sv: StoredVersion) -> None:
        successor: Optional[RecordId] = None
        for cur_seq, rid, prev, _old in self._walk(atom_id):
            if cur_seq != seq:
                successor = rid
                continue
            new_rid = self._segment.update(rid, self._encode(prev, sv))
            if new_rid == rid:
                return
            # The record moved: repair the incoming pointer.
            if successor is None:
                _, count = self._dir_entry(atom_id)
                self._put_dir(atom_id, new_rid, count)
            else:
                succ_record = self._segment.read(successor)
                patched = new_rid.pack() + succ_record[RecordId.PACKED_SIZE:]
                moved = self._segment.update(successor, patched)
                if moved != successor:
                    # Same-size updates stay in place for unspanned
                    # records; a move here would require cascading
                    # repairs that this layout cannot express safely.
                    raise StorageError(
                        "chained store: pointer patch relocated a record")
            return
        raise StorageError(f"atom {atom_id} has no version {seq}")

    def pop_version(self, atom_id: int) -> None:
        rid, count = self._dir_entry(atom_id)
        if count <= 1:
            self.delete_atom(atom_id)
            return
        prev, _sv = self._decode(self._segment.read(rid))
        self._segment.delete(rid)
        self._put_dir(atom_id, prev, count - 1)

    def delete_atom(self, atom_id: int) -> None:
        rids = [rid for _, rid, _, _ in self._walk(atom_id)]
        for rid in rids:
            self._segment.delete(rid)
        self._directory.delete(atom_id)

    def read_all(self, atom_id: int) -> List[StoredVersion]:
        newest_first = [sv for _, _, _, sv in self._walk(atom_id)]
        newest_first.reverse()
        return newest_first

    def read_at(self, atom_id: int, at: int) -> List[Tuple[int, StoredVersion]]:
        # Live versions are valid-time disjoint, so the first hit is the
        # only hit and the walk can stop — the cost is proportional to the
        # temporal distance of *at* from now (the strategy's signature).
        for seq, _rid, _prev, sv in self._walk(atom_id):
            if sv.live and sv.contains(at):
                return [(seq, sv)]
        return []

    def read_current(self, atom_id: int) -> Tuple[int, StoredVersion]:
        rid, count = self._dir_entry(atom_id)
        _, sv = self._decode(self._segment.read(rid))
        return count - 1, sv

    def read_versions(self, atom_id: int,
                      seqs: Iterable[int]) -> Dict[int, StoredVersion]:
        # Walk newest-first and stop as soon as every requested seq is
        # in hand — the write path asks for recently-closed versions, so
        # the walk usually ends within a step or two of the head.
        wanted = set(seqs)
        result: Dict[int, StoredVersion] = {}
        for seq, _rid, _prev, sv in self._walk(atom_id):
            if seq in wanted:
                result[seq] = sv
                wanted.discard(seq)
                if not wanted:
                    return result
        if wanted:
            raise StorageError(
                f"atom {atom_id} has no version {min(wanted)}")
        return result

    def version_count(self, atom_id: int) -> int:
        return self._dir_entry(atom_id)[1]

    # -- batched reads ---------------------------------------------------------
    #
    # Chains are walked breadth-first across the whole batch: every round
    # reads the frontier record of *all* still-active atoms through one
    # page-grouped read_many, so chain records co-located on a page cost
    # one pin for the whole batch rather than one per atom.

    def _frontier(self, atom_ids: Iterable[int]
                  ) -> Tuple[Dict[int, Tuple[RecordId, int]], List[int]]:
        frontier: Dict[int, Tuple[RecordId, int]] = {}
        missing: List[int] = []
        for atom_id, payload in self._entries_many(atom_ids).items():
            if payload is None:
                missing.append(atom_id)
                continue
            page, slot, count = self._DIR_VALUE.unpack(payload)
            frontier[atom_id] = (RecordId(page, slot), count - 1)
        return frontier, missing

    def read_at_many(self, atom_ids: Iterable[int], at: int,
                     pred: Optional[Callable[[bytes], bool]] = None
                     ) -> Dict[int, List[Tuple[int, StoredVersion]]]:
        frontier, missing = self._frontier(atom_ids)
        result: Dict[int, List[Tuple[int, StoredVersion]]] = {
            atom_id: [] for atom_id in missing}
        while frontier:
            records = self._segment.read_many(
                rid for rid, _ in frontier.values())
            advanced: Dict[int, Tuple[RecordId, int]] = {}
            for atom_id, (rid, seq) in frontier.items():
                prev, sv = self._decode(records[rid])
                if sv.live and sv.contains(at):
                    if pred is not None and not pred(sv.payload):
                        # Live versions are valid-time disjoint, so no
                        # older version can also contain *at*: the walk
                        # stops here with an empty answer.
                        self._note_skips()
                        result[atom_id] = []
                    else:
                        result[atom_id] = [(seq, sv)]
                elif prev != _NO_RECORD:
                    advanced[atom_id] = (prev, seq - 1)
                else:
                    result[atom_id] = []
            frontier = advanced
        for atom_id in dict.fromkeys(atom_ids):
            result.setdefault(atom_id, [])
        return result

    def read_all_many(self, atom_ids: Iterable[int],
                      pred: Optional[Callable[[bytes], bool]] = None
                      ) -> Dict[int, List[Optional[StoredVersion]]]:
        frontier, _missing = self._frontier(atom_ids)
        collected: Dict[int, List[Optional[StoredVersion]]] = {
            atom_id: [] for atom_id in frontier}
        while frontier:
            records = self._segment.read_many(
                rid for rid, _ in frontier.values())
            advanced: Dict[int, Tuple[RecordId, int]] = {}
            for atom_id, (rid, seq) in frontier.items():
                prev, sv = self._decode(records[rid])
                if pred is not None and not pred(sv.payload):
                    self._note_skips()
                    collected[atom_id].append(None)  # hold the slot
                else:
                    collected[atom_id].append(sv)  # newest first
                if prev != _NO_RECORD:
                    advanced[atom_id] = (prev, seq - 1)
            frontier = advanced
        for versions in collected.values():
            versions.reverse()
        return collected


# ---------------------------------------------------------------------------
# SEPARATED: dense current segment + append-only history + version directory
# ---------------------------------------------------------------------------


class SeparatedStore(_BaseStore):
    """Current/history separation with a per-atom version directory."""

    strategy = VersionStrategy.SEPARATED

    # current RID, vdir RID, count, current envelope
    _DIR_VALUE = struct.Struct("<QHQHIqqB")
    _VDIR_ENTRY = struct.Struct("<qqBQH")  # envelope + history RID

    def __init__(self, buffer: BufferManager,
                 state: Optional[Dict[str, List[int]]] = None) -> None:
        super().__init__(buffer, state)
        state = state or {}
        self._current = HeapSegment(buffer, "current", state.get("current"))
        self._history = HeapSegment(buffer, "history", state.get("history"))
        self._vdir = HeapSegment(buffer, "vdir", state.get("vdir"))

    def _segments(self) -> Dict[str, HeapSegment]:
        return {"current": self._current, "history": self._history,
                "vdir": self._vdir}

    # -- codecs ---------------------------------------------------------------

    @staticmethod
    def _encode_version(sv: StoredVersion) -> bytes:
        return _pack_envelope(sv) + sv.payload

    @staticmethod
    def _decode_version(record: bytes) -> StoredVersion:
        vt_start, vt_end, live, at = _unpack_envelope(record, 0)
        return StoredVersion(vt_start, vt_end, live, record[at:])

    def _dir_entry(self, atom_id: int) -> Tuple[RecordId, RecordId, int,
                                                Tuple[int, int, bool]]:
        (cpage, cslot, vpage, vslot, count,
         vt_start, vt_end, live) = self._DIR_VALUE.unpack(self._entry(atom_id))
        return (RecordId(cpage, cslot), RecordId(vpage, vslot), count,
                (vt_start, vt_end, bool(live)))

    def _put_dir(self, atom_id: int, current: RecordId, vdir: RecordId,
                 count: int, envelope: Tuple[int, int, bool]) -> None:
        vt_start, vt_end, live = envelope
        self._directory.put(atom_id, self._DIR_VALUE.pack(
            current.page_id, current.slot, vdir.page_id, vdir.slot,
            count, vt_start, vt_end, 1 if live else 0))

    @classmethod
    def _parse_vdir(cls, record: bytes) -> List[Tuple[int, int, bool,
                                                      RecordId]]:
        entries = []
        for at in range(0, len(record), cls._VDIR_ENTRY.size):
            vt_start, vt_end, live, page, slot = cls._VDIR_ENTRY.unpack_from(
                record, at)
            entries.append((vt_start, vt_end, bool(live),
                            RecordId(page, slot)))
        return entries

    def _read_vdir(self, vdir_rid: RecordId) -> List[Tuple[int, int, bool,
                                                           RecordId]]:
        if vdir_rid == _NO_RECORD:
            return []
        return self._parse_vdir(self._vdir.read(vdir_rid))

    def _encode_vdir(self, entries: List[Tuple[int, int, bool,
                                               RecordId]]) -> bytes:
        return b"".join(
            self._VDIR_ENTRY.pack(vt_start, vt_end, 1 if live else 0,
                                  rid.page_id, rid.slot)
            for vt_start, vt_end, live, rid in entries)

    # -- protocol --------------------------------------------------------------

    def append_version(self, atom_id: int, sv: StoredVersion) -> None:
        envelope = (sv.vt_start, sv.vt_end, sv.live)
        if not self.exists(atom_id):
            rid = self._current.insert(self._encode_version(sv))
            self._put_dir(atom_id, rid, _NO_RECORD, 1, envelope)
            return
        current_rid, vdir_rid, count, old_env = self._dir_entry(atom_id)
        # Migrate the superseded current version into the history segment.
        old_record = self._current.read(current_rid)
        hist_rid = self._history.insert(old_record)
        self._current.delete(current_rid)
        entries = self._read_vdir(vdir_rid)
        entries.append((old_env[0], old_env[1], old_env[2], hist_rid))
        encoded = self._encode_vdir(entries)
        if vdir_rid == _NO_RECORD:
            vdir_rid = self._vdir.insert(encoded)
        else:
            vdir_rid = self._vdir.update(vdir_rid, encoded)
        new_current = self._current.insert(self._encode_version(sv))
        self._put_dir(atom_id, new_current, vdir_rid, count + 1, envelope)

    def replace_version(self, atom_id: int, seq: int,
                        sv: StoredVersion) -> None:
        current_rid, vdir_rid, count, _env = self._dir_entry(atom_id)
        if not (0 <= seq < count):
            raise StorageError(f"atom {atom_id} has no version {seq}")
        if seq == count - 1:
            new_rid = self._current.update(current_rid,
                                           self._encode_version(sv))
            self._put_dir(atom_id, new_rid, vdir_rid, count,
                          (sv.vt_start, sv.vt_end, sv.live))
            return
        entries = self._read_vdir(vdir_rid)
        _, _, _, hist_rid = entries[seq]
        new_hist = self._history.update(hist_rid, self._encode_version(sv))
        entries[seq] = (sv.vt_start, sv.vt_end, sv.live, new_hist)
        new_vdir = self._vdir.update(vdir_rid, self._encode_vdir(entries))
        if new_vdir != vdir_rid:
            self._put_dir(atom_id, current_rid, new_vdir, count, _env)

    def pop_version(self, atom_id: int) -> None:
        current_rid, vdir_rid, count, _env = self._dir_entry(atom_id)
        if count <= 1:
            self.delete_atom(atom_id)
            return
        # The previous version migrates back from history to current.
        self._current.delete(current_rid)
        entries = self._read_vdir(vdir_rid)
        vt_start, vt_end, live, hist_rid = entries.pop()
        record = self._history.read(hist_rid)
        self._history.delete(hist_rid)
        restored = self._current.insert(record)
        if entries:
            vdir_rid = self._vdir.update(vdir_rid, self._encode_vdir(entries))
        else:
            self._vdir.delete(vdir_rid)
            vdir_rid = _NO_RECORD
        self._put_dir(atom_id, restored, vdir_rid, count - 1,
                      (vt_start, vt_end, live))

    def delete_atom(self, atom_id: int) -> None:
        current_rid, vdir_rid, _count, _env = self._dir_entry(atom_id)
        for _, _, _, hist_rid in self._read_vdir(vdir_rid):
            self._history.delete(hist_rid)
        if vdir_rid != _NO_RECORD:
            self._vdir.delete(vdir_rid)
        self._current.delete(current_rid)
        self._directory.delete(atom_id)

    def read_all(self, atom_id: int) -> List[StoredVersion]:
        current_rid, vdir_rid, _count, _env = self._dir_entry(atom_id)
        versions = [self._decode_version(self._history.read(rid))
                    for _, _, _, rid in self._read_vdir(vdir_rid)]
        versions.append(self._decode_version(self._current.read(current_rid)))
        return versions

    def read_at(self, atom_id: int, at: int) -> List[Tuple[int, StoredVersion]]:
        current_rid, vdir_rid, count, env = self._dir_entry(atom_id)
        vt_start, vt_end, live = env
        if live and vt_start <= at < vt_end:
            # Answered from the directory entry alone: one record fetch.
            return [(count - 1,
                     self._decode_version(self._current.read(current_rid)))]
        hits: List[Tuple[int, StoredVersion]] = []
        for seq, (e_start, e_end, e_live, rid) in enumerate(
                self._read_vdir(vdir_rid)):
            if e_live and e_start <= at < e_end:
                hits.append((seq,
                             self._decode_version(self._history.read(rid))))
        return hits

    def read_current(self, atom_id: int) -> Tuple[int, StoredVersion]:
        current_rid, _vdir, count, _env = self._dir_entry(atom_id)
        return count - 1, self._decode_version(self._current.read(current_rid))

    def read_live(self, atom_id: int) -> List[Tuple[int, StoredVersion]]:
        # Envelope-only vdir scan selects the live history seqs, then
        # one grouped read fetches exactly those payloads — the closed
        # majority of a long history is never materialised.
        current_rid, vdir_rid, count, env = self._dir_entry(atom_id)
        hits: List[Tuple[int, StoredVersion]] = []
        if vdir_rid != _NO_RECORD:
            fetch = [(seq, rid) for seq, (_s, _e, live, rid)
                     in enumerate(self._read_vdir(vdir_rid)) if live]
            records = self._history.read_many(rid for _, rid in fetch)
            hits = [(seq, self._decode_version(records[rid]))
                    for seq, rid in fetch]
        if env[2]:
            hits.append((count - 1,
                         self._decode_version(self._current.read(current_rid))))
        return hits

    def read_versions(self, atom_id: int,
                      seqs: Iterable[int]) -> Dict[int, StoredVersion]:
        current_rid, vdir_rid, count, _env = self._dir_entry(atom_id)
        wanted = set(seqs)
        out_of_range = [seq for seq in wanted if not (0 <= seq < count)]
        if out_of_range:
            raise StorageError(
                f"atom {atom_id} has no version {out_of_range[0]}")
        result: Dict[int, StoredVersion] = {}
        if count - 1 in wanted:
            result[count - 1] = self._decode_version(
                self._current.read(current_rid))
            wanted.discard(count - 1)
        if wanted:
            entries = self._read_vdir(vdir_rid)
            fetch = {seq: entries[seq][3] for seq in wanted}
            records = self._history.read_many(fetch.values())
            for seq, rid in fetch.items():
                result[seq] = self._decode_version(records[rid])
        return result

    def version_count(self, atom_id: int) -> int:
        return self._dir_entry(atom_id)[2]

    # -- batched reads ---------------------------------------------------------
    #
    # A batch runs in waves — directory, then current segment, then
    # version directories, then history records — each wave a single
    # page-grouped read, so the dense current segment in particular is
    # pinned once per page per batch (the strategy's best case).

    def read_at_many(self, atom_ids: Iterable[int], at: int,
                     pred: Optional[Callable[[bytes], bool]] = None
                     ) -> Dict[int, List[Tuple[int, StoredVersion]]]:
        result: Dict[int, List[Tuple[int, StoredVersion]]] = {}
        current_fetch: Dict[int, Tuple[RecordId, int]] = {}
        vdir_fetch: Dict[int, RecordId] = {}
        for atom_id, payload in self._entries_many(atom_ids).items():
            if payload is None:
                result[atom_id] = []
                continue
            (cpage, cslot, vpage, vslot, count,
             vt_start, vt_end, live) = self._DIR_VALUE.unpack(payload)
            if live and vt_start <= at < vt_end:
                current_fetch[atom_id] = (RecordId(cpage, cslot), count - 1)
            else:
                vdir_fetch[atom_id] = RecordId(vpage, vslot)
        current_records = self._current.read_many(
            rid for rid, _ in current_fetch.values())
        for atom_id, (rid, seq) in current_fetch.items():
            sv = self._decode_version(current_records[rid])
            if pred is not None and not pred(sv.payload):
                self._note_skips()
                result[atom_id] = []
            else:
                result[atom_id] = [(seq, sv)]
        vdir_records = self._vdir.read_many(
            rid for rid in vdir_fetch.values() if rid != _NO_RECORD)
        hist_fetch: List[Tuple[int, int, RecordId]] = []
        for atom_id, vdir_rid in vdir_fetch.items():
            result[atom_id] = []
            if vdir_rid == _NO_RECORD:
                continue
            for seq, (e_start, e_end, e_live, rid) in enumerate(
                    self._parse_vdir(vdir_records[vdir_rid])):
                if e_live and e_start <= at < e_end:
                    hist_fetch.append((atom_id, seq, rid))
        hist_records = self._history.read_many(
            rid for _, _, rid in hist_fetch)
        for atom_id, seq, rid in hist_fetch:
            sv = self._decode_version(hist_records[rid])
            if pred is not None and not pred(sv.payload):
                self._note_skips()
                continue
            result[atom_id].append((seq, sv))
        return result

    def read_all_many(self, atom_ids: Iterable[int],
                      pred: Optional[Callable[[bytes], bool]] = None
                      ) -> Dict[int, List[Optional[StoredVersion]]]:
        current_fetch: Dict[int, RecordId] = {}
        vdir_fetch: Dict[int, RecordId] = {}
        for atom_id, payload in self._entries_many(atom_ids).items():
            if payload is None:
                continue
            (cpage, cslot, vpage, vslot, _count,
             _vs, _ve, _live) = self._DIR_VALUE.unpack(payload)
            current_fetch[atom_id] = RecordId(cpage, cslot)
            vdir_fetch[atom_id] = RecordId(vpage, vslot)
        vdir_records = self._vdir.read_many(
            rid for rid in vdir_fetch.values() if rid != _NO_RECORD)
        hist_order: Dict[int, List[RecordId]] = {}
        for atom_id, vdir_rid in vdir_fetch.items():
            hist_order[atom_id] = (
                [] if vdir_rid == _NO_RECORD else
                [rid for _, _, _, rid
                 in self._parse_vdir(vdir_records[vdir_rid])])
        hist_records = self._history.read_many(
            rid for rids in hist_order.values() for rid in rids)
        current_records = self._current.read_many(current_fetch.values())
        result: Dict[int, List[Optional[StoredVersion]]] = {}
        for atom_id, current_rid in current_fetch.items():
            versions = [self._decode_version(hist_records[rid])
                        for rid in hist_order[atom_id]]
            versions.append(
                self._decode_version(current_records[current_rid]))
            if pred is not None:
                filtered: List[Optional[StoredVersion]] = [
                    sv if pred(sv.payload) else None for sv in versions]
                self._note_skips(
                    sum(1 for sv in filtered if sv is None))
                result[atom_id] = filtered
            else:
                result[atom_id] = versions
        return result


_STORE_CLASSES = {
    VersionStrategy.CLUSTERED: ClusteredStore,
    VersionStrategy.CHAINED: ChainedStore,
    VersionStrategy.SEPARATED: SeparatedStore,
}


def open_version_store(strategy: VersionStrategy, buffer: BufferManager,
                       state: Optional[Dict[str, List[int]]] = None
                       ) -> VersionStore:
    """Instantiate the store for *strategy*, resuming from catalog *state*."""
    try:
        cls = _STORE_CLASSES[strategy]
    except KeyError:
        raise StorageError(f"unknown version strategy {strategy!r}") from None
    return cls(buffer, state)

"""Time algebra for the temporal complex-object data model.

The model uses a discrete, linearly ordered time domain of integer *chronons*.
Special values mark the open past (:data:`TMIN`) and the open future
(:data:`FOREVER`, the SIGMOD-era "until changed" / ``NOW``-bound).  Valid-time
and transaction-time periods are half-open intervals ``[start, end)`` over
this domain; sets of disjoint intervals form *temporal elements*.

Public surface:

* :class:`~repro.temporal.timestamp.Timestamp` helpers and the constants
  :data:`TMIN`, :data:`FOREVER`.
* :class:`~repro.temporal.interval.Interval` — half-open period algebra.
* :class:`~repro.temporal.element.TemporalElement` — canonical disjoint
  interval sets with union/intersection/difference.
* :mod:`~repro.temporal.allen` — Allen's thirteen interval relations.
* :class:`~repro.temporal.clock.TransactionClock` — monotonic logical clock
  used to assign transaction times.
"""

from repro.temporal.allen import AllenRelation, allen_relation
from repro.temporal.clock import TransactionClock
from repro.temporal.element import TemporalElement
from repro.temporal.interval import Interval
from repro.temporal.timestamp import (
    FOREVER,
    TMIN,
    Timestamp,
    format_timestamp,
    is_valid_timestamp,
    validate_timestamp,
)

__all__ = [
    "AllenRelation",
    "allen_relation",
    "TransactionClock",
    "TemporalElement",
    "Interval",
    "FOREVER",
    "TMIN",
    "Timestamp",
    "format_timestamp",
    "is_valid_timestamp",
    "validate_timestamp",
]

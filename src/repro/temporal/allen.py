"""Allen's thirteen qualitative relations between half-open intervals.

The temporal query language exposes these through predicates such as
``OVERLAPS`` and ``DURING``; internally the molecule builder and the tests
use :func:`allen_relation` as the single source of truth for how two
intervals relate.
"""

from __future__ import annotations

import enum

from repro.temporal.interval import Interval


class AllenRelation(enum.Enum):
    """The thirteen mutually exclusive, jointly exhaustive relations."""

    BEFORE = "before"
    MEETS = "meets"
    OVERLAPS = "overlaps"
    STARTS = "starts"
    DURING = "during"
    FINISHES = "finishes"
    EQUALS = "equals"
    FINISHED_BY = "finished_by"
    CONTAINS = "contains"
    STARTED_BY = "started_by"
    OVERLAPPED_BY = "overlapped_by"
    MET_BY = "met_by"
    AFTER = "after"

    @property
    def inverse(self) -> "AllenRelation":
        """The relation that holds with the operands swapped."""
        return _INVERSES[self]


_INVERSES = {
    AllenRelation.BEFORE: AllenRelation.AFTER,
    AllenRelation.MEETS: AllenRelation.MET_BY,
    AllenRelation.OVERLAPS: AllenRelation.OVERLAPPED_BY,
    AllenRelation.STARTS: AllenRelation.STARTED_BY,
    AllenRelation.DURING: AllenRelation.CONTAINS,
    AllenRelation.FINISHES: AllenRelation.FINISHED_BY,
    AllenRelation.EQUALS: AllenRelation.EQUALS,
    AllenRelation.FINISHED_BY: AllenRelation.FINISHES,
    AllenRelation.CONTAINS: AllenRelation.DURING,
    AllenRelation.STARTED_BY: AllenRelation.STARTS,
    AllenRelation.OVERLAPPED_BY: AllenRelation.OVERLAPS,
    AllenRelation.MET_BY: AllenRelation.MEETS,
    AllenRelation.AFTER: AllenRelation.BEFORE,
}


def allen_relation(a: Interval, b: Interval) -> AllenRelation:
    """Classify how interval *a* relates to interval *b*.

    Exactly one of the thirteen relations holds for any pair of non-empty
    intervals; the classification is by case analysis on the order of the
    four endpoints.
    """
    if a.end < b.start:
        return AllenRelation.BEFORE
    if a.end == b.start:
        return AllenRelation.MEETS
    if b.end < a.start:
        return AllenRelation.AFTER
    if b.end == a.start:
        return AllenRelation.MET_BY

    # From here on the intervals share at least one chronon.
    if a.start == b.start:
        if a.end == b.end:
            return AllenRelation.EQUALS
        if a.end < b.end:
            return AllenRelation.STARTS
        return AllenRelation.STARTED_BY
    if a.end == b.end:
        if a.start > b.start:
            return AllenRelation.FINISHES
        return AllenRelation.FINISHED_BY
    if a.start > b.start and a.end < b.end:
        return AllenRelation.DURING
    if b.start > a.start and b.end < a.end:
        return AllenRelation.CONTAINS
    if a.start < b.start:
        return AllenRelation.OVERLAPS
    return AllenRelation.OVERLAPPED_BY

"""Monotonic logical clock for transaction-time assignment.

Transaction time in the model is *system time*: the engine, not the user,
stamps every committed change with the moment the database learned about it.
A logical (tick-based) clock keeps runs deterministic and testable; wall
clocks would make transaction times irreproducible across runs.

The clock is thread-safe: concurrent transactions may commit from different
threads and each must observe a strictly increasing transaction time.
"""

from __future__ import annotations

import threading

from repro.errors import InvalidTimestampError
from repro.temporal.timestamp import MAX_CHRONON, MIN_CHRONON, Timestamp


class TransactionClock:
    """Strictly monotonic source of transaction-time chronons."""

    def __init__(self, start: Timestamp = 0) -> None:
        if not (MIN_CHRONON <= start <= MAX_CHRONON):
            raise InvalidTimestampError(
                f"clock start {start!r} outside the chronon domain")
        self._lock = threading.Lock()
        self._next = start

    def now(self) -> Timestamp:
        """The transaction time the next tick would return (peek)."""
        with self._lock:
            return self._next

    def tick(self) -> Timestamp:
        """Return a fresh transaction time, strictly greater than all prior."""
        with self._lock:
            value = self._next
            if value >= MAX_CHRONON:
                raise InvalidTimestampError("transaction clock exhausted")
            self._next = value + 1
            return value

    def advance_to(self, at_least: Timestamp) -> None:
        """Ensure future ticks return at least *at_least*.

        Used during recovery: after replaying the log, the clock must move
        past every transaction time already spent, or new commits would
        reuse old transaction times and corrupt ``AS OF`` semantics.
        """
        if not (MIN_CHRONON <= at_least <= MAX_CHRONON):
            raise InvalidTimestampError(
                f"cannot advance clock to {at_least!r}")
        with self._lock:
            if at_least > self._next:
                self._next = at_least

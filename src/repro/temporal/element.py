"""Temporal elements: canonical sets of disjoint, non-adjacent intervals.

A *temporal element* is the closure of intervals under set operations and is
the natural answer type for questions such as "during which times did this
molecule exist?".  The representation is canonical — intervals are sorted,
pairwise disjoint, and never adjacent — so two elements are equal exactly
when they denote the same set of chronons.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Tuple

from repro.temporal.interval import Interval
from repro.temporal.timestamp import Timestamp


def _coalesce(intervals: Iterable[Interval]) -> Tuple[Interval, ...]:
    """Sort and merge intervals into canonical form."""
    merged: list[Interval] = []
    for interval in sorted(intervals):
        if merged and merged[-1].is_adjacent_or_overlapping(interval):
            merged[-1] = merged[-1].union(interval)
        else:
            merged.append(interval)
    return tuple(merged)


class TemporalElement:
    """An immutable, canonical union of half-open intervals."""

    __slots__ = ("_intervals",)

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        self._intervals: Tuple[Interval, ...] = _coalesce(intervals)

    # -- constructors --------------------------------------------------------

    @classmethod
    def empty(cls) -> "TemporalElement":
        """The empty set of chronons."""
        return cls(())

    @classmethod
    def of(cls, *intervals: Interval) -> "TemporalElement":
        """Element covering exactly the given intervals."""
        return cls(intervals)

    @classmethod
    def always(cls) -> "TemporalElement":
        """Element covering the whole time line."""
        return cls((Interval.always(),))

    # -- structure -------------------------------------------------------------

    @property
    def intervals(self) -> Sequence[Interval]:
        """The canonical (sorted, disjoint, non-adjacent) intervals."""
        return self._intervals

    @property
    def is_empty(self) -> bool:
        return not self._intervals

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._intervals)

    def __len__(self) -> int:
        return len(self._intervals)

    def __bool__(self) -> bool:
        return bool(self._intervals)

    def duration(self) -> Timestamp:
        """Total number of chronons covered."""
        return sum(interval.duration() for interval in self._intervals)

    # -- predicates --------------------------------------------------------------

    def contains(self, at: Timestamp) -> bool:
        """True when the instant *at* lies in the element.

        Binary search over the canonical intervals.
        """
        lo, hi = 0, len(self._intervals) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            interval = self._intervals[mid]
            if interval.contains(at):
                return True
            if interval.precedes(at) or interval.end <= at:
                lo = mid + 1
            else:
                hi = mid - 1
        return False

    def covers(self, other: "TemporalElement") -> bool:
        """True when every chronon of *other* lies in this element."""
        return other.difference(self).is_empty

    # -- set algebra -----------------------------------------------------------

    def union(self, other: "TemporalElement") -> "TemporalElement":
        return TemporalElement((*self._intervals, *other._intervals))

    def intersect(self, other: "TemporalElement") -> "TemporalElement":
        """Pairwise sweep intersection of two canonical interval runs."""
        result: list[Interval] = []
        i = j = 0
        mine, theirs = self._intervals, other._intervals
        while i < len(mine) and j < len(theirs):
            common = mine[i].intersect(theirs[j])
            if common is not None:
                result.append(common)
            if mine[i].end <= theirs[j].end:
                i += 1
            else:
                j += 1
        return TemporalElement(result)

    def difference(self, other: "TemporalElement") -> "TemporalElement":
        """All chronons of this element not covered by *other*."""
        result: list[Interval] = []
        for interval in self._intervals:
            pieces = [interval]
            for hole in other._intervals:
                if hole.start >= interval.end:
                    break
                next_pieces: list[Interval] = []
                for piece in pieces:
                    next_pieces.extend(piece.difference(hole))
                pieces = next_pieces
                if not pieces:
                    break
            result.extend(pieces)
        return TemporalElement(result)

    # -- identity ----------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TemporalElement):
            return NotImplemented
        return self._intervals == other._intervals

    def __hash__(self) -> int:
        return hash(self._intervals)

    def __repr__(self) -> str:
        body = ", ".join(str(interval) for interval in self._intervals)
        return f"TemporalElement({{{body}}})"

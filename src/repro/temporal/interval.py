"""Half-open time intervals ``[start, end)``.

Intervals are the carrier of both valid time and transaction time in the
temporal complex-object model.  They are immutable value objects with a
total set-algebra surface (overlap, intersection, union of adjacent
intervals, difference) plus the predicates the molecule builder needs
(containment of an instant, relative position).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import InvalidIntervalError
from repro.temporal.timestamp import (
    FOREVER,
    TMIN,
    Timestamp,
    format_timestamp,
    validate_timestamp,
)


@dataclass(frozen=True, slots=True, order=True)
class Interval:
    """A non-empty half-open interval ``[start, end)`` over chronons.

    Ordering is lexicographic on ``(start, end)``, which makes sorted runs
    of intervals convenient for sweep algorithms.
    """

    start: Timestamp
    end: Timestamp

    def __post_init__(self) -> None:
        validate_timestamp(self.start, role="start", allow_forever=False)
        validate_timestamp(self.end, role="end", allow_tmin=False)
        if self.start >= self.end:
            raise InvalidIntervalError(
                f"interval start must precede end, got "
                f"[{format_timestamp(self.start)}, {format_timestamp(self.end)})")

    # -- constructors -----------------------------------------------------

    @classmethod
    def instant(cls, at: Timestamp) -> "Interval":
        """The single-chronon interval ``[at, at + 1)``."""
        return cls(at, at + 1)

    @classmethod
    def from_onwards(cls, start: Timestamp) -> "Interval":
        """The right-open interval ``[start, FOREVER)``."""
        return cls(start, FOREVER)

    @classmethod
    def always(cls) -> "Interval":
        """The whole time line ``[TMIN, FOREVER)``."""
        return cls(TMIN, FOREVER)

    # -- predicates --------------------------------------------------------

    @property
    def is_open_ended(self) -> bool:
        """True when the interval extends to ``FOREVER`` ("until changed")."""
        return self.end == FOREVER

    def contains(self, at: Timestamp) -> bool:
        """True when the instant *at* lies inside the interval."""
        return self.start <= at < self.end

    def contains_interval(self, other: "Interval") -> bool:
        """True when *other* lies entirely inside this interval."""
        return self.start <= other.start and other.end <= self.end

    def overlaps(self, other: "Interval") -> bool:
        """True when the two intervals share at least one chronon."""
        return self.start < other.end and other.start < self.end

    def meets(self, other: "Interval") -> bool:
        """True when this interval ends exactly where *other* starts."""
        return self.end == other.start

    def is_adjacent_or_overlapping(self, other: "Interval") -> bool:
        """True when union with *other* forms one interval."""
        return self.start <= other.end and other.start <= self.end

    def precedes(self, at: Timestamp) -> bool:
        """True when the whole interval lies strictly before instant *at*."""
        return self.end <= at

    def follows(self, at: Timestamp) -> bool:
        """True when the whole interval lies strictly after instant *at*."""
        return at < self.start

    # -- algebra -----------------------------------------------------------

    def duration(self) -> Timestamp:
        """Number of chronons covered (a huge number for open-ended spans)."""
        return self.end - self.start

    def intersect(self, other: "Interval") -> Optional["Interval"]:
        """The common sub-interval, or ``None`` when disjoint."""
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        if start >= end:
            return None
        return Interval(start, end)

    def union(self, other: "Interval") -> "Interval":
        """The single interval covering both operands.

        Raises :class:`InvalidIntervalError` when the operands are neither
        overlapping nor adjacent (their union would not be an interval).
        """
        if not self.is_adjacent_or_overlapping(other):
            raise InvalidIntervalError(
                f"union of disjoint intervals {self} and {other} "
                f"is not an interval")
        return Interval(min(self.start, other.start), max(self.end, other.end))

    def difference(self, other: "Interval") -> Iterator["Interval"]:
        """Yield the 0, 1, or 2 intervals of ``self minus other``."""
        if not self.overlaps(other):
            yield self
            return
        if self.start < other.start:
            yield Interval(self.start, other.start)
        if other.end < self.end:
            yield Interval(other.end, self.end)

    def clamp_end(self, end: Timestamp) -> Optional["Interval"]:
        """This interval truncated to end no later than *end*.

        Returns ``None`` when nothing of the interval survives.
        """
        if end <= self.start:
            return None
        return Interval(self.start, min(self.end, end))

    def clamp_start(self, start: Timestamp) -> Optional["Interval"]:
        """This interval truncated to start no earlier than *start*.

        Returns ``None`` when nothing of the interval survives.
        """
        if start >= self.end:
            return None
        return Interval(max(self.start, start), self.end)

    # -- presentation --------------------------------------------------------

    def __str__(self) -> str:
        return f"[{format_timestamp(self.start)}, {format_timestamp(self.end)})"

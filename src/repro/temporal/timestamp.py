"""Discrete chronon timestamps.

The time domain is the set of integers representable in a signed 64-bit
word, with two distinguished sentinels:

* :data:`TMIN` — the beginning of time (used as the open lower bound of
  history queries).
* :data:`FOREVER` — the open upper bound, standing for "until changed".
  A version whose valid-time interval ends at ``FOREVER`` is valid *now*
  and into the indefinite future; a version whose transaction-time interval
  ends at ``FOREVER`` belongs to the current knowledge state.

Regular chronons must lie strictly between the sentinels so that every
half-open interval ``[start, end)`` with ``start < end`` is well formed.
Timestamps are plain ``int`` at runtime (the :data:`Timestamp` alias exists
for signatures); this module centralizes validation and formatting.
"""

from __future__ import annotations

from typing import TypeAlias

from repro.errors import InvalidTimestampError

#: Runtime representation of a chronon.
Timestamp: TypeAlias = int

#: The beginning of time.  Valid only as an interval start.
TMIN: Timestamp = -(2**62)

#: "Until changed": the open end of time.  Valid only as an interval end.
FOREVER: Timestamp = 2**62

#: Smallest chronon usable as a concrete event time.
MIN_CHRONON: Timestamp = TMIN + 1

#: Largest chronon usable as a concrete event time.
MAX_CHRONON: Timestamp = FOREVER - 1


def is_valid_timestamp(value: object, *, allow_tmin: bool = True,
                       allow_forever: bool = True) -> bool:
    """Return ``True`` when *value* is a chronon in the representable domain.

    Booleans are rejected even though ``bool`` subclasses ``int``; a
    timestamp of ``True`` is always a bug in calling code.
    """
    if isinstance(value, bool) or not isinstance(value, int):
        return False
    low = TMIN if allow_tmin else MIN_CHRONON
    high = FOREVER if allow_forever else MAX_CHRONON
    return low <= value <= high


def validate_timestamp(value: object, *, role: str = "timestamp",
                       allow_tmin: bool = True,
                       allow_forever: bool = True) -> Timestamp:
    """Return *value* as a chronon or raise :class:`InvalidTimestampError`.

    ``role`` names the parameter being validated so error messages point at
    the offending argument (e.g. ``"valid_from"``).
    """
    if not is_valid_timestamp(value, allow_tmin=allow_tmin,
                              allow_forever=allow_forever):
        raise InvalidTimestampError(
            f"{role} must be an integer chronon in "
            f"[{TMIN if allow_tmin else MIN_CHRONON}, "
            f"{FOREVER if allow_forever else MAX_CHRONON}], got {value!r}")
    return value  # type: ignore[return-value]


def format_timestamp(value: Timestamp) -> str:
    """Render a chronon for humans: sentinels by name, others as numbers."""
    if value == TMIN:
        return "TMIN"
    if value == FOREVER:
        return "FOREVER"
    return str(value)

"""Test support: the in-memory reference oracle.

:class:`~repro.testing.reference.ReferenceDatabase` implements the full
temporal semantics directly on Python dictionaries, reusing the *same*
pure history algebra (:mod:`repro.core.history`) the engine compiles to
storage operations.  Differential tests drive the engine and the oracle
with identical operation sequences and require identical answers.
"""

from repro.testing.reference import ReferenceDatabase

__all__ = ["ReferenceDatabase"]

"""The in-memory reference oracle for differential testing.

The oracle keeps every atom's history as a plain Python list of
:class:`~repro.core.version.Version` objects and applies the same
:class:`~repro.core.history.HistoryPlan` deltas the engine maps onto its
version store.  It implements the builder's
:class:`~repro.core.builder.VersionReader` protocol, so molecule
construction — including interval queries — runs the identical algorithm
over oracle data.

Because the plan computation is shared, the oracle does *not* retest the
history algebra; what differential tests validate is everything below
it: codecs, version stores, directories, indexes, buffering, and
recovery.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core import history as hist
from repro.core.builder import MoleculeBuilder
from repro.core.molecule import Molecule, MoleculeType
from repro.core.schema import Schema
from repro.core.version import IN, OUT, Version, ref_key
from repro.errors import TemporalUpdateError, UnknownAtomError
from repro.temporal import FOREVER, Interval, Timestamp


class ReferenceDatabase:
    """Dictionary-backed implementation of the temporal data model."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._histories: Dict[int, List[Version]] = {}
        self._types: Dict[int, str] = {}
        self._next_atom_id = 1
        self._clock = 0
        self.builder = MoleculeBuilder(self)

    # -- clock ----------------------------------------------------------------

    def tick(self) -> Timestamp:
        """One transaction time per mutation call (auto-commit model)."""
        tt = self._clock
        self._clock += 1
        return tt

    @property
    def now(self) -> Timestamp:
        return self._clock

    # -- VersionReader protocol ---------------------------------------------------

    def atom_type_name(self, atom_id: int) -> str:
        try:
            return self._types[atom_id]
        except KeyError:
            raise UnknownAtomError(f"no atom {atom_id}") from None

    def version_at(self, atom_id: int, at: Timestamp,
                   tt: Optional[Timestamp] = None) -> Optional[Version]:
        versions = self._histories.get(atom_id)
        if not versions:
            return None
        return hist.version_at(versions, at, tt)

    def version_at_many(self, atom_ids, at: Timestamp,
                        tt: Optional[Timestamp] = None
                        ) -> Dict[int, Optional[Version]]:
        """Batched ``version_at`` (engine-compatible, trivially looped)."""
        return {atom_id: self.version_at(atom_id, at, tt)
                for atom_id in dict.fromkeys(atom_ids)}

    def all_versions(self, atom_id: int) -> List[Version]:
        if atom_id not in self._histories:
            raise UnknownAtomError(f"no atom {atom_id}")
        return list(self._histories[atom_id])

    def all_versions_many(self, atom_ids) -> Dict[int, List[Version]]:
        """Batched ``all_versions``; unknown atoms are omitted."""
        return {atom_id: list(self._histories[atom_id])
                for atom_id in dict.fromkeys(atom_ids)
                if atom_id in self._histories}

    def atom_exists(self, atom_id: int) -> bool:
        return atom_id in self._histories

    def atoms_of_type(self, type_name: str) -> List[int]:
        return sorted(atom_id for atom_id, tn in self._types.items()
                      if tn == type_name)

    # -- plan application -----------------------------------------------------------

    def _apply(self, atom_id: int, plan: hist.HistoryPlan) -> None:
        versions = self._histories.setdefault(atom_id, [])
        for seq, replacement in plan.closures + plan.rewrites:
            versions[seq] = replacement
        versions.extend(plan.appends)
        hist.check_history(versions)  # the oracle self-checks every step

    # -- mutations ----------------------------------------------------------------------

    def insert(self, type_name: str, values: Dict[str, Any],
               valid_from: Timestamp, valid_to: Timestamp = FOREVER,
               tt: Optional[Timestamp] = None,
               atom_id: Optional[int] = None) -> int:
        atom_type = self.schema.atom_type(type_name)
        checked = atom_type.validate_values(values)
        if atom_id is None:
            atom_id = self._next_atom_id
            self._next_atom_id += 1
        else:
            self._next_atom_id = max(self._next_atom_id, atom_id + 1)
        if atom_id in self._types and self._types[atom_id] != type_name:
            raise TemporalUpdateError(
                f"atom {atom_id} already exists with a different type")
        plan = hist.insert_plan(checked, {}, Interval(valid_from, valid_to),
                                self.tick() if tt is None else tt,
                                self._histories.get(atom_id, ()))
        self._types[atom_id] = type_name
        self._apply(atom_id, plan)
        return atom_id

    def update(self, atom_id: int, changes: Dict[str, Any],
               valid_from: Timestamp, valid_to: Timestamp = FOREVER,
               tt: Optional[Timestamp] = None) -> None:
        type_name = self.atom_type_name(atom_id)
        checked = self.schema.atom_type(type_name).validate_values(
            changes, partial=True)

        def transform(version: Version) -> Version:
            merged = dict(version.values)
            merged.update(checked)
            return version.with_state(merged, version.refs)

        plan = hist.revise(self.all_versions(atom_id),
                           Interval(valid_from, valid_to),
                           self.tick() if tt is None else tt, transform)
        self._apply(atom_id, plan)

    def delete(self, atom_id: int, valid_from: Timestamp,
               valid_to: Timestamp = FOREVER,
               tt: Optional[Timestamp] = None) -> None:
        self.atom_type_name(atom_id)
        plan = hist.revise(self.all_versions(atom_id),
                           Interval(valid_from, valid_to),
                           self.tick() if tt is None else tt,
                           lambda version: None)
        self._apply(atom_id, plan)

    def correct(self, atom_id: int, window_start: Timestamp,
                window_end: Timestamp, changes: Dict[str, Any],
                tt: Optional[Timestamp] = None) -> None:
        type_name = self.atom_type_name(atom_id)
        checked = self.schema.atom_type(type_name).validate_values(
            changes, partial=True)

        def transform(version: Version) -> Version:
            merged = dict(version.values)
            merged.update(checked)
            return version.with_state(merged, version.refs)

        plan = hist.revise(self.all_versions(atom_id),
                           Interval(window_start, window_end),
                           self.tick() if tt is None else tt, transform)
        self._apply(atom_id, plan)

    def _ref_plan(self, atom_id: int, key: str, partner: int, add: bool,
                  window: Interval, tt: Timestamp
                  ) -> tuple:
        """Plan the reference change without applying (mirrors the engine
        so differential tests compare error paths AND partial-failure
        behaviour).  Returns (plan, changed)."""
        changed = False

        def transform(version: Version) -> Version:
            nonlocal changed
            refs = {k: set(v) for k, v in version.refs.items()}
            members = refs.setdefault(key, set())
            if add and partner not in members:
                members.add(partner)
                changed = True
            elif not add and partner in members:
                members.discard(partner)
                changed = True
            return version.with_state(
                version.values,
                {k: frozenset(v) for k, v in refs.items() if v})

        plan = hist.revise(self.all_versions(atom_id), window, tt, transform)
        return plan, changed

    def link(self, link_name: str, source_id: int, target_id: int,
             valid_from: Timestamp, valid_to: Timestamp = FOREVER,
             tt: Optional[Timestamp] = None) -> None:
        self.schema.link_type(link_name)
        if source_id == target_id:
            from repro.errors import CardinalityError
            raise CardinalityError(
                f"{link_name}: atom {source_id} cannot be linked to itself")
        window = Interval(valid_from, valid_to)
        tt = self.tick() if tt is None else tt
        src_plan, _ = self._ref_plan(source_id, ref_key(link_name, OUT),
                                     target_id, True, window, tt)
        dst_plan, _ = self._ref_plan(target_id, ref_key(link_name, IN),
                                     source_id, True, window, tt)
        self._apply(source_id, src_plan)
        self._apply(target_id, dst_plan)

    def unlink(self, link_name: str, source_id: int, target_id: int,
               valid_from: Timestamp, valid_to: Timestamp = FOREVER,
               tt: Optional[Timestamp] = None) -> None:
        self.schema.link_type(link_name)
        window = Interval(valid_from, valid_to)
        tt = self.tick() if tt is None else tt
        src_plan, removed_out = self._ref_plan(
            source_id, ref_key(link_name, OUT), target_id, False, window, tt)
        dst_plan, removed_in = self._ref_plan(
            target_id, ref_key(link_name, IN), source_id, False, window, tt)
        if not (removed_out or removed_in):
            raise TemporalUpdateError(
                f"{link_name}: atoms {source_id} and {target_id} are not "
                f"linked inside {window}")
        self._apply(source_id, src_plan)
        self._apply(target_id, dst_plan)

    # -- queries -------------------------------------------------------------------------

    def molecule_at(self, root_id: int, mtype: "str | MoleculeType",
                    at: Timestamp,
                    tt: Optional[Timestamp] = None) -> Optional[Molecule]:
        if isinstance(mtype, str):
            mtype = MoleculeType.parse(mtype, self.schema)
        return self.builder.build_at(root_id, mtype, at, tt)

    def molecule_history(self, root_id: int, mtype: "str | MoleculeType",
                         window: Interval,
                         tt: Optional[Timestamp] = None
                         ) -> List[Tuple[Interval, Molecule]]:
        if isinstance(mtype, str):
            mtype = MoleculeType.parse(mtype, self.schema)
        return self.builder.build_history(root_id, mtype, window, tt)

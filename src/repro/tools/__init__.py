"""Operational tooling: integrity verification and history vacuuming.

* :func:`~repro.tools.verify.verify_database` — walks every structure
  (histories, type index, reference symmetry, B+-trees, directory) and
  reports violations.
* :func:`~repro.tools.vacuum.vacuum_superseded` — physically removes
  versions whose transaction time ended before a cutoff, reclaiming the
  space that bitemporal never-delete semantics would otherwise grow
  forever.
* ``python -m repro`` — a small command-line front end (info, query,
  history, verify, vacuum).
"""

from repro.tools.export import dump_database, dump_json, load_database
from repro.tools.stats import DatabaseStatistics, database_statistics
from repro.tools.vacuum import vacuum_superseded
from repro.tools.verify import VerificationReport, verify_database

__all__ = [
    "dump_database",
    "dump_json",
    "load_database",
    "DatabaseStatistics",
    "database_statistics",
    "vacuum_superseded",
    "VerificationReport",
    "verify_database",
]

"""Dump and load: portable JSON export of a database's full content.

The dump carries everything logical — schema, every atom's complete
bitemporal version record (including superseded versions), the atom-id
and clock high-water marks, and the set of secondary indexes.  Loading
reconstructs the database under any version-storage strategy, which
makes dump/load the migration path between physical layouts (and an
offline backup format that is independent of page layout details).
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.core.database import DatabaseConfig, TemporalDatabase
from repro.core.schema import Schema
from repro.core.version import Version
from repro.errors import ReproError
from repro.temporal import Interval

_FORMAT = 1


def dump_database(db: TemporalDatabase) -> Dict[str, Any]:
    """Serialize the database's logical content to a JSON-able document."""
    atoms = []
    engine = db.engine
    for atom_id in sorted(engine.store.atom_ids()):
        type_name = engine.atom_type_name(atom_id)
        versions = []
        for version in engine.all_versions(atom_id):
            versions.append({
                "vt": [version.vt.start, version.vt.end],
                "tt": [version.tt.start, version.tt.end],
                "values": dict(version.values),
                "refs": {key: sorted(partners)
                         for key, partners in version.refs.items()
                         if partners},
            })
        atoms.append({"id": atom_id, "type": type_name,
                      "versions": versions})
    indexes = [name for name in db.indexes.index_names() if name != "type"]
    return {
        "format": _FORMAT,
        "schema": db.schema.to_dict(),
        "next_atom_id": db._next_atom_id,
        "clock": db._clock.now(),
        "indexes": indexes,
        "atoms": atoms,
    }


def dump_json(db: TemporalDatabase, indent: int = 1) -> str:
    """The dump as a JSON string."""
    return json.dumps(dump_database(db), indent=indent, sort_keys=True)


def load_database(path: str, document: Dict[str, Any],
                  config: DatabaseConfig | None = None) -> TemporalDatabase:
    """Create a new database at *path* from a dump document.

    The target strategy comes from *config* — loading is how content
    migrates between physical layouts.
    """
    if document.get("format") != _FORMAT:
        raise ReproError(
            f"unsupported dump format {document.get('format')!r}")
    schema = Schema.from_dict(document["schema"])
    db = TemporalDatabase.create(path, schema, config)
    engine = db.engine
    for atom in document["atoms"]:
        atom_id = int(atom["id"])
        type_name = atom["type"]
        type_id = schema.atom_type(type_name).type_id
        for raw in atom["versions"]:
            version = Version(
                Interval(*raw["vt"]), Interval(*raw["tt"]),
                dict(raw["values"]),
                {key: frozenset(int(p) for p in partners)
                 for key, partners in raw.get("refs", {}).items()})
            engine.store.append_version(atom_id,
                                        engine._encode(type_name, version))
        engine.indexes.register_atom(type_id, atom_id)
    with db._id_mutex:
        db._next_atom_id = max(db._next_atom_id,
                               int(document.get("next_atom_id", 1)))
    db._clock.advance_to(int(document.get("clock", 0)))
    for index_name in document.get("indexes", ()):
        _recreate_index(db, index_name)
    db.checkpoint()
    return db


def _recreate_index(db: TemporalDatabase, index_name: str) -> None:
    if index_name.startswith("attr:"):
        qualified = index_name[len("attr:"):]
        type_name, _, attribute = qualified.partition(".")
        db.engine.create_attribute_index(type_name, attribute)
    elif index_name.startswith("vt:"):
        db.engine.create_vt_index(index_name[len("vt:"):])
    else:
        raise ReproError(f"cannot recreate unknown index {index_name!r}")

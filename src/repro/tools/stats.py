"""Database statistics: the numbers an administrator (or a cost-based
planner) wants.

:func:`database_statistics` scans the version store once and aggregates
per-type atom counts, version counts, history-length distribution, and
liveness, plus the storage-layer page accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.database import TemporalDatabase


@dataclass
class TypeStatistics:
    """Aggregates for one atom type."""

    atoms: int = 0
    versions: int = 0
    live_versions: int = 0
    max_history: int = 0

    @property
    def mean_history(self) -> float:
        return self.versions / self.atoms if self.atoms else 0.0


@dataclass
class DatabaseStatistics:
    """Whole-database aggregates."""

    by_type: Dict[str, TypeStatistics] = field(default_factory=dict)
    total_pages: int = 0
    total_bytes: int = 0
    page_size: int = 0
    index_names: tuple = ()

    @property
    def total_atoms(self) -> int:
        return sum(stats.atoms for stats in self.by_type.values())

    @property
    def total_versions(self) -> int:
        return sum(stats.versions for stats in self.by_type.values())

    def summary(self) -> str:
        lines = [f"{self.total_atoms} atoms, {self.total_versions} "
                 f"versions, {self.total_pages} pages "
                 f"({self.total_bytes} bytes)"]
        for name, stats in sorted(self.by_type.items()):
            lines.append(
                f"  {name}: {stats.atoms} atoms, {stats.versions} versions "
                f"(mean history {stats.mean_history:.1f}, "
                f"max {stats.max_history}, {stats.live_versions} live)")
        return "\n".join(lines)


def database_statistics(db: TemporalDatabase) -> DatabaseStatistics:
    """Scan the store and aggregate statistics."""
    result = DatabaseStatistics()
    for atom_type in db.schema.atom_types:
        result.by_type[atom_type.name] = TypeStatistics()
    engine = db.engine
    for atom_id in engine.store.atom_ids():
        type_name = engine.atom_type_name(atom_id)
        stats = result.by_type.setdefault(type_name, TypeStatistics())
        versions = engine.all_versions(atom_id)
        stats.atoms += 1
        stats.versions += len(versions)
        stats.live_versions += sum(1 for version in versions
                                   if version.live)
        stats.max_history = max(stats.max_history, len(versions))
    storage = db.storage_stats()
    result.total_pages = storage.total_pages
    result.total_bytes = storage.total_bytes
    result.page_size = storage.page_size
    result.index_names = tuple(db.indexes.index_names())
    return result

"""Transaction-time vacuuming.

Bitemporal semantics never destroy superseded versions, so storage
grows with every correction forever.  Vacuuming trades old knowledge
states for space: every version whose transaction time ended **before**
a cutoff is physically removed; ``AS OF τ`` queries with ``τ`` older
than the cutoff become unanswerable, everything else is unaffected.

The vacuum rebuilds each affected atom in place through the version
store (delete and re-append), holds the exclusive side of the facade's
state latch, requires a quiescent database, and checkpoints when done
so the reclaimed space is durable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.database import TemporalDatabase
from repro.errors import TransactionStateError
from repro.temporal import Timestamp


@dataclass
class VacuumReport:
    """What a vacuum run removed."""

    atoms_visited: int = 0
    atoms_rewritten: int = 0
    versions_removed: int = 0
    versions_kept: int = 0

    def summary(self) -> str:
        return (f"vacuum: removed {self.versions_removed} superseded "
                f"versions across {self.atoms_rewritten} atoms "
                f"({self.versions_kept} kept)")


def vacuum_superseded(db: TemporalDatabase,
                      before_tt: Timestamp) -> VacuumReport:
    """Physically remove versions superseded before *before_tt*.

    Returns a :class:`VacuumReport`.  Raises
    :class:`TransactionStateError` when transactions are active.
    """
    if db._txn_manager.active_transactions():
        raise TransactionStateError("vacuum requires a quiescent database")
    report = VacuumReport()
    store = db.engine.store
    with db._state_latch.write():
        for atom_id in list(store.atom_ids()):
            report.atoms_visited += 1
            stored_versions = store.read_all(atom_id)
            keep = [sv for sv, version
                    in zip(stored_versions,
                           (db.engine._decode(sv)[1]
                            for sv in stored_versions))
                    if version.tt.end > before_tt]
            removed = len(stored_versions) - len(keep)
            report.versions_kept += len(keep)
            if removed == 0:
                continue
            report.atoms_rewritten += 1
            report.versions_removed += removed
            type_id = db.schema.atom_type(
                db.engine.atom_type_name(atom_id)).type_id
            store.delete_atom(atom_id)
            if keep:
                for stored in keep:
                    store.append_version(atom_id, stored)
            else:
                # Every version gone: the atom itself disappears.
                db.engine.indexes.unregister_atom(type_id, atom_id)
            # The rewrite bypassed _apply_plan, so sequence numbers may
            # now address different versions: drop the cached decodes.
            db.engine.invalidate_atom_caches(atom_id)
    db.checkpoint()
    return report

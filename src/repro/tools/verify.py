"""Database integrity verification.

Checks, per atom and across atoms:

1. **Bitemporal invariant** — no transaction-time instant believes two
   overlapping valid-time states (:func:`repro.core.history.check_history`).
2. **Type registration** — every stored atom appears in the type index
   under its record's type, and vice versa.
3. **Reference symmetry** — whenever a live version of atom *a* lists
   *b* under ``L.out`` for some valid period, atom *b* lists *a* under
   ``L.in`` for that period intersected with *b*'s own lifespan (a
   reference may validly point at an atom outside its lifespan — the
   builder drops such partners — but while both exist, symmetry must
   hold exactly).
4. **Index structure** — B+-tree ordering/fence/balance checks and the
   atom directory's bucket hashing.

The verifier is read-only and runs over a quiescent database.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.core import history as hist
from repro.core.database import TemporalDatabase
from repro.core.version import Version, split_ref_key
from repro.errors import ReproError, TemporalUpdateError
from repro.temporal import TemporalElement


@dataclass
class VerificationReport:
    """Outcome of a verification run."""

    atoms_checked: int = 0
    versions_checked: int = 0
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def add(self, problem: str) -> None:
        self.problems.append(problem)

    def summary(self) -> str:
        state = "OK" if self.ok else f"{len(self.problems)} problem(s)"
        return (f"verified {self.atoms_checked} atoms / "
                f"{self.versions_checked} versions: {state}")


def _ref_element(versions: List[Version], key: str,
                 partner: int) -> TemporalElement:
    """Valid-time element over which the live versions carry *partner*."""
    spans = [version.vt for version in versions
             if version.live and partner in version.refs.get(key,
                                                             frozenset())]
    return TemporalElement(spans)


def verify_database(db: TemporalDatabase) -> VerificationReport:
    """Run every integrity check; returns a report (never raises for
    data problems — structural corruption in an index still raises)."""
    report = VerificationReport()
    engine = db.engine
    atoms_by_type: Dict[str, Set[int]] = {
        atom_type.name: set() for atom_type in db.schema.atom_types}

    histories: Dict[int, List[Version]] = {}
    types: Dict[int, str] = {}
    for atom_id in engine.store.atom_ids():
        report.atoms_checked += 1
        try:
            type_name = engine.atom_type_name(atom_id)
            versions = engine.all_versions(atom_id)
        except ReproError as exc:
            report.add(f"atom {atom_id}: unreadable ({exc})")
            continue
        histories[atom_id] = versions
        types[atom_id] = type_name
        atoms_by_type[type_name].add(atom_id)
        report.versions_checked += len(versions)
        try:
            hist.check_history(versions)
        except TemporalUpdateError as exc:
            report.add(f"atom {atom_id}: bitemporal invariant: {exc}")

    # -- type index agreement ------------------------------------------------
    for atom_type in db.schema.atom_types:
        indexed = set(engine.indexes.atoms_of_type(atom_type.type_id))
        stored = atoms_by_type[atom_type.name]
        for atom_id in sorted(indexed - stored):
            report.add(f"type index lists {atom_type.name} atom {atom_id} "
                       f"that is not stored (or has another type)")
        for atom_id in sorted(stored - indexed):
            report.add(f"stored {atom_type.name} atom {atom_id} missing "
                       f"from the type index")

    # -- reference symmetry ---------------------------------------------------
    for atom_id, versions in histories.items():
        lifespans = {}
        for version in versions:
            if not version.live:
                continue
            for key, partners in version.refs.items():
                link_name, direction = split_ref_key(key)
                inverse = f"{link_name}.{'in' if direction == 'out' else 'out'}"
                for partner in partners:
                    if partner not in histories:
                        report.add(
                            f"atom {atom_id}: {key} references missing "
                            f"atom {partner}")
                        continue
                    mine = _ref_element(versions, key, partner)
                    theirs = _ref_element(histories[partner], inverse,
                                          atom_id)
                    if partner not in lifespans:
                        lifespans[partner] = hist.lifespan(
                            histories[partner])
                    expected = mine.intersect(lifespans[partner])
                    missing = expected.difference(theirs)
                    if not missing.is_empty:
                        report.add(
                            f"asymmetric link {link_name}: atom {atom_id} "
                            f"-> {partner} over {list(missing)} has no "
                            f"back reference")

    # -- index structures ---------------------------------------------------------
    engine.indexes.check_all()

    return report

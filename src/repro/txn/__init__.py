"""Transaction system: logging, locking, transactions, recovery.

* :class:`~repro.txn.wal.WriteAheadLog` — append-only logical log with
  CRC-protected records and torn-tail tolerance.
* :class:`~repro.txn.locks.LockManager` — strict two-phase S/X locking
  with wait-for-graph deadlock detection.
* :class:`~repro.txn.manager.Transaction` /
  :class:`~repro.txn.manager.TransactionManager` — transaction lifecycle,
  undo lists, transaction-time assignment.
* :mod:`~repro.txn.recovery` — checkpoint/restore and committed-operation
  replay after a crash.
"""

from repro.txn.locks import LockManager, LockMode
from repro.txn.manager import Transaction, TransactionManager, TxnState
from repro.txn.wal import LogRecord, LogRecordType, WriteAheadLog

__all__ = [
    "LockManager",
    "LockMode",
    "Transaction",
    "TransactionManager",
    "TxnState",
    "LogRecord",
    "LogRecordType",
    "WriteAheadLog",
]

"""Lock manager: strict two-phase S/X locking with deadlock detection.

Resources are arbitrary hashable keys (the engine locks atoms by id and
whole atom types by name).  Shared (S) locks are compatible with each
other; exclusive (X) locks are compatible with nothing.  Lock upgrades
(S held, X requested) are supported.

Deadlocks are detected eagerly on the wait-for graph: before a requester
blocks, the manager checks whether waiting would close a cycle and, if
so, raises :class:`DeadlockError` in the requester (the requester is the
victim — the simplest deterministic policy).  A configurable timeout
bounds pathological waits.

:class:`ReadWriteLock` is the second primitive of this module: a
thread-level shared-read / exclusive-write latch the database facade
uses to let any number of reader threads run time-slice and history
queries in parallel while each mutation (and checkpoint) gets the
engine to itself.  It is *not* a transactional lock — atom-level 2PL
above still orders conflicting transactions; the latch only protects
the in-memory engine structures during one operation.
"""

from __future__ import annotations

import enum
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterator, Optional, Set

from repro.errors import DeadlockError, LockTimeoutError


class ReadWriteLock:
    """Reentrant shared-read / exclusive-write latch with writer preference.

    * Any number of threads may hold the read side concurrently.
    * The write side is exclusive against readers and other writers.
    * A thread holding the write side may re-enter both sides freely
      (its nested reads and writes are no-ops).
    * A thread holding only the read side may re-enter the read side —
      even while a writer is queued — but must not request the write
      side (lock upgrades deadlock by construction and raise
      ``RuntimeError`` instead).
    * New readers queue behind waiting writers so a steady stream of
      readers cannot starve mutations.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition(threading.Lock())
        self._readers: Dict[int, int] = {}      # thread id -> read depth
        self._writer: Optional[int] = None      # thread id of the writer
        self._writer_depth = 0
        self._waiting_writers = 0

    # -- read side ----------------------------------------------------------

    def acquire_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1  # nested read inside a write
                return
            while self._writer is not None or (
                    self._waiting_writers and me not in self._readers):
                self._cond.wait()
            self._readers[me] = self._readers.get(me, 0) + 1

    def release_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth -= 1
                return
            depth = self._readers.get(me, 0)
            if depth <= 0:
                raise RuntimeError("release_read without acquire_read")
            if depth == 1:
                del self._readers[me]
                if not self._readers:
                    self._cond.notify_all()
            else:
                self._readers[me] = depth - 1

    # -- write side ---------------------------------------------------------

    def acquire_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
                return
            if me in self._readers:
                raise RuntimeError(
                    "read-to-write lock upgrade would deadlock; release "
                    "the read side first")
            self._waiting_writers += 1
            try:
                while self._writer is not None or self._readers:
                    self._cond.wait()
                self._writer = me
                self._writer_depth = 1
            finally:
                self._waiting_writers -= 1

    def release_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer != me:
                raise RuntimeError("release_write by a non-writer thread")
            self._writer_depth -= 1
            if self._writer_depth == 0:
                self._writer = None
                self._cond.notify_all()

    # -- context managers ---------------------------------------------------

    @contextmanager
    def read(self) -> Iterator[None]:
        """Scoped shared acquisition: ``with lock.read(): ...``."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write(self) -> Iterator[None]:
        """Scoped exclusive acquisition: ``with lock.write(): ...``."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"


@dataclass
class _ResourceState:
    """Holders and waiters of one resource."""

    holders: Dict[int, LockMode] = field(default_factory=dict)
    waiters: Set[int] = field(default_factory=set)


class LockManager:
    """Grants S/X locks to transactions identified by integer ids."""

    def __init__(self, timeout: float = 10.0) -> None:
        self._mutex = threading.Lock()
        self._changed = threading.Condition(self._mutex)
        self._resources: Dict[Hashable, _ResourceState] = {}
        self._held_by_txn: Dict[int, Set[Hashable]] = {}
        self._waits_for: Dict[int, Set[int]] = {}
        self._timeout = timeout

    # -- compatibility ------------------------------------------------------

    @staticmethod
    def _compatible(requested: LockMode, state: _ResourceState,
                    txn_id: int) -> bool:
        others = {holder: mode for holder, mode in state.holders.items()
                  if holder != txn_id}
        if not others:
            return True
        if requested is LockMode.EXCLUSIVE:
            return False
        return all(mode is LockMode.SHARED for mode in others.values())

    # -- deadlock detection ----------------------------------------------------

    def _would_deadlock(self, txn_id: int, blockers: Set[int]) -> bool:
        """Would txn_id waiting on *blockers* close a wait-for cycle?"""
        seen: Set[int] = set()
        frontier = set(blockers)
        while frontier:
            node = frontier.pop()
            if node == txn_id:
                return True
            if node in seen:
                continue
            seen.add(node)
            frontier.update(self._waits_for.get(node, ()))
        return False

    # -- acquire / release ---------------------------------------------------------

    def acquire(self, txn_id: int, resource: Hashable,
                mode: LockMode) -> None:
        """Block until the lock is granted.

        Raises :class:`DeadlockError` when waiting would deadlock and
        :class:`LockTimeoutError` after the configured timeout.
        """
        deadline = time.monotonic() + self._timeout
        with self._changed:
            state = self._resources.setdefault(resource, _ResourceState())
            while True:
                held = state.holders.get(txn_id)
                if held is LockMode.EXCLUSIVE or held is mode:
                    return  # already strong enough
                if self._compatible(mode, state, txn_id):
                    state.holders[txn_id] = mode
                    self._held_by_txn.setdefault(txn_id, set()).add(resource)
                    state.waiters.discard(txn_id)
                    self._waits_for.pop(txn_id, None)
                    return
                blockers = {holder for holder in state.holders
                            if holder != txn_id}
                if self._would_deadlock(txn_id, blockers):
                    state.waiters.discard(txn_id)
                    self._waits_for.pop(txn_id, None)
                    raise DeadlockError(
                        f"transaction {txn_id} would deadlock waiting for "
                        f"{resource!r}")
                state.waiters.add(txn_id)
                self._waits_for[txn_id] = blockers
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._changed.wait(remaining):
                    state.waiters.discard(txn_id)
                    self._waits_for.pop(txn_id, None)
                    raise LockTimeoutError(
                        f"transaction {txn_id} timed out waiting for "
                        f"{resource!r}")

    def release_all(self, txn_id: int) -> None:
        """Release every lock of a transaction (commit or abort)."""
        with self._changed:
            for resource in self._held_by_txn.pop(txn_id, set()):
                state = self._resources.get(resource)
                if state is None:
                    continue
                state.holders.pop(txn_id, None)
                if not state.holders and not state.waiters:
                    del self._resources[resource]
            self._waits_for.pop(txn_id, None)
            self._changed.notify_all()

    # -- introspection ----------------------------------------------------------------

    def locks_held(self, txn_id: int) -> Set[Hashable]:
        with self._mutex:
            return set(self._held_by_txn.get(txn_id, set()))

    def holders_of(self, resource: Hashable) -> Dict[int, LockMode]:
        with self._mutex:
            state = self._resources.get(resource)
            return dict(state.holders) if state else {}

"""Lock manager: strict two-phase S/X locking with deadlock detection.

Resources are arbitrary hashable keys (the engine locks atoms by id and
whole atom types by name).  Shared (S) locks are compatible with each
other; exclusive (X) locks are compatible with nothing.  Lock upgrades
(S held, X requested) are supported.

Deadlocks are detected eagerly on the wait-for graph: before a requester
blocks, the manager checks whether waiting would close a cycle and, if
so, raises :class:`DeadlockError` in the requester (the requester is the
victim — the simplest deterministic policy).  A configurable timeout
bounds pathological waits.
"""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Hashable, Set

from repro.errors import DeadlockError, LockTimeoutError


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"


@dataclass
class _ResourceState:
    """Holders and waiters of one resource."""

    holders: Dict[int, LockMode] = field(default_factory=dict)
    waiters: Set[int] = field(default_factory=set)


class LockManager:
    """Grants S/X locks to transactions identified by integer ids."""

    def __init__(self, timeout: float = 10.0) -> None:
        self._mutex = threading.Lock()
        self._changed = threading.Condition(self._mutex)
        self._resources: Dict[Hashable, _ResourceState] = {}
        self._held_by_txn: Dict[int, Set[Hashable]] = {}
        self._waits_for: Dict[int, Set[int]] = {}
        self._timeout = timeout

    # -- compatibility ------------------------------------------------------

    @staticmethod
    def _compatible(requested: LockMode, state: _ResourceState,
                    txn_id: int) -> bool:
        others = {holder: mode for holder, mode in state.holders.items()
                  if holder != txn_id}
        if not others:
            return True
        if requested is LockMode.EXCLUSIVE:
            return False
        return all(mode is LockMode.SHARED for mode in others.values())

    # -- deadlock detection ----------------------------------------------------

    def _would_deadlock(self, txn_id: int, blockers: Set[int]) -> bool:
        """Would txn_id waiting on *blockers* close a wait-for cycle?"""
        seen: Set[int] = set()
        frontier = set(blockers)
        while frontier:
            node = frontier.pop()
            if node == txn_id:
                return True
            if node in seen:
                continue
            seen.add(node)
            frontier.update(self._waits_for.get(node, ()))
        return False

    # -- acquire / release ---------------------------------------------------------

    def acquire(self, txn_id: int, resource: Hashable,
                mode: LockMode) -> None:
        """Block until the lock is granted.

        Raises :class:`DeadlockError` when waiting would deadlock and
        :class:`LockTimeoutError` after the configured timeout.
        """
        deadline = time.monotonic() + self._timeout
        with self._changed:
            state = self._resources.setdefault(resource, _ResourceState())
            while True:
                held = state.holders.get(txn_id)
                if held is LockMode.EXCLUSIVE or held is mode:
                    return  # already strong enough
                if self._compatible(mode, state, txn_id):
                    state.holders[txn_id] = mode
                    self._held_by_txn.setdefault(txn_id, set()).add(resource)
                    state.waiters.discard(txn_id)
                    self._waits_for.pop(txn_id, None)
                    return
                blockers = {holder for holder in state.holders
                            if holder != txn_id}
                if self._would_deadlock(txn_id, blockers):
                    state.waiters.discard(txn_id)
                    self._waits_for.pop(txn_id, None)
                    raise DeadlockError(
                        f"transaction {txn_id} would deadlock waiting for "
                        f"{resource!r}")
                state.waiters.add(txn_id)
                self._waits_for[txn_id] = blockers
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._changed.wait(remaining):
                    state.waiters.discard(txn_id)
                    self._waits_for.pop(txn_id, None)
                    raise LockTimeoutError(
                        f"transaction {txn_id} timed out waiting for "
                        f"{resource!r}")

    def release_all(self, txn_id: int) -> None:
        """Release every lock of a transaction (commit or abort)."""
        with self._changed:
            for resource in self._held_by_txn.pop(txn_id, set()):
                state = self._resources.get(resource)
                if state is None:
                    continue
                state.holders.pop(txn_id, None)
                if not state.holders and not state.waiters:
                    del self._resources[resource]
            self._waits_for.pop(txn_id, None)
            self._changed.notify_all()

    # -- introspection ----------------------------------------------------------------

    def locks_held(self, txn_id: int) -> Set[Hashable]:
        with self._mutex:
            return set(self._held_by_txn.get(txn_id, set()))

    def holders_of(self, resource: Hashable) -> Dict[int, LockMode]:
        with self._mutex:
            state = self._resources.get(resource)
            return dict(state.holders) if state else {}

"""Transaction lifecycle: begin, operate, commit or abort.

The engine applies operations to storage immediately (through the buffer
pool) and registers a compensating *undo action* per operation with the
transaction.  Commit appends the COMMIT record and forces the log up to
it via the WAL's group commit (:meth:`~repro.txn.wal.WriteAheadLog.sync_to`)
— when many transactions commit concurrently they share one ``fsync``.
Abort runs the undo actions in reverse.  Because the on-disk image may
contain effects of uncommitted or unfinished transactions after a crash,
crash recovery never trusts the image directly — it restores the last
checkpoint and replays committed operations from the log
(:mod:`repro.txn.recovery`).

Undo actions mutate engine state, so when the database facade supplies
its shared-read/exclusive-write latch (``write_guard``), abort holds the
exclusive side while compensating — concurrent readers never observe a
half-rolled-back transaction.

Transaction time is assigned at ``begin`` from the logical clock and
recorded in the BEGIN log record so replay stamps identical times.
"""

from __future__ import annotations

import enum
import threading
from contextlib import nullcontext
from typing import Any, Callable, ContextManager, Dict, List, Optional

from repro.errors import TransactionStateError
from repro.temporal import TransactionClock
from repro.txn.locks import LockManager, ReadWriteLock
from repro.txn.wal import LogRecordType, WriteAheadLog

UndoAction = Callable[[], None]


class TxnState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """One unit of work; created by :class:`TransactionManager.begin`."""

    def __init__(self, txn_id: int, tt: int,
                 manager: "TransactionManager") -> None:
        self.txn_id = txn_id
        self.tt = tt
        self._manager = manager
        self._state = TxnState.ACTIVE
        self._undo: List[UndoAction] = []
        self.operations_logged = 0

    @property
    def state(self) -> TxnState:
        return self._state

    @property
    def is_active(self) -> bool:
        return self._state is TxnState.ACTIVE

    def require_active(self) -> None:
        if self._state is not TxnState.ACTIVE:
            raise TransactionStateError(
                f"transaction {self.txn_id} is {self._state.value}")

    def add_undo(self, action: UndoAction) -> None:
        """Register a compensating action, run in reverse order on abort."""
        self.require_active()
        self._undo.append(action)

    # Lifecycle is driven through the manager so logging, locking, and
    # state stay consistent.

    def commit(self) -> None:
        self._manager.commit(self)

    def abort(self) -> None:
        self._manager.abort(self)


class TransactionManager:
    """Creates transactions and drives their commit/abort protocol."""

    def __init__(self, wal: WriteAheadLog, locks: LockManager,
                 clock: TransactionClock,
                 write_guard: Optional[ReadWriteLock] = None) -> None:
        self._wal = wal
        self.locks = locks
        self._clock = clock
        self._write_guard = write_guard
        self._mutex = threading.Lock()
        self._next_txn_id = 1
        self._active: Dict[int, Transaction] = {}
        self.metrics = wal.metrics
        self._c_begins = self.metrics.counter("txn.begins")
        self._c_commits = self.metrics.counter("txn.commits")
        self._c_aborts = self.metrics.counter("txn.aborts")
        self._c_operations = self.metrics.counter("txn.operations")

    # -- lifecycle ------------------------------------------------------------

    def begin(self) -> Transaction:
        with self._mutex:
            txn_id = self._next_txn_id
            self._next_txn_id += 1
        tt = self._clock.tick()
        self._c_begins.inc()
        txn = Transaction(txn_id, tt, self)
        self._wal.append(LogRecordType.BEGIN, txn_id, {"tt": tt})
        with self._mutex:
            self._active[txn_id] = txn
        return txn

    def log_operation(self, txn: Transaction,
                      payload: Dict[str, Any]) -> int:
        """Log one operation of *txn*; must precede applying it."""
        txn.require_active()
        txn.operations_logged += 1
        self._c_operations.inc()
        return self._wal.append(LogRecordType.OPERATION, txn.txn_id, payload)

    def commit(self, txn: Transaction) -> None:
        """Force-log the commit (group commit), then release the locks.

        When :meth:`commit` returns under the default durability mode,
        the COMMIT record has been fsynced — possibly by another
        committing thread's fsync that covered this transaction's LSN.
        """
        txn.require_active()
        commit_lsn = self._wal.append(LogRecordType.COMMIT, txn.txn_id)
        self._wal.sync_to(commit_lsn)
        self._c_commits.inc()
        txn._state = TxnState.COMMITTED
        self.locks.release_all(txn.txn_id)
        with self._mutex:
            self._active.pop(txn.txn_id, None)

    def abort(self, txn: Transaction) -> None:
        """Undo applied operations in reverse, log the abort, release."""
        txn.require_active()
        guard: ContextManager[Any] = (self._write_guard.write()
                                      if self._write_guard is not None
                                      else nullcontext())
        with guard:
            for action in reversed(txn._undo):
                action()
        self._wal.append(LogRecordType.ABORT, txn.txn_id)
        self._wal.flush(sync=False)
        self._c_aborts.inc()
        txn._state = TxnState.ABORTED
        self.locks.release_all(txn.txn_id)
        with self._mutex:
            self._active.pop(txn.txn_id, None)

    # -- introspection ------------------------------------------------------------

    def active_transactions(self) -> List[int]:
        with self._mutex:
            return sorted(self._active)

    @property
    def wal(self) -> WriteAheadLog:
        return self._wal

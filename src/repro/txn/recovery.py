"""Crash recovery: checkpoint restore plus committed-operation replay.

The engine applies operations to buffered pages immediately, and the
buffer pool may write pages of uncommitted transactions to disk (a
*steal* policy), so after a crash the page file is not trustworthy.
Recovery therefore never reads it:

1. the page file and catalog are restored from the last checkpoint;
2. the write-ahead log is scanned once to find committed transactions
   newer than the checkpoint (``applied_lsn``);
3. their OPERATION records are replayed, in LSN order, through the same
   engine methods that executed them originally — operations are logged
   with every input (including assigned atom ids and transaction times),
   so replay is deterministic.

Two-phase locking ordered conflicting operations at run time, so LSN
order is a valid serialization order.

A checkpoint consists of *several* files (the page file and the
catalog) that must be restored **as a pair**: the catalog's
``applied_lsn`` says which log prefix the page image already contains,
so mixing a new page copy with an old catalog copy (or vice versa)
would double-apply or skip operations.  Checkpoints are therefore
published atomically through a generation **manifest**: every file is
first staged as ``<file>.ckpt.<generation>`` and fsynced, then a small
JSON manifest naming the complete generation is atomically renamed
into place (``ckpt.manifest``).  A crash at any point mid-checkpoint
leaves the manifest pointing at the previous, complete generation.
The legacy per-file ``<file>.ckpt`` copies (pre-manifest databases)
remain readable as a fallback.
"""

from __future__ import annotations

import json
import os
import shutil
from typing import Any, Dict, List, Optional, Set

from repro.errors import RecoveryError
from repro.txn.wal import LogRecord, LogRecordType, WriteAheadLog

#: File-name suffix of checkpoint copies.
CHECKPOINT_SUFFIX = ".ckpt"

#: Name of the checkpoint manifest inside a database directory.
MANIFEST_FILE = "ckpt.manifest"


def _fsync_file(path: str) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_directory(directory: str) -> None:
    """Force directory metadata (renames, new files) to disk."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return  # platform without directory fds; best effort
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def read_manifest(directory: str) -> Optional[Dict[str, Any]]:
    """The current checkpoint manifest, or ``None`` (legacy/fresh dir)."""
    path = os.path.join(directory, MANIFEST_FILE)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except FileNotFoundError:
        return None
    except (OSError, json.JSONDecodeError) as exc:
        raise RecoveryError(f"unreadable checkpoint manifest {path}") from exc
    if not isinstance(manifest, dict) or "files" not in manifest:
        raise RecoveryError(f"malformed checkpoint manifest {path}")
    return manifest


def publish_checkpoint(directory: str, paths: List[str]) -> int:
    """Atomically publish a checkpoint generation covering *paths*.

    Every file is staged as ``<file>.ckpt.<gen>`` and fsynced before the
    manifest rename makes the generation current — a crash anywhere in
    between leaves the previous generation intact.  Returns the new
    generation number.
    """
    manifest = read_manifest(directory)
    generation = int(manifest["generation"]) + 1 if manifest else 1
    files: Dict[str, str] = {}
    for path in paths:
        base = os.path.basename(path)
        staged = os.path.join(directory,
                              f"{base}{CHECKPOINT_SUFFIX}.{generation}")
        temp = staged + ".tmp"
        shutil.copyfile(path, temp)
        _fsync_file(temp)
        os.replace(temp, staged)
        files[base] = os.path.basename(staged)
    manifest_tmp = os.path.join(directory, MANIFEST_FILE + ".tmp")
    with open(manifest_tmp, "w", encoding="utf-8") as handle:
        json.dump({"generation": generation, "files": files}, handle)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(manifest_tmp, os.path.join(directory, MANIFEST_FILE))
    _fsync_directory(directory)
    _cleanup_stale_generations(directory, generation)
    return generation


def _cleanup_stale_generations(directory: str, current: int) -> None:
    """Delete checkpoint files of superseded generations (best effort)."""
    marker = CHECKPOINT_SUFFIX + "."
    for name in os.listdir(directory):
        head, sep, tail = name.rpartition(marker)
        if not sep or not head:
            continue
        generation_text = tail[:-4] if tail.endswith(".tmp") else tail
        if generation_text.isdigit() and int(generation_text) != current:
            try:
                os.remove(os.path.join(directory, name))
            except OSError:
                pass


def restore_checkpoint(directory: str, paths: List[str]) -> None:
    """Overwrite *paths* with their copies from the current checkpoint.

    Prefers the manifest generation; falls back to legacy per-file
    ``.ckpt`` twins for databases checkpointed before manifests existed.
    """
    manifest = read_manifest(directory)
    if manifest is None:
        for path in paths:
            checkpoint_restore(path)
        return
    files = manifest["files"]
    for path in paths:
        base = os.path.basename(path)
        source_name = files.get(base)
        if source_name is None:
            raise RecoveryError(
                f"checkpoint manifest has no copy of {base}")
        source = os.path.join(directory, source_name)
        if not os.path.exists(source):
            raise RecoveryError(f"missing checkpoint file {source}")
        shutil.copyfile(source, path)


def checkpoint_copy(path: str) -> None:
    """Atomically snapshot *path* to its legacy checkpoint twin.

    Retained for single-file callers and pre-manifest databases; new
    checkpoints go through :func:`publish_checkpoint`, which snapshots
    all checkpoint files as one atomic generation.
    """
    temp = path + CHECKPOINT_SUFFIX + ".tmp"
    shutil.copyfile(path, temp)
    os.replace(temp, path + CHECKPOINT_SUFFIX)


def checkpoint_restore(path: str) -> None:
    """Overwrite *path* with its legacy checkpoint twin."""
    source = path + CHECKPOINT_SUFFIX
    if not os.path.exists(source):
        raise RecoveryError(f"no checkpoint copy for {path}")
    shutil.copyfile(source, path)


def _scan_commit_state(wal: WriteAheadLog, after_lsn: int,
                       upto_lsn: Optional[int],
                       records: Optional[List[LogRecord]] = None
                       ) -> tuple[Set[int], int, int]:
    """One log pass: committed txn ids, last quiescent LSN, last LSN.

    A LSN is *quiescent* when no transaction's records straddle it —
    every BEGIN seen so far has its COMMIT/ABORT at or before it.
    Replication replays only ranges with quiescent endpoints, which is
    what makes the monotone ``applied_replay_lsn`` idempotence guard
    sound: within such a range every committed transaction is complete.

    When *records* is given it is used instead of re-reading the log
    file — appliers pass the batch they just received, so the scan is
    pure in-memory work.
    """
    committed: Set[int] = set()
    open_txns: Set[int] = set()
    quiescent = after_lsn
    last = after_lsn
    source = wal.read_all(after_lsn) if records is None else records
    for record in source:
        if record.lsn <= after_lsn:
            continue
        if upto_lsn is not None and record.lsn > upto_lsn:
            break
        if record.type is LogRecordType.BEGIN:
            open_txns.add(record.txn_id)
        elif record.type is LogRecordType.COMMIT:
            open_txns.discard(record.txn_id)
            committed.add(record.txn_id)
        elif record.type is LogRecordType.ABORT:
            open_txns.discard(record.txn_id)
        last = record.lsn
        if not open_txns:
            quiescent = record.lsn
    return committed, quiescent, last


def committed_transactions(wal: WriteAheadLog, after_lsn: int,
                           upto_lsn: Optional[int] = None) -> Set[int]:
    """Transaction ids with a COMMIT record after the checkpoint."""
    committed, _, _ = _scan_commit_state(wal, after_lsn, upto_lsn)
    return committed


def replay_operations(engine: Any, wal: WriteAheadLog,
                      after_lsn: int,
                      upto_lsn: Optional[int] = None,
                      quiescent_only: bool = False,
                      records: Optional[List[LogRecord]] = None
                      ) -> Dict[str, int]:
    """Replay committed operations newer than *after_lsn*.

    *upto_lsn* bounds the replay (inclusive) — replication appliers
    replay the log in quiescent-bounded slices as records arrive.
    *quiescent_only* further clamps the bound to the last quiescent LSN
    in range: a replica recovering from a crash must not replay past
    the point where transactions are still open in its local log,
    because their COMMIT records may yet arrive from the primary.

    *records*, when given, must be the decoded records covering
    ``(after_lsn, upto_lsn]`` in LSN order (extra records outside the
    range are ignored).  Appliers pass the batch they just streamed so
    replay never re-reads or re-decodes the log file — the file pass
    both here and in the commit-state scan is what made per-batch
    replay O(log) instead of O(batch), and it happens while holding
    the database's exclusive latch.

    Replay is idempotent across calls: the engine carries a monotone
    ``applied_replay_lsn`` watermark and operations at or below it are
    skipped, so a replica that reconnects and re-requests an
    overlapping committed range applies nothing twice.

    Returns summary counters: operations replayed, transactions
    recovered, the highest transaction time seen, the highest atom id
    assigned (the caller advances the clock and the id allocator past
    these), and the quiescent LSN the replay stopped honoring.
    """
    metrics = getattr(engine, "metrics", None) or wal.metrics
    c_replayed = metrics.counter("recovery.records_replayed")
    c_transactions = metrics.counter("recovery.transactions")
    committed, quiescent, _ = _scan_commit_state(wal, after_lsn, upto_lsn,
                                                 records)
    bound = upto_lsn
    if quiescent_only:
        # A txn committed beyond the quiescent bound cannot have an
        # OPERATION at or below it (it would have been open at the
        # bound), so the superset of committed ids stays correct.
        bound = quiescent if bound is None else min(bound, quiescent)
    c_transactions.inc(len(committed))
    guard = int(getattr(engine, "applied_replay_lsn", 0))
    replayed = 0
    max_tt = -1
    max_atom_id = 0
    source = wal.read_all(after_lsn) if records is None else records
    for record in source:
        if record.lsn <= after_lsn:
            continue
        if bound is not None and record.lsn > bound:
            break
        if record.type is LogRecordType.BEGIN:
            max_tt = max(max_tt, int(record.payload.get("tt", -1)))
            continue
        if record.type is not LogRecordType.OPERATION:
            continue
        if record.txn_id not in committed:
            continue
        if record.lsn <= guard:
            continue  # already applied by an earlier replay
        payload = record.payload
        max_atom_id = max(max_atom_id, _apply_operation(engine, payload))
        max_tt = max(max_tt, int(payload.get("tt", -1)))
        if hasattr(engine, "applied_replay_lsn"):
            engine.applied_replay_lsn = record.lsn
        replayed += 1
        c_replayed.inc()
    return {"operations": replayed, "transactions": len(committed),
            "max_tt": max_tt, "max_atom_id": max_atom_id,
            "quiescent_lsn": quiescent}


def _apply_operation(engine: Any, payload: Dict[str, Any]) -> int:
    """Dispatch one logged operation to the engine; returns the atom id
    it touched (0 when none was assigned)."""
    op = payload.get("op")
    tt = payload["tt"]
    try:
        if op == "insert":
            engine.insert(payload["type"], payload["values"],
                          payload["vf"], payload["vt"], tt,
                          payload["atom_id"])
            return int(payload["atom_id"])
        if op == "update":
            engine.update(payload["atom_id"], payload["changes"],
                          payload["vf"], tt, payload["vt"])
            return int(payload["atom_id"])
        if op == "delete":
            engine.delete(payload["atom_id"], payload["vf"], tt,
                          payload["vt"])
            return int(payload["atom_id"])
        if op == "correct":
            engine.correct(payload["atom_id"], payload["ws"],
                           payload["we"], payload["changes"], tt)
            return int(payload["atom_id"])
        if op == "link":
            engine.link(payload["link"], payload["src"], payload["dst"],
                        payload["vf"], tt, payload["vt"])
            return max(int(payload["src"]), int(payload["dst"]))
        if op == "unlink":
            engine.unlink(payload["link"], payload["src"], payload["dst"],
                          payload["vf"], tt, payload["vt"])
            return max(int(payload["src"]), int(payload["dst"]))
    except Exception as exc:  # noqa: BLE001 - wrap any replay failure
        raise RecoveryError(f"replay of {op!r} failed: {exc}") from exc
    raise RecoveryError(f"unknown logged operation {op!r}")

"""Crash recovery: checkpoint restore plus committed-operation replay.

The engine applies operations to buffered pages immediately, and the
buffer pool may write pages of uncommitted transactions to disk (a
*steal* policy), so after a crash the page file is not trustworthy.
Recovery therefore never reads it:

1. the page file and catalog are restored from the last checkpoint copy;
2. the write-ahead log is scanned once to find committed transactions
   newer than the checkpoint (``applied_lsn``);
3. their OPERATION records are replayed, in LSN order, through the same
   engine methods that executed them originally — operations are logged
   with every input (including assigned atom ids and transaction times),
   so replay is deterministic.

Two-phase locking ordered conflicting operations at run time, so LSN
order is a valid serialization order.
"""

from __future__ import annotations

import os
import shutil
from typing import Any, Dict, Set

from repro.errors import RecoveryError
from repro.txn.wal import LogRecordType, WriteAheadLog

#: File-name suffix of checkpoint copies.
CHECKPOINT_SUFFIX = ".ckpt"


def checkpoint_copy(path: str) -> None:
    """Atomically snapshot *path* to its checkpoint twin."""
    temp = path + CHECKPOINT_SUFFIX + ".tmp"
    shutil.copyfile(path, temp)
    os.replace(temp, path + CHECKPOINT_SUFFIX)


def checkpoint_restore(path: str) -> None:
    """Overwrite *path* with its checkpoint twin."""
    source = path + CHECKPOINT_SUFFIX
    if not os.path.exists(source):
        raise RecoveryError(f"no checkpoint copy for {path}")
    shutil.copyfile(source, path)


def committed_transactions(wal: WriteAheadLog, after_lsn: int) -> Set[int]:
    """Transaction ids with a COMMIT record after the checkpoint."""
    committed: Set[int] = set()
    for record in wal.read_all(after_lsn):
        if record.type is LogRecordType.COMMIT:
            committed.add(record.txn_id)
    return committed


def replay_operations(engine: Any, wal: WriteAheadLog,
                      after_lsn: int) -> Dict[str, int]:
    """Replay committed operations newer than *after_lsn*.

    Returns summary counters: operations replayed, transactions
    recovered, the highest transaction time seen, and the highest atom id
    assigned (the caller advances the clock and the id allocator past
    these).
    """
    metrics = getattr(engine, "metrics", None) or wal.metrics
    c_replayed = metrics.counter("recovery.records_replayed")
    c_transactions = metrics.counter("recovery.transactions")
    committed = committed_transactions(wal, after_lsn)
    c_transactions.inc(len(committed))
    replayed = 0
    max_tt = -1
    max_atom_id = 0
    for record in wal.read_all(after_lsn):
        if record.type is LogRecordType.BEGIN:
            max_tt = max(max_tt, int(record.payload.get("tt", -1)))
            continue
        if record.type is not LogRecordType.OPERATION:
            continue
        if record.txn_id not in committed:
            continue
        payload = record.payload
        max_atom_id = max(max_atom_id, _apply_operation(engine, payload))
        max_tt = max(max_tt, int(payload.get("tt", -1)))
        replayed += 1
        c_replayed.inc()
    return {"operations": replayed, "transactions": len(committed),
            "max_tt": max_tt, "max_atom_id": max_atom_id}


def _apply_operation(engine: Any, payload: Dict[str, Any]) -> int:
    """Dispatch one logged operation to the engine; returns the atom id
    it touched (0 when none was assigned)."""
    op = payload.get("op")
    tt = payload["tt"]
    try:
        if op == "insert":
            engine.insert(payload["type"], payload["values"],
                          payload["vf"], payload["vt"], tt,
                          payload["atom_id"])
            return int(payload["atom_id"])
        if op == "update":
            engine.update(payload["atom_id"], payload["changes"],
                          payload["vf"], tt, payload["vt"])
            return int(payload["atom_id"])
        if op == "delete":
            engine.delete(payload["atom_id"], payload["vf"], tt,
                          payload["vt"])
            return int(payload["atom_id"])
        if op == "correct":
            engine.correct(payload["atom_id"], payload["ws"],
                           payload["we"], payload["changes"], tt)
            return int(payload["atom_id"])
        if op == "link":
            engine.link(payload["link"], payload["src"], payload["dst"],
                        payload["vf"], tt, payload["vt"])
            return max(int(payload["src"]), int(payload["dst"]))
        if op == "unlink":
            engine.unlink(payload["link"], payload["src"], payload["dst"],
                          payload["vf"], tt, payload["vt"])
            return max(int(payload["src"]), int(payload["dst"]))
    except Exception as exc:  # noqa: BLE001 - wrap any replay failure
        raise RecoveryError(f"replay of {op!r} failed: {exc}") from exc
    raise RecoveryError(f"unknown logged operation {op!r}")

"""Write-ahead log: append-only logical operation log with group commit.

The engine follows a *logical redo* discipline: every operation of a
transaction is logged as a self-contained, deterministic description
(operation name, atom ids, values, timestamps), and the log is forced at
commit.  Recovery replays the committed operations newer than the last
checkpoint against the checkpointed database image — see
:mod:`repro.txn.recovery`.

Commit forcing uses **group commit**: a committing thread calls
:meth:`WriteAheadLog.sync_to` with the LSN of its COMMIT record; the
first such thread becomes the *leader*, flushes and ``fsync``\\ s the
file once, and every thread whose LSN that single fsync covered returns
without issuing its own.  Under N concurrent committers the fsync cost
is amortized across the batch (``wal.group_commits`` counts fsync
rounds, ``wal.commit_batch_size`` records how many commits each round
made durable, and ``wal.fsyncs`` therefore stays well below
``txn.commits``).

When the log is opened with ``sync_on_commit=False`` (the facade's
``durability="none"``), :meth:`sync_to` is a no-op: records may sit in
the process's user-space buffer, and even a plain process kill can lose
acknowledged commits.  That mode exists for benchmarks and bulk loads
only.

Record wire format::

    [lsn:8][type:1][txn_id:8][payload_len:4][crc32:4][payload: JSON bytes]

The CRC covers the header fields and the payload, so a torn write at the
tail (the only corruption a crash can produce on an append-only file) is
detected and the log is cut there.  Payloads are JSON for debuggability;
the volume overhead is measured, not hidden (experiment R-F5 reports log
bytes per update).
"""

from __future__ import annotations

import enum
import json
import os
import struct
import threading
import time
import zlib
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

from repro.errors import WALError
from repro.obs import MetricsRegistry

_HEADER = struct.Struct("<BQII")  # type, txn_id, payload_len, crc
_LSN = struct.Struct("<Q")

#: Sparse LSN->byte-offset marks: one every this many appended bytes.
#: Readers binary-search the marks and seek instead of scanning from
#: byte zero — the difference between O(batch) and O(log) per
#: replication poll and per replica replay slice.
_MARK_INTERVAL_BYTES = 16 * 1024


class LogRecordType(enum.Enum):
    BEGIN = 1
    OPERATION = 2
    COMMIT = 3
    ABORT = 4
    CHECKPOINT = 5


@dataclass(frozen=True, slots=True)
class LogRecord:
    """One decoded log record."""

    lsn: int
    type: LogRecordType
    txn_id: int
    payload: Dict[str, Any]


def _scan_raw(handle: Any, offset: int
              ) -> Iterator[tuple[int, int, int, int, bytes]]:
    """Yield ``(offset, lsn, type_value, txn_id, body)`` for each valid
    record from *offset*; stop at a torn or corrupt tail."""
    while True:
        prefix = handle.read(_LSN.size + _HEADER.size)
        if len(prefix) < _LSN.size + _HEADER.size:
            return
        (lsn,) = _LSN.unpack_from(prefix, 0)
        type_value, txn_id, length, crc = _HEADER.unpack_from(
            prefix, _LSN.size)
        body = handle.read(length)
        if len(body) < length:
            return  # torn tail
        check_header = _HEADER.pack(type_value, txn_id, length, 0)
        if zlib.crc32(_LSN.pack(lsn) + check_header + body) != crc:
            return  # torn or corrupt tail
        yield offset, lsn, type_value, txn_id, body
        offset += _LSN.size + _HEADER.size + length


class WriteAheadLog:
    """Append-only log file with LSN addressing and CRC validation.

    LSNs are 1-based sequence numbers (not byte offsets), monotonically
    increasing across the log's lifetime.
    """

    def __init__(self, path: str | os.PathLike[str],
                 sync_on_commit: bool = True,
                 metrics: Optional[MetricsRegistry] = None,
                 group_commit: bool = True,
                 group_window: float = 0.003) -> None:
        self._path = os.fspath(path)
        self._sync_on_commit = sync_on_commit
        self._group_commit = group_commit
        self._group_window = group_window
        self._lock = threading.Lock()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._c_appends = self.metrics.counter("wal.appends")
        self._c_bytes = self.metrics.counter("wal.bytes")
        self._c_fsyncs = self.metrics.counter("wal.fsyncs")
        self._c_group_commits = self.metrics.counter("wal.group_commits")
        self._h_batch_size = self.metrics.histogram("wal.commit_batch_size")
        self._g_retained = self.metrics.gauge("wal.retention_held_bytes")
        # Replication subscriber registry: name -> {"acked": lsn,
        # "last_seen": monotonic}.  Guarded by _subs_lock; in-memory only
        # (a primary restart forgets subscribers, and replicas resubscribe
        # on their first stream request after reconnecting).
        self._subs_lock = threading.Lock()
        self._subscribers: Dict[str, Dict[str, float]] = {}
        # CDC subscriber registry: same shape, separate namespace.  The
        # retention guard treats both kinds identically (min-acked across
        # the union); they are kept apart so status surfaces can tell a
        # replica from a change-stream consumer.  CDC entries are
        # re-registered from the catalog's persisted acks on server
        # start, so a disconnected consumer's resume point stays held.
        self._cdc_subscribers: Dict[str, Dict[str, float]] = {}
        # Group-commit state: guarded by _commit_cv's lock, never by _lock.
        self._commit_cv = threading.Condition(threading.Lock())
        self._durable_lsn = 0
        self._sync_leader_active = False
        self._pending_syncs: List[int] = []
        # True when the last group showed concurrent commit load; gates
        # the leader's straggler window so solo committers never wait.
        self._group_had_company = False
        self._file = open(self._path, "ab+")
        # Sparse seek index over the append-only file: ascending
        # (lsn, byte offset) marks, guarded by _lock.  _tail_offset is
        # the offset one past the last valid record — maintained at
        # append time, re-derived by the open() scan.
        self._marks: List[tuple[int, int]] = []
        self._tail_offset = 0
        self._bytes_since_mark = 0
        self._c_seek_hits = self.metrics.counter("wal.read_seek_hits")
        self._next_lsn = self._recover_next_lsn()
        # Records recovered from the file are readable now; one fsync
        # pins them to stable storage, so the durable floor can start at
        # the head (a restarted primary must report the surviving
        # records shippable immediately, not after the next commit).
        if self._next_lsn > 1 and self._sync_on_commit:
            os.fsync(self._file.fileno())
        self._durable_lsn = self._next_lsn - 1

    def _recover_next_lsn(self) -> int:
        """Scan the existing file once: find the next LSN, build the
        seek marks, and cut any torn tail so append offsets stay exact
        (the file is opened with ``O_APPEND`` — new records land at the
        physical end, which must be the end of the last valid record)."""
        last = 0
        self._file.flush()
        with open(self._path, "rb") as handle:
            for offset, lsn, _type, _txn, body in _scan_raw(handle, 0):
                self._note_offset(lsn,
                                  _LSN.size + _HEADER.size + len(body))
                last = lsn
        size = os.fstat(self._file.fileno()).st_size
        if size > self._tail_offset:
            self._file.truncate(self._tail_offset)
            self._file.flush()
        return last + 1

    def _note_offset(self, lsn: int, record_bytes: int) -> None:
        """Record a sparse (lsn, offset) mark; caller holds ``_lock``
        (or is the single-threaded open scan)."""
        if not self._marks or self._bytes_since_mark >= _MARK_INTERVAL_BYTES:
            self._marks.append((lsn, self._tail_offset))
            self._bytes_since_mark = 0
        self._tail_offset += record_bytes
        self._bytes_since_mark += record_bytes

    def _seek_hint(self, target_lsn: int) -> int:
        """Byte offset of the rightmost mark at or below *target_lsn*;
        0 when no mark qualifies.  Caller holds ``_lock``."""
        lo, hi, best = 0, len(self._marks) - 1, 0
        while lo <= hi:
            mid = (lo + hi) // 2
            if self._marks[mid][0] <= target_lsn:
                best = self._marks[mid][1]
                lo = mid + 1
            else:
                hi = mid - 1
        return best

    @property
    def path(self) -> str:
        return self._path

    @property
    def next_lsn(self) -> int:
        return self._next_lsn

    def size_bytes(self) -> int:
        self._file.flush()
        return os.path.getsize(self._path)

    # -- writing ------------------------------------------------------------

    def append(self, record_type: LogRecordType, txn_id: int,
               payload: Optional[Dict[str, Any]] = None) -> int:
        """Append one record; returns its LSN.  Does not force."""
        body = json.dumps(payload or {}, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
        with self._lock:
            lsn = self._next_lsn
            self._next_lsn += 1
            header = _HEADER.pack(record_type.value, txn_id, len(body), 0)
            crc = zlib.crc32(_LSN.pack(lsn) + header + body)
            header = _HEADER.pack(record_type.value, txn_id, len(body), crc)
            record = _LSN.pack(lsn) + header + body
            self._note_offset(lsn, len(record))
            self._file.write(record)
            self._c_appends.inc()
            self._c_bytes.inc(len(record))
            return lsn

    def append_shipped(self, lsn: int, type_value: int, txn_id: int,
                       payload: Dict[str, Any]) -> bool:
        """Append a record shipped from a primary, preserving its LSN.

        Replicas write the primary's records verbatim into their own log
        so the two LSN spaces stay aligned and the standard recovery path
        works unchanged after a replica crash.  Returns ``True`` when the
        record was appended, ``False`` when it was already present (a
        reconnecting replica may re-request an overlapping range).  A
        non-contiguous LSN on a non-empty log is a stream gap — the
        replica missed records the primary has already truncated — and
        raises :class:`~repro.errors.WALError`.
        """
        LogRecordType(type_value)  # validate before writing
        body = json.dumps(payload, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
        with self._lock:
            if lsn != self._next_lsn:
                self._file.flush()
                empty = os.fstat(self._file.fileno()).st_size == 0
                if empty:
                    # Fresh or freshly-truncated log: adopt the stream
                    # position (the checkpoint image covers everything
                    # before it).
                    self._next_lsn = lsn
                elif lsn < self._next_lsn:
                    return False  # duplicate from an overlapping re-request
                else:
                    raise WALError(
                        f"replication stream gap: expected lsn "
                        f"{self._next_lsn}, got {lsn}")
            self._next_lsn = lsn + 1
            header = _HEADER.pack(type_value, txn_id, len(body), 0)
            crc = zlib.crc32(_LSN.pack(lsn) + header + body)
            header = _HEADER.pack(type_value, txn_id, len(body), crc)
            record = _LSN.pack(lsn) + header + body
            self._note_offset(lsn, len(record))
            self._file.write(record)
            self._c_appends.inc()
            self._c_bytes.inc(len(record))
        # A shipped record is shippable onward immediately — no fsync
        # barrier.  The durability rationale behind shippable_lsn does
        # not apply here: this log is a verbatim LSN-aligned copy of the
        # upstream's, so a crash that cuts the tail is healed by
        # re-fetching the *same bytes*; the LSNs can never be reassigned
        # to different records.  That makes cascading chains (primary ->
        # replica -> replica) work without per-record syncs.
        with self._commit_cv:
            self._durable_lsn = max(self._durable_lsn, lsn)
            self._commit_cv.notify_all()
        return True

    def flush(self, sync: Optional[bool] = None) -> None:
        """Flush buffered records to the OS; optionally force to disk.

        ``sync`` overrides the log's configured ``sync_on_commit``
        default: ``flush(sync=True)`` always fsyncs, ``flush(sync=False)``
        never does, and ``flush()`` follows the configuration.
        """
        force = self._sync_on_commit if sync is None else sync
        with self._lock:
            self._file.flush()
            if force:
                os.fsync(self._file.fileno())
                self._c_fsyncs.inc()

    @property
    def durable_lsn(self) -> int:
        """Highest LSN known to have reached stable storage via
        :meth:`sync_to` (0 before the first group commit)."""
        with self._commit_cv:
            return self._durable_lsn

    def sync_to(self, lsn: int) -> None:
        """Make every record up to *lsn* durable (the commit force point).

        With ``sync_on_commit=False`` this is a no-op — the facade's
        ``durability="none"`` contract is that acknowledged commits may
        be lost.  Otherwise the calling thread either joins an
        in-flight group commit (waiting until a leader's fsync covers
        its LSN) or becomes the leader itself and fsyncs once for every
        queued committer.  With ``group_commit=False`` each caller
        fsyncs individually (the per-commit-fsync baseline benchmarks
        compare against).
        """
        if not self._sync_on_commit:
            return
        if not self._group_commit:
            self.flush(sync=True)
            with self._commit_cv:
                self._durable_lsn = max(self._durable_lsn, lsn)
            return
        with self._commit_cv:
            if lsn <= self._durable_lsn:
                return
            self._pending_syncs.append(lsn)
            while True:
                if lsn <= self._durable_lsn:
                    return
                if not self._sync_leader_active:
                    self._sync_leader_active = True
                    break
                self._commit_cv.wait()
        # Leader path: one flush+fsync covers every record appended so
        # far, including commits that queued while we were elected.  The
        # fsync deliberately runs *outside* the append lock: the flush
        # fixed which bytes the fsync makes durable, and keeping appends
        # unblocked during the device flush is what lets the next batch
        # form while this one syncs.
        target = -1
        try:
            # Straggler window (PostgreSQL's commit_delay idea): when the
            # previous round had company, concurrent committers are mid
            # flight right now — a short wait lets them append their
            # COMMIT records and ride this fsync instead of paying their
            # own.  Solo committers skip it entirely.
            if self._group_window > 0:
                with self._commit_cv:
                    company = (self._group_had_company
                               or len(self._pending_syncs) > 1)
                if company:
                    time.sleep(self._group_window)
            with self._lock:
                target = self._next_lsn - 1
                self._file.flush()
                fd = self._file.fileno()
            os.fsync(fd)
            self._c_fsyncs.inc()
        finally:
            with self._commit_cv:
                if target >= 0:
                    served = [p for p in self._pending_syncs if p <= target]
                    self._pending_syncs = [p for p in self._pending_syncs
                                           if p > target]
                    self._durable_lsn = max(self._durable_lsn, target)
                    self._c_group_commits.inc()
                    self._h_batch_size.observe(len(served))
                    self._group_had_company = (len(served) > 1
                                               or bool(self._pending_syncs))
                self._sync_leader_active = False
                self._commit_cv.notify_all()

    @property
    def shippable_lsn(self) -> int:
        """Highest LSN safe to ship to a replica.

        With ``sync_on_commit=True`` only durable records ship: a crash
        can cut the non-durable tail and reassign those LSNs to different
        records, which would silently diverge any replica that applied
        the originals.  With ``durability="none"`` the primary has no
        durability floor to honor, so everything appended ships.
        """
        if self._sync_on_commit:
            return self.durable_lsn
        with self._lock:
            return self._next_lsn - 1

    def wait_for_shippable(self, lsn: int, timeout: float) -> int:
        """Block until :attr:`shippable_lsn` reaches *lsn* or *timeout*
        elapses; returns the current shippable head either way.

        Group-commit fsyncs notify ``_commit_cv``, so the common case
        wakes promptly; the poll interval only bounds the wait under
        ``durability="none"`` where nothing notifies.
        """
        deadline = time.monotonic() + timeout
        head = self.shippable_lsn
        while head < lsn:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            with self._commit_cv:
                self._commit_cv.wait(min(remaining, 0.05))
            head = self.shippable_lsn
        return head

    # -- replication subscribers ------------------------------------------------

    def subscribe(self, name: str, acked_lsn: int = 0) -> None:
        """Register (or refresh) a replication subscriber.

        While a subscriber's acked LSN trails the log head,
        :meth:`truncate` refuses to discard the log — the retention
        guard that keeps a lagging replica's resume point readable.
        """
        with self._subs_lock:
            entry = self._subscribers.setdefault(
                name, {"acked": 0, "last_seen": 0.0})
            entry["acked"] = max(entry["acked"], acked_lsn)
            entry["last_seen"] = time.monotonic()
        self._update_retention_gauge()

    def ack(self, name: str, lsn: int) -> None:
        """Record a subscriber's durable replay watermark (monotone)."""
        self.subscribe(name, lsn)

    def release(self, name: str) -> None:
        """Drop a subscriber; its retention hold is released."""
        with self._subs_lock:
            self._subscribers.pop(name, None)
        self._update_retention_gauge()

    def subscribers(self) -> Dict[str, Dict[str, float]]:
        """Snapshot of the subscriber registry (for STATS/monitoring)."""
        with self._subs_lock:
            return {name: dict(entry)
                    for name, entry in self._subscribers.items()}

    # -- CDC subscribers -----------------------------------------------------

    def subscribe_cdc(self, name: str, acked_lsn: int = 0) -> None:
        """Register (or refresh) a CDC change-stream subscriber.

        Counts toward the retention guard exactly like a replica: while
        its acked LSN trails the head, :meth:`truncate` refuses.
        """
        with self._subs_lock:
            entry = self._cdc_subscribers.setdefault(
                name, {"acked": 0, "last_seen": 0.0})
            entry["acked"] = max(entry["acked"], acked_lsn)
            entry["last_seen"] = time.monotonic()
        self._update_retention_gauge()

    def ack_cdc(self, name: str, lsn: int) -> None:
        """Record a CDC subscriber's consumed watermark (monotone)."""
        self.subscribe_cdc(name, lsn)

    def release_cdc(self, name: str) -> None:
        """Drop a CDC subscriber; its retention hold is released."""
        with self._subs_lock:
            self._cdc_subscribers.pop(name, None)
        self._update_retention_gauge()

    def cdc_subscribers(self) -> Dict[str, Dict[str, float]]:
        """Snapshot of the CDC subscriber registry."""
        with self._subs_lock:
            return {name: dict(entry)
                    for name, entry in self._cdc_subscribers.items()}

    def min_acked_lsn(self) -> Optional[int]:
        """The slowest subscriber's acked LSN across *both* registries
        (replicas and CDC consumers), or ``None`` without subscribers."""
        with self._subs_lock:
            acks = [int(entry["acked"])
                    for registry in (self._subscribers,
                                     self._cdc_subscribers)
                    for entry in registry.values()]
        return min(acks) if acks else None

    def held_bytes(self, acked_lsn: int) -> int:
        """Approximate log bytes a subscriber acked at *acked_lsn* pins.

        Computed from the sparse seek marks: tail offset minus the mark
        at or below the subscriber's resume point (``acked + 1``), so the
        figure can overstate by up to one mark interval (16 KiB) — good
        enough for the monitoring surfaces it feeds.
        """
        with self._lock:
            if acked_lsn >= self._next_lsn - 1:
                return 0
            return max(0, self._tail_offset - self._seek_hint(acked_lsn + 1))

    def _update_retention_gauge(self) -> None:
        floor = self.min_acked_lsn()
        held = (floor is not None and floor < self._next_lsn - 1)
        self._g_retained.set(self.size_bytes() if held else 0)

    # -- reading --------------------------------------------------------------

    def read_all(self, after_lsn: int = 0) -> Iterator[LogRecord]:
        """Yield valid records with ``lsn > after_lsn``; stop at a torn tail.

        A record that fails its CRC or is truncated ends the iteration —
        by the write-ahead discipline everything after it is garbage from
        an interrupted append.
        """
        with self._lock:
            self._file.flush()
            # Seek to the mark at or below the first wanted LSN instead
            # of scanning from byte zero.  Marks are exact record
            # boundaries recorded at append time; a concurrent truncate
            # makes the hint point past the end, which reads as a torn
            # tail and ends the iteration (same as the pre-existing
            # scan-during-truncate race).
            start = self._seek_hint(after_lsn + 1)
        if start:
            self._c_seek_hits.inc()
        with open(self._path, "rb") as handle:
            handle.seek(start)
            for _offset, lsn, type_value, txn_id, body in _scan_raw(
                    handle, start):
                if lsn <= after_lsn:
                    continue
                try:
                    record_type = LogRecordType(type_value)
                    payload = json.loads(body)
                except (ValueError, json.JSONDecodeError) as exc:
                    raise WALError(
                        f"undecodable log record at lsn {lsn}") from exc
                yield LogRecord(lsn, record_type, txn_id, payload)

    def read_records_from(self, from_lsn: int,
                          upto_lsn: Optional[int] = None
                          ) -> Iterator[LogRecord]:
        """Yield records with ``from_lsn <= lsn <= upto_lsn`` in order.

        The replication read path.  Raises :class:`WALError` when the
        log no longer contains *from_lsn* (truncated past the request):
        the caller must bootstrap the replica from a fresh checkpoint
        copy instead of resuming.  Like :meth:`read_all`, the scan takes
        the append lock only to flush, so shipping never blocks writers.
        """
        if from_lsn < 1:
            raise WALError(f"from_lsn must be >= 1, got {from_lsn}")
        first = True
        for record in self.read_all(after_lsn=from_lsn - 1):
            if first and record.lsn > from_lsn:
                raise WALError(
                    f"records before lsn {record.lsn} have been "
                    f"truncated; cannot resume from lsn {from_lsn}")
            first = False
            if upto_lsn is not None and record.lsn > upto_lsn:
                return
            yield record

    # -- maintenance ------------------------------------------------------------

    def truncate(self) -> bool:
        """Discard the log (after a checkpoint made it redundant).

        Returns ``False`` without touching the file when a subscribed
        replica's or CDC consumer's acked LSN still trails the head —
        truncating would destroy its resume point.  The
        ``wal.retention_held_bytes`` gauge shows the bytes the slowest
        subscriber is pinning.
        """
        floor = self.min_acked_lsn()
        if floor is not None and floor < self._next_lsn - 1:
            self._update_retention_gauge()
            return False
        with self._lock:
            self._file.seek(0)
            self._file.truncate()
            self._file.flush()
            os.fsync(self._file.fileno())
            self._c_fsyncs.inc()
            truncated_at = self._next_lsn - 1
            self._marks.clear()
            self._tail_offset = 0
            self._bytes_since_mark = 0
        with self._commit_cv:
            # An empty log is trivially durable up to its last LSN.
            self._durable_lsn = max(self._durable_lsn, truncated_at)
        self._update_retention_gauge()
        return True

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.flush()
                self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
